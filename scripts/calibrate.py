"""Calibration driver: prints per-benchmark normalized IPC and ReCon stats."""
import sys
import time
from repro import RunConfig, SchemeKind, run_benchmark, spec2017_suite, spec2006_suite
from repro.sim.runner import TraceCache

suite = spec2017_suite() if "2006" not in sys.argv else spec2006_suite()
plain = [a for a in sys.argv[1:] if not a.startswith("len=") and a != "2006"]
names = plain[0].split(",") if plain else None
length = int(next((a for a in sys.argv if a.startswith("len=")), "len=10000")[4:])

rows = []
t0 = time.time()
for prof in suite:
    if names and prof.name not in names:
        continue
    cache = TraceCache()
    res = {s: run_benchmark(prof, s, length, config=RunConfig(cache=cache))
           for s in (SchemeKind.UNSAFE, SchemeKind.NDA, SchemeKind.NDA_RECON,
                     SchemeKind.STT, SchemeKind.STT_RECON)}
    b = res[SchemeKind.UNSAFE].ipc
    n, nr = res[SchemeKind.NDA].ipc/b, res[SchemeKind.NDA_RECON].ipc/b
    s, sr = res[SchemeKind.STT].ipc/b, res[SchemeKind.STT_RECON].ipc/b
    st = res[SchemeKind.STT_RECON].stats
    rows.append((prof.name, b, n, nr, s, sr, st.reveal_hits, st.reveal_misses, st.tainted_loads,
                 res[SchemeKind.STT].stats.tainted_loads))
    print(f"{prof.name:11s} ipc={b:5.2f} nda={n:.3f}->{nr:.3f} stt={s:.3f}->{sr:.3f} "
          f"hits={st.reveal_hits:5d} miss={st.reveal_misses:5d} taintR={st.tainted_loads:5d}/{rows[-1][9]:5d}")
import math
def gm(vals): return math.exp(sum(math.log(v) for v in vals)/len(vals))
if len(rows) > 2:
    print(f"{'GEOMEAN':11s}          nda={gm([r[2] for r in rows]):.3f}->{gm([r[3] for r in rows]):.3f} "
          f"stt={gm([r[4] for r in rows]):.3f}->{gm([r[5] for r in rows]):.3f}")
print(f"({time.time()-t0:.0f}s)")
