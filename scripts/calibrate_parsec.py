"""PARSEC calibration: 4-core normalized execution time per scheme."""
import math
from repro import RunConfig, SchemeKind, run_benchmark, parsec_suite
from repro.sim.runner import TraceCache

rows = []
for prof in parsec_suite():
    cache = TraceCache()
    res = {s: run_benchmark(prof, s, 12000,
                            config=RunConfig(threads=4, cache=cache))
           for s in (SchemeKind.UNSAFE, SchemeKind.NDA, SchemeKind.NDA_RECON,
                     SchemeKind.STT, SchemeKind.STT_RECON)}
    b = res[SchemeKind.UNSAFE].cycles
    vals = [res[s].cycles / b for s in (SchemeKind.NDA, SchemeKind.NDA_RECON,
                                        SchemeKind.STT, SchemeKind.STT_RECON)]
    st = res[SchemeKind.STT_RECON].stats
    rows.append(vals)
    print(f"{prof.name:14s} time: nda={vals[0]:.3f}->{vals[1]:.3f} stt={vals[2]:.3f}->{vals[3]:.3f} "
          f"hits={st.reveal_hits} merges={st.bitvector_merges}")
def gm(i): return math.exp(sum(math.log(r[i]) for r in rows)/len(rows))
print(f"{'GEOMEAN':14s} time: nda={gm(0):.3f}->{gm(1):.3f} stt={gm(2):.3f}->{gm(3):.3f}")
