#!/usr/bin/env python3
"""Kill -9 the sweep service mid-suite; prove the restart loses nothing.

The CI ``service-chaos`` gate (and anyone auditing the durability
claims in docs/robustness.md) runs this drill:

1. compute the **reference** ``SuiteResult`` for a small suite in-process
   (no service involved);
2. start ``repro serve`` with a durable state dir and deterministic
   service chaos that SIGKILLs the process after its Nth completed cell;
3. submit the suite and wait for the service to die mid-run;
4. restart the service (no chaos) on the same state dir and store;
5. wait for the recovered job to finish and fetch its result;
6. assert the served grid is **bit-identical** to the reference — same
   sorted ``results`` section, exactly one record per cell (nothing
   lost, nothing run twice), and no failures.

Exit status 0 on success; on failure the ledger and server logs are
dumped to stderr so the CI artifact tells the whole story.

Usage::

    python scripts/service_chaos_drill.py --work results/.chaos-drill
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import (  # noqa: E402
    RunRequest,
    ServiceUnavailableError,
    poll,
    result,
    run_suite,
    submit_suite,
)

SCHEMES = ("unsafe", "stt", "stt+recon")
BENCH = "spec2017/mcf"


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_health(url: str, deadline_s: float = 30.0) -> None:
    import urllib.request

    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{url}/healthz", timeout=2):
                return
        except OSError:
            time.sleep(0.1)
    raise RuntimeError(f"service at {url} never became healthy")


def start_server(
    port: int, state_dir: Path, store_dir: Path, log: Path, chaos: str = ""
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_STORE"] = str(store_dir)
    env.pop("REPRO_SERVE_CHAOS", None)
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", str(port),
        "--backend", "inline",
        "--state-dir", str(state_dir),
    ]
    if chaos:
        cmd += ["--chaos", chaos]
    handle = open(log, "ab")
    return subprocess.Popen(
        cmd, stdout=handle, stderr=subprocess.STDOUT, cwd=str(REPO_ROOT),
        env=env,
    )


def sorted_results(payload: dict) -> list:
    return sorted(
        payload["results"], key=lambda cell: (cell["bench"], cell["scheme"])
    )


def dump_state(state_dir: Path, log: Path) -> None:
    ledger = state_dir / "ledger.jsonl"
    print("--- server log ---", file=sys.stderr)
    if log.exists():
        sys.stderr.write(log.read_text(errors="replace"))
    print("--- ledger ---", file=sys.stderr)
    if ledger.exists():
        sys.stderr.write(ledger.read_text(errors="replace"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--work",
        default="results/.chaos-drill",
        help="scratch directory (state dir, store, logs); wiped first",
    )
    parser.add_argument("--length", type=int, default=300)
    parser.add_argument(
        "--kill-after", type=int, default=2,
        help="SIGKILL the service after this many completed cells",
    )
    parser.add_argument("--timeout", type=float, default=180.0)
    args = parser.parse_args()

    work = Path(args.work)
    shutil.rmtree(work, ignore_errors=True)
    state_dir = work / "state"
    store_dir = work / "store"
    log = work / "serve.log"
    work.mkdir(parents=True, exist_ok=True)

    requests = [RunRequest(BENCH, scheme, args.length) for scheme in SCHEMES]
    if not 0 < args.kill_after < len(requests):
        print(
            f"--kill-after must be in (0, {len(requests)}) so the kill "
            "lands mid-suite",
            file=sys.stderr,
        )
        return 2

    print(f"[drill] reference run: {len(requests)} cells in-process")
    reference = json.loads(run_suite(requests, store=False).to_json())

    port = free_port()
    url = f"http://127.0.0.1:{port}"
    chaos = f"seed=1,kill_after_cells={args.kill_after}"
    print(f"[drill] starting chaosed service on {url} ({chaos})")
    proc = start_server(port, state_dir, store_dir, log, chaos=chaos)
    try:
        wait_health(url)
        job = submit_suite(requests, url=url, busy_wait_s=30.0)
        print(f"[drill] submitted {job}; waiting for the SIGKILL")
        try:
            proc.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            print("[drill] FAIL: chaos kill never fired", file=sys.stderr)
            dump_state(state_dir, log)
            return 1
        if proc.returncode != -signal.SIGKILL:
            print(
                f"[drill] FAIL: service exited {proc.returncode}, "
                "expected SIGKILL",
                file=sys.stderr,
            )
            dump_state(state_dir, log)
            return 1
        print("[drill] service died by SIGKILL as planned; restarting")
    except BaseException:
        proc.kill()
        raise

    proc = start_server(port, state_dir, store_dir, log)
    try:
        wait_health(url)
        deadline = time.monotonic() + args.timeout
        while True:
            try:
                status = poll(job, url=url)
            except ServiceUnavailableError:
                status = {"status": "unreachable"}
            if status.get("status") in ("done", "failed"):
                break
            if time.monotonic() > deadline:
                print(
                    f"[drill] FAIL: job stuck at {status}", file=sys.stderr
                )
                dump_state(state_dir, log)
                return 1
            time.sleep(0.25)
        if status["status"] != "done":
            print(f"[drill] FAIL: job ended {status}", file=sys.stderr)
            dump_state(state_dir, log)
            return 1
        if not status.get("recovered"):
            print(
                "[drill] FAIL: job did not come back via ledger recovery",
                file=sys.stderr,
            )
            dump_state(state_dir, log)
            return 1
        served = json.loads(
            result(job, url=url, timeout_s=args.timeout).to_json()
        )
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    failures = []
    if sorted_results(served) != sorted_results(reference):
        failures.append("served results grid differs from the reference run")
    cells = [(r["bench"], r["scheme"]) for r in served.get("records", [])]
    if len(cells) != len(requests):
        failures.append(
            f"expected {len(requests)} records, got {len(cells)} "
            "(lost or duplicated cells)"
        )
    if len(set(cells)) != len(cells):
        failures.append(f"duplicated cell records: {cells}")
    if served.get("failures"):
        failures.append(f"unexpected failures: {served['failures']}")
    if failures:
        for line in failures:
            print(f"[drill] FAIL: {line}", file=sys.stderr)
        dump_state(state_dir, log)
        return 1
    print(
        f"[drill] PASS: kill -9 after {args.kill_after} cells, restart, "
        f"resume -> bit-identical {len(requests)}-cell SuiteResult"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
