"""Capture the pipeline-stats parity golden.

Run once against the *reference* cycle loop (before any hot-path
optimization is enabled) to produce
``tests/data/pipeline_stats_golden.json``::

    REPRO_HOTPATH=legacy PYTHONPATH=src:tests python scripts/capture_pipeline_golden.py

The golden pins the exact cycle counts and every StatSet field of the
cells in ``tests/core/hotpath_driver.py``; the parity suite
(``tests/core/test_hotpath_parity.py``) replays them on the optimized
backend and fails on any drift.
"""

from __future__ import annotations

import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.core.hotpath_driver import GOLDEN_PATH, run_cells  # noqa: E402


def main() -> int:
    runs = run_cells()
    payload = {
        "description": (
            "Pipeline-stats golden: cycles and StatSet fields captured on "
            "the reference (pure-Python, pre-optimization) cycle loop."
        ),
        "runs": runs,
    }
    out = REPO / GOLDEN_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(runs)} cells to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
