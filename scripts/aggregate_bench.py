#!/usr/bin/env python
"""Fold this run's BENCH_*.json artifacts into the bench trajectory.

CI runs this after the benchmark jobs so every pipeline uploads one
``results/BENCH_trajectory.json`` carrying the perf/safety history:
hot-path throughput (uops/s, vectorized speedup), red-team verdict
counts, and the git sha each point was measured at.  See
:mod:`repro.sim.trajectory` for the file format.

Usage::

    PYTHONPATH=src python scripts/aggregate_bench.py [--results-dir results]
        [--out results/BENCH_trajectory.json] [--sha <commit>]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sim.trajectory import update_trajectory  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=Path("results"),
        help="directory holding BENCH_*.json artifacts (default: results)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="trajectory file to update "
        "(default: <results-dir>/BENCH_trajectory.json)",
    )
    parser.add_argument(
        "--sha",
        default=None,
        help="commit to stamp the point with "
        "(default: $GITHUB_SHA, else git rev-parse HEAD)",
    )
    args = parser.parse_args(argv)
    # Tolerant by design: a missing results dir, or missing/partial
    # BENCH files, still produce a (possibly stub) trajectory point —
    # a torn artifact must never break the aggregation step of CI.
    out = update_trajectory(args.results_dir, args.out, sha=args.sha)
    trajectory = json.loads(out.read_text())
    latest = trajectory["points"][-1]
    sha = (latest.get("sha") or "unknown")[:12]
    hotpath = latest.get("hotpath", {})
    gadgets = latest.get("gadgets", {})
    line = (
        f"{out}: {len(trajectory['points'])} point(s); latest sha={sha} "
        f"mean {hotpath.get('mean_vector_uops_per_sec', 0)} uops/s, "
        f"gadgets {gadgets.get('ok', 0)}/{gadgets.get('cells', 0)} ok"
    )
    sampled = latest.get("sampling")
    if sampled:
        line += (
            f", sampling {sampled.get('within_ci', 0)}"
            f"/{sampled.get('cells', 0)} within CI "
            f"at {sampled.get('min_cut', 0)}x+ cut"
        )
    if not latest.get("sources"):
        line += " (stub point: no BENCH_*.json artifacts found)"
    print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
