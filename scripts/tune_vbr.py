"""Proportional-control tuner for value_branch_rate per profile."""
import dataclasses
import sys
from repro import RunConfig, SchemeKind, run_benchmark
from repro.sim.runner import TraceCache
from repro.workloads import spec2017_suite, spec2006_suite, parsec_suite

TARGETS_2017 = {"perlbench": .946, "gcc": .93, "bwaves": 1.0, "mcf": .78,
    "cactuBSSN": .92, "lbm": 1.0, "omnetpp": .82, "wrf": .99, "xalancbmk": .641,
    "x264": .97, "deepsjeng": .92, "leela": .932, "exchange2": .97, "nab": .973,
    "imagick": .995, "xz": .96}
TARGETS_2006 = {"perlbench": .95, "bzip2": .96, "gcc": .94, "mcf": .80,
    "gobmk": .95, "hmmer": .99, "sjeng": .95, "libquantum": 1.0, "h264ref": .985,
    "omnetpp": .84, "astar": .88, "xalancbmk": .70}
TARGETS_PARSEC = {"blackscholes": 1.0, "bodytrack": .96, "canneal": .88,
    "dedup": .95, "ferret": .94, "fluidanimate": .97, "streamcluster": .97,
    "swaptions": 1.0}

which = sys.argv[1] if len(sys.argv) > 1 else "2017"
suite, targets, threads = {
    "2017": (spec2017_suite(), TARGETS_2017, 1),
    "2006": (spec2006_suite(), TARGETS_2006, 1),
    "parsec": (parsec_suite(), TARGETS_PARSEC, 4),
}[which]
LEN = 30000 if threads == 1 else 8000

def measure(p, vbr):
    p = dataclasses.replace(p, value_branch_rate=vbr)
    cache = TraceCache()
    cfg = RunConfig(threads=threads, cache=cache)
    u = run_benchmark(p, SchemeKind.UNSAFE, LEN, config=cfg)
    s = run_benchmark(p, SchemeKind.STT, LEN, config=cfg)
    if threads == 1:
        return s.ipc / u.ipc
    return u.cycles / s.cycles  # normalized perf = time ratio

for prof in suite:
    target = targets[prof.name]
    vbr = prof.value_branch_rate
    if target >= 0.999 or vbr == 0:
        norm = measure(prof, vbr)
        print(f"{prof.name:13s} vbr={vbr:.3f} norm={norm:.3f} (target {target}) [unchanged]")
        continue
    for it in range(5):
        norm = measure(prof, vbr)
        t_ov, m_ov = 1 - target, 1 - norm
        if m_ov <= 0.001:
            vbr = min(1.0, vbr * 2)
            continue
        ratio = t_ov / m_ov
        if 0.9 < ratio < 1.12:
            break
        vbr = max(0.005, min(1.0, vbr * ratio ** 0.8))
    print(f"{prof.name:13s} vbr={vbr:.3f} norm={norm:.3f} (target {target})")
