"""Regenerate the contention-free parity golden.

Runs the deterministic stimulus in ``tests/memory/parity_driver.py``
against the *current* memory model and writes the results to
``tests/data/memory_parity_golden.json``.

The checked-in golden was produced by the legacy atomic
latency-summing hierarchy immediately before the packet/port refactor;
only regenerate it deliberately (i.e. when an intentional timing change
lands), never to paper over a parity failure.

Usage::

    PYTHONPATH=src python scripts/capture_memory_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from tests.memory.parity_driver import GOLDEN_PATH, capture_golden  # noqa: E402


def main() -> int:
    payload = capture_golden()
    out = REPO / GOLDEN_PATH
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    runs = payload["runs"]
    accesses = payload["accesses"]
    print(f"wrote {out}")
    print(f"  {sum(len(v) for v in accesses.values())} access records "
          f"across {len(accesses)} configs")
    print(f"  {len(runs)} benchmark cells")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
