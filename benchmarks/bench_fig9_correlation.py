"""Figure 9 — correlation of captured leakage with overhead reduction.

For the SPEC2017 benchmarks that lose at least 5% under STT, plot the
ratio of load-pair leakage to all (DIFT) leakage next to the ReCon
overhead reduction.  Paper result: benchmarks whose leakage is mostly
load pairs (xalancbmk, mcf, omnetpp, perlbench) recover the most;
benchmarks with low pair/DIFT ratios (cactuBSSN, deepsjeng) recover the
least.
"""

import math

from repro import Clueless, SchemeKind, build_trace
from repro.sim import format_table, normalized_ipc, overhead, overhead_reduction
from repro.workloads import spec2017_suite

from benchmarks.common import BENCH_LENGTH, emit, run_grid

SCHEMES = (SchemeKind.UNSAFE, SchemeKind.STT, SchemeKind.STT_RECON)
DEGRADATION_CUTOFF = 0.05


def _run():
    profiles = spec2017_suite()
    results = run_grid(profiles, SCHEMES)
    points = []
    for profile in profiles:
        stt = normalized_ipc(results, profile.name, SchemeKind.STT)
        if overhead(stt) < DEGRADATION_CUTOFF:
            continue
        recon = normalized_ipc(results, profile.name, SchemeKind.STT_RECON)
        reduction = overhead_reduction(overhead(stt), overhead(recon))
        report = Clueless().run(build_trace(profile, BENCH_LENGTH).trace())
        points.append((profile.name, report.pair_coverage, reduction))
    points.sort(key=lambda p: -p[2])
    rows = [
        [name, f"{coverage:.1%}", f"{reduction:.1%}"]
        for name, coverage, reduction in points
    ]
    table = format_table(
        ["benchmark", "pairs/DIFT leakage", "overhead reduction"], rows
    )
    return table, points


def _pearson(xs, ys):
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    vy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)


def test_fig9_leakage_performance_correlation(benchmark):
    table, points = benchmark.pedantic(_run, rounds=1, iterations=1)
    coverages = [p[1] for p in points]
    reductions = [p[2] for p in points]
    corr = _pearson(coverages, reductions) if len(points) >= 3 else 1.0
    emit(
        "fig9_correlation",
        "Figure 9: captured-leakage ratio vs overhead reduction "
        "(STT, >5% degradation)",
        f"{table}\n\nPearson correlation: {corr:.2f}",
    )
    # Shape: several benchmarks qualify, and high pair coverage goes with
    # high recovery.  (Per-benchmark noise is large at bench scale, so we
    # compare coverage groups rather than requiring a tight correlation.)
    assert len(points) >= 3
    high = [red for _, cov, red in points if cov > 0.8]
    low = [red for _, cov, red in points if cov <= 0.6]
    if high and low:
        assert sum(high) / len(high) > sum(low) / len(low) - 0.05, (
            "high-coverage benchmarks should recover at least as much as "
            "low-coverage ones"
        )
    by_name = {name: (cov, red) for name, cov, red in points}
    # The paper's low-coverage benchmarks capture less of their leakage
    # through pairs than the pointer benchmarks.
    if "deepsjeng" in by_name and "xalancbmk" in by_name:
        assert by_name["deepsjeng"][0] < by_name["xalancbmk"][0]
