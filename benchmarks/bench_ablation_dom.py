"""Ablation — ReCon across defense families (paper §7).

The paper positions ReCon as an optimizer for *delay-based* schemes
(NDA, STT).  This bench probes how it composes with the two other
families its related-work section discusses:

* **Delay-on-Miss** — delays speculative L1 misses.  The paper calls DoM
  the scheme most throttled by this and points at InvarSpec-style
  lifting; ReCon lifts the same way: a revealed word may miss.
* **InvisiSpec** — hides speculative accesses instead of delaying them.
  Its bottleneck is lost caching, not lost MLP, so ReCon has much less
  to offer — an expected near-negative result that confirms the paper's
  scoping of where leakage reuse pays off.
"""

from repro import SchemeKind
from repro.sim import format_table, geomean, normalized_ipc

from benchmarks.common import emit, run_grid

NAMES = ("gcc", "mcf", "omnetpp", "xalancbmk", "leela")
SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.DOM,
    SchemeKind.DOM_RECON,
    SchemeKind.INVISPEC,
    SchemeKind.INVISPEC_RECON,
    SchemeKind.STT,
)
LABELS = ("DoM", "DoM+ReCon", "InvSpec", "InvSpec+ReCon", "STT")


def _run():
    from repro.workloads import spec2017_suite

    profiles = [p for p in spec2017_suite() if p.name in NAMES]
    results = run_grid(profiles, SCHEMES)
    rows = []
    columns = {scheme: [] for scheme in SCHEMES[1:]}
    for name in NAMES:
        row = [name]
        for scheme in SCHEMES[1:]:
            value = normalized_ipc(results, name, scheme)
            columns[scheme].append(value)
            row.append(f"{value:.3f}")
        rows.append(row)
    means = {scheme: geomean(columns[scheme]) for scheme in SCHEMES[1:]}
    rows.append(["geomean"] + [f"{means[s]:.3f}" for s in SCHEMES[1:]])
    table = format_table(["benchmark"] + list(LABELS), rows)
    return table, columns, means


def test_ablation_recon_across_families(benchmark):
    table, columns, means = benchmark.pedantic(_run, rounds=1, iterations=1)
    dom_recovery = 0.0
    if means[SchemeKind.DOM] < 1.0:
        dom_recovery = (
            means[SchemeKind.DOM_RECON] - means[SchemeKind.DOM]
        ) / (1 - means[SchemeKind.DOM])
    emit(
        "ablation_dom",
        "Ablation: ReCon across defense families (pointer subset)",
        f"{table}\n\nReCon recovers {dom_recovery:.0%} of DoM's overhead; "
        "on InvisiSpec (whose bottleneck is caching, not MLP) the effect "
        "is marginal, as expected.",
    )
    # DoM pays more than STT (it blocks every speculative miss)...
    assert means[SchemeKind.DOM] < means[SchemeKind.STT] + 0.01
    # ...and ReCon recovers a meaningful share of it.
    assert means[SchemeKind.DOM_RECON] > means[SchemeKind.DOM] + 0.02
    assert dom_recovery > 0.15
    # InvisiSpec costs something, and ReCon composes without harm.
    assert means[SchemeKind.INVISPEC] < 0.995
    assert (
        means[SchemeKind.INVISPEC_RECON]
        >= means[SchemeKind.INVISPEC] - 0.01
    )
