"""Figure 6 — normalized IPC of STT and STT+ReCon (SPEC2017 & SPEC2006).

Paper result: STT costs 8.9% (SPEC2017) / 8.1% (SPEC2006); ReCon reduces
the loss to 4.9% / 5.0% — a 45.1% / 39% overhead reduction.  STT is also
expected to beat NDA (it only delays transmitters, not all dependents).
"""

from repro import SchemeKind
from repro.sim import (
    bar_chart,
    format_table,
    geomean,
    normalized_ipc,
    overhead,
    overhead_reduction,
    suite_normalized_rows,
)
from repro.workloads import spec2006_suite, spec2017_suite

from benchmarks.common import emit, run_grid

SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.STT,
    SchemeKind.STT_RECON,
)


def _run_suite(profiles):
    results = run_grid(profiles, SCHEMES)
    names = [p.name for p in profiles]
    rows = suite_normalized_rows(
        results, names, (SchemeKind.STT, SchemeKind.STT_RECON)
    )
    table = format_table(["benchmark", "STT", "STT+ReCon"], rows)
    means = {
        scheme: geomean([normalized_ipc(results, n, scheme) for n in names])
        for scheme in SCHEMES[1:]
    }
    return table, names, results, means


def _check_shape(names, results, means):
    assert means[SchemeKind.STT] < 0.99
    assert means[SchemeKind.STT_RECON] > means[SchemeKind.STT]
    reduction = overhead_reduction(
        overhead(means[SchemeKind.STT]),
        overhead(means[SchemeKind.STT_RECON]),
    )
    assert reduction > 0.2, f"overhead reduction only {reduction:.1%}"
    # STT outperforms the stricter NDA on average (paper §2.1/§6.3).
    assert means[SchemeKind.STT] >= means[SchemeKind.NDA] - 0.005
    for name in names:
        stt = normalized_ipc(results, name, SchemeKind.STT)
        recon = normalized_ipc(results, name, SchemeKind.STT_RECON)
        assert recon > stt - 0.02, f"{name}: ReCon regressed STT"


def test_fig6_stt_spec2017(benchmark):
    table, names, results, means = benchmark.pedantic(
        _run_suite, args=(spec2017_suite(),), rounds=1, iterations=1
    )
    reduction = overhead_reduction(
        overhead(means[SchemeKind.STT]), overhead(means[SchemeKind.STT_RECON])
    )
    chart = bar_chart(
        {
            f"{name} ({label})": normalized_ipc(results, name, scheme)
            for name in names
            for label, scheme in (
                ("STT", SchemeKind.STT),
                ("+ReCon", SchemeKind.STT_RECON),
            )
        },
        max_value=1.05,
        reference=1.0,
    )
    summary = (
        f"{table}\n\n{chart}\n\n"
        f"overhead: STT {overhead(means[SchemeKind.STT]):.1%} -> "
        f"STT+ReCon {overhead(means[SchemeKind.STT_RECON]):.1%} "
        f"(reduction {reduction:.1%}; paper: 8.9% -> 4.9%, 45.1%)\n"
        f"NDA mean for comparison: {means[SchemeKind.NDA]:.3f}"
    )
    emit("fig6_spec2017", "Figure 6 (upper): STT+ReCon on SPEC2017", summary)
    _check_shape(names, results, means)
    # Benchmarks with almost no tainted loads see no degradation at all.
    for flat in ("bwaves", "lbm", "imagick"):
        assert normalized_ipc(results, flat, SchemeKind.STT) > 0.97
    # xalancbmk is the biggest loser and biggest winner (paper: 64% -> 88%).
    xal_stt = normalized_ipc(results, "xalancbmk", SchemeKind.STT)
    xal_recon = normalized_ipc(results, "xalancbmk", SchemeKind.STT_RECON)
    assert xal_stt < 0.9
    assert xal_recon - xal_stt > 0.04


def test_fig6_stt_spec2006(benchmark):
    table, names, results, means = benchmark.pedantic(
        _run_suite, args=(spec2006_suite(),), rounds=1, iterations=1
    )
    reduction = overhead_reduction(
        overhead(means[SchemeKind.STT]), overhead(means[SchemeKind.STT_RECON])
    )
    summary = (
        f"{table}\n\noverhead: STT {overhead(means[SchemeKind.STT]):.1%} -> "
        f"STT+ReCon {overhead(means[SchemeKind.STT_RECON]):.1%} "
        f"(reduction {reduction:.1%}; paper: 8.1% -> 5.0%, 39%)\n"
        f"NDA mean for comparison: {means[SchemeKind.NDA]:.3f}"
    )
    emit("fig6_spec2006", "Figure 6 (lower): STT+ReCon on SPEC2006", summary)
    _check_shape(names, results, means)
    assert normalized_ipc(results, "libquantum", SchemeKind.STT) > 0.97
