"""Figure 5 — normalized IPC of NDA and NDA+ReCon (SPEC2017 & SPEC2006).

Paper result: NDA costs 13.2% (SPEC2017) / 10.4% (SPEC2006) over the
unsafe baseline; ReCon reduces the loss to 9.4% / 7.2% — a 28.7% / 31.5%
overhead reduction.  We reproduce the series (one normalized-IPC value
per benchmark per scheme) and check the shape: ReCon always recovers,
never exceeds unsafe systematically, and pointer-heavy benchmarks lose
(and recover) the most.
"""

from repro import SchemeKind
from repro.sim import (
    bar_chart,
    format_table,
    geomean,
    normalized_ipc,
    overhead,
    overhead_reduction,
    suite_normalized_rows,
)
from repro.workloads import spec2006_suite, spec2017_suite

from benchmarks.common import emit, run_grid

SCHEMES = (SchemeKind.UNSAFE, SchemeKind.NDA, SchemeKind.NDA_RECON)


def _run_suite(profiles):
    results = run_grid(profiles, SCHEMES)
    names = [p.name for p in profiles]
    rows = suite_normalized_rows(results, names, SCHEMES[1:])
    table = format_table(["benchmark", "NDA", "NDA+ReCon"], rows)
    nda_mean = geomean(
        [normalized_ipc(results, n, SchemeKind.NDA) for n in names]
    )
    recon_mean = geomean(
        [normalized_ipc(results, n, SchemeKind.NDA_RECON) for n in names]
    )
    return table, names, results, nda_mean, recon_mean


def _check_shape(names, results, nda_mean, recon_mean):
    # NDA costs performance; ReCon recovers a substantial part of it.
    assert nda_mean < 0.99
    assert recon_mean > nda_mean
    reduction = overhead_reduction(overhead(nda_mean), overhead(recon_mean))
    assert reduction > 0.15, f"overhead reduction only {reduction:.1%}"
    # Per benchmark: ReCon never makes things substantially worse.
    for name in names:
        nda = normalized_ipc(results, name, SchemeKind.NDA)
        recon = normalized_ipc(results, name, SchemeKind.NDA_RECON)
        assert recon > nda - 0.02, f"{name}: ReCon regressed NDA"


def test_fig5_nda_spec2017(benchmark):
    table, names, results, nda_mean, recon_mean = benchmark.pedantic(
        _run_suite, args=(spec2017_suite(),), rounds=1, iterations=1
    )
    reduction = overhead_reduction(overhead(nda_mean), overhead(recon_mean))
    chart = bar_chart(
        {
            f"{name} ({label})": normalized_ipc(results, name, scheme)
            for name in names
            for label, scheme in (
                ("NDA", SchemeKind.NDA),
                ("+ReCon", SchemeKind.NDA_RECON),
            )
        },
        max_value=1.05,
        reference=1.0,
    )
    summary = (
        f"{table}\n\n{chart}\n\n"
        f"overhead: NDA {overhead(nda_mean):.1%} -> "
        f"NDA+ReCon {overhead(recon_mean):.1%} "
        f"(reduction {reduction:.1%}; paper: 13.2% -> 9.4%, 28.7%)"
    )
    emit("fig5_spec2017", "Figure 5 (upper): NDA+ReCon on SPEC2017", summary)
    _check_shape(names, results, nda_mean, recon_mean)
    # The paper's worst losers are the pointer benchmarks.
    assert normalized_ipc(results, "xalancbmk", SchemeKind.NDA) < 0.9
    assert normalized_ipc(results, "mcf", SchemeKind.NDA) < 0.95
    # ...and the streaming FP codes are unaffected.
    assert normalized_ipc(results, "lbm", SchemeKind.NDA) > 0.97
    assert normalized_ipc(results, "bwaves", SchemeKind.NDA) > 0.97


def test_fig5_nda_spec2006(benchmark):
    table, names, results, nda_mean, recon_mean = benchmark.pedantic(
        _run_suite, args=(spec2006_suite(),), rounds=1, iterations=1
    )
    reduction = overhead_reduction(overhead(nda_mean), overhead(recon_mean))
    summary = (
        f"{table}\n\noverhead: NDA {overhead(nda_mean):.1%} -> "
        f"NDA+ReCon {overhead(recon_mean):.1%} "
        f"(reduction {reduction:.1%}; paper: 10.4% -> 7.2%, 31.5%)"
    )
    emit("fig5_spec2006", "Figure 5 (lower): NDA+ReCon on SPEC2006", summary)
    _check_shape(names, results, nda_mean, recon_mean)
    assert normalized_ipc(results, "xalancbmk", SchemeKind.NDA) < 0.92
    assert normalized_ipc(results, "libquantum", SchemeKind.NDA) > 0.97
