"""Figure 4 — percentage breakdown of leakage out of all address space.

For every SPEC2017 and SPEC2006 benchmark, run the Clueless analyzer over
the trace and report the fraction of the program's data footprint leaked
under global DIFT and under direct load pairs only.  Paper result: on
average ~53% of the touched address space leaks under DIFT and ~32%
through direct load pairs (pairs cover ~60% of all leakage); for gcc,
imagick, mcf and xalancbmk the two are nearly identical.
"""

from repro import Clueless, build_trace
from repro.sim import format_table
from repro.workloads import spec2006_suite, spec2017_suite

from benchmarks.common import BENCH_LENGTH, emit


def _run():
    rows = []
    fractions = []
    for profile in spec2017_suite() + spec2006_suite():
        report = Clueless().run(build_trace(profile, BENCH_LENGTH).trace())
        rows.append(
            [
                profile.label,
                f"{report.dift_fraction:.1%}",
                f"{report.pair_fraction:.1%}",
                f"{report.pair_coverage:.1%}",
            ]
        )
        fractions.append((report.dift_fraction, report.pair_fraction, report))
    dift_avg = sum(f[0] for f in fractions) / len(fractions)
    pair_avg = sum(f[1] for f in fractions) / len(fractions)
    rows.append(["average", f"{dift_avg:.1%}", f"{pair_avg:.1%}", ""])
    table = format_table(
        ["benchmark", "DIFT leaked", "load-pair leaked", "pairs/DIFT"], rows
    )
    return table, fractions


def test_fig4_leakage_breakdown(benchmark):
    table, fractions = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig4_leakage", "Figure 4: leakage breakdown (DIFT vs load pairs)", table)

    reports = {f[2]: f for f in fractions}
    dift_avg = sum(f[0] for f in fractions) / len(fractions)
    pair_avg = sum(f[1] for f in fractions) / len(fractions)
    # Shape: a large share of the footprint leaks, pairs capture most of
    # it, and pairs never exceed DIFT (they are a subset).
    assert 0.15 < dift_avg < 0.8
    assert 0.1 < pair_avg <= dift_avg
    assert pair_avg / dift_avg > 0.45  # paper: ~60% coverage on average
    for dift, pair, _ in fractions:
        assert pair <= dift + 1e-9
