"""Shared plumbing for the figure/table benches.

Every bench regenerates one table or figure of the paper: it runs the
experiment once (``benchmark.pedantic(rounds=1)``), prints the rows the
figure plots, and also writes them to ``results/<name>.txt`` so the
output survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Sequence, Tuple

from repro import SchemeKind
from repro.sim import default_trace_length, run_suite
from repro.sim.runner import RunResult, TraceCache
from repro.workloads import BenchmarkProfile

__all__ = [
    "BENCH_LENGTH",
    "PARSEC_LENGTH",
    "emit",
    "run_grid",
    "results_dir",
]

#: Single-thread trace length for the figure benches (override with the
#: REPRO_TRACE_LEN environment variable).  The suite's shape assertions
#: are validated at both 30k (default) and 48k; longer traces warm the
#: mechanism further (recovery rises, cold-start overhead components
#: shrink) at linear cost.
BENCH_LENGTH = default_trace_length(30_000)

#: Per-thread trace length for the 4-core PARSEC bench.
PARSEC_LENGTH = max(2_000, BENCH_LENGTH // 3)


def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


def emit(name: str, title: str, body: str) -> None:
    """Print a result table and persist it under results/."""
    text = f"=== {title} ===\n{body}\n"
    print("\n" + text)
    (results_dir() / f"{name}.txt").write_text(text)


def run_grid(
    profiles: Sequence[BenchmarkProfile],
    schemes: Sequence[SchemeKind],
    threads: int = 1,
    length: int = None,
) -> Dict[Tuple[str, SchemeKind], RunResult]:
    """Run benchmarks x schemes on identical traces (fresh cache)."""
    if length is None:
        length = BENCH_LENGTH if threads == 1 else PARSEC_LENGTH
    return run_suite(
        profiles, schemes, length, threads=threads, cache=TraceCache()
    )
