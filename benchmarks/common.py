"""Shared plumbing for the figure/table benches.

Every bench regenerates one table or figure of the paper: it runs the
experiment once (``benchmark.pedantic(rounds=1)``), prints the rows the
figure plots, and also writes them to ``results/<name>.txt`` so the
output survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Sequence

from repro import SchemeKind
from repro.sim import RunConfig, default_trace_length, run_suite
from repro.sim.engine import SuiteResult
from repro.sim.store import STORE_ENV, ResultStore, default_store_root
from repro.workloads import BenchmarkProfile

__all__ = [
    "BENCH_LENGTH",
    "PARSEC_LENGTH",
    "bench_store",
    "emit",
    "run_grid",
    "results_dir",
]

#: Single-thread trace length for the figure benches (override with the
#: REPRO_TRACE_LEN environment variable).  The suite's shape assertions
#: are validated at both 30k (default) and 48k; longer traces warm the
#: mechanism further (recovery rises, cold-start overhead components
#: shrink) at linear cost.
BENCH_LENGTH = default_trace_length(30_000)

#: Per-thread trace length for the 4-core PARSEC bench.
PARSEC_LENGTH = max(2_000, BENCH_LENGTH // 3)


def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


def emit(name: str, title: str, body: str) -> None:
    """Print a result table and persist it under results/."""
    text = f"=== {title} ===\n{body}\n"
    print("\n" + text)
    (results_dir() / f"{name}.txt").write_text(text)


def bench_store() -> Optional[ResultStore]:
    """The benches' persistent result store (``results/.store``).

    Completed runs are memoized under a content hash of their full
    configuration, so re-running a bench is near-instant.  Point the
    ``REPRO_STORE`` environment variable at another directory to move
    it, or set ``REPRO_STORE=off`` to disable persistence.
    """
    if os.environ.get(STORE_ENV) is not None:
        root = default_store_root()
        return None if root is None else ResultStore(root)
    return ResultStore(results_dir() / ".store")


def run_grid(
    profiles: Sequence[BenchmarkProfile],
    schemes: Sequence[SchemeKind],
    threads: int = 1,
    length: int = None,
    jobs: int = None,
) -> SuiteResult:
    """Run benchmarks x schemes on identical traces through the engine.

    Fans out across ``jobs`` worker processes (default: the
    ``REPRO_JOBS`` environment variable) and memoizes completed runs in
    :func:`bench_store`.
    """
    if length is None:
        length = BENCH_LENGTH if threads == 1 else PARSEC_LENGTH
    return run_suite(
        profiles,
        schemes,
        length,
        config=RunConfig(threads=threads),
        jobs=jobs,
        store=bench_store(),
    )
