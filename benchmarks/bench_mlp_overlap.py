"""Memory-level parallelism win of the MSHR-based transaction engine.

A miss-dense kernel (independent loads, every one a cold miss) is run
under increasingly bounded MSHR files.  With a single MSHR every primary
miss stalls until the previous fill lands — the legacy serialized
behavior; with eight or more, misses overlap and the kernel's runtime
collapses toward issue-limited.  The bench asserts the overlap win and
writes the cycle counts to ``results/mlp_overlap.json`` (the CI
``memory-parity`` job uploads it as the before/after artifact).
"""

import dataclasses
import json

from repro.common import (
    MemoryParams,
    MemoryTimingParams,
    SchemeKind,
    SystemParams,
)
from repro.isa import Program
from repro.sim import System, format_table

from benchmarks.common import emit, results_dir

#: Independent cold-miss loads in the kernel.
LOADS = 400

#: MSHR budgets swept, most constrained first.  ``None`` = unbounded.
MSHR_SWEEP = (1, 2, 4, 8, 16, None)


def miss_dense_trace():
    """Independent loads, one fresh cache line each: pure MLP."""
    prog = Program()
    for i in range(LOADS):
        prog.li(1, 0x10000 + i * 64)
        prog.load(2, base=1)
    return prog.trace()


def run_kernel(mshr_entries):
    params = SystemParams(
        memory=dataclasses.replace(
            MemoryParams(),
            timing=MemoryTimingParams(mshr_entries=mshr_entries),
        )
    )
    result = System(params, [miss_dense_trace()], SchemeKind.UNSAFE).run()
    return result.cycles


def _run():
    cycles = {entries: run_kernel(entries) for entries in MSHR_SWEEP}
    baseline = cycles[1]
    rows = [
        [
            "unbounded" if entries is None else str(entries),
            str(count),
            f"{baseline / count:.2f}x",
        ]
        for entries, count in cycles.items()
    ]
    table = format_table(["MSHRs", "cycles", "speedup vs 1"], rows)
    payload = {
        "loads": LOADS,
        "cycles": {
            "unbounded" if entries is None else str(entries): count
            for entries, count in cycles.items()
        },
        "speedup_8_vs_1": baseline / cycles[8],
    }
    (results_dir() / "mlp_overlap.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return table, cycles


def test_mshrs_overlap_misses(benchmark):
    table, cycles = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "mlp_overlap",
        f"MLP overlap: {LOADS} independent cold misses vs MSHR budget",
        table,
    )
    # The headline win: eight MSHRs beat one measurably (>= 2x here;
    # "measurably" in the issue's sense is far below this).
    assert cycles[8] * 2 <= cycles[1], (
        f"8 MSHRs ({cycles[8]}) not measurably faster than 1 ({cycles[1]})"
    )
    # More MSHRs never hurt: the sweep is monotonically non-increasing.
    ordered = [cycles[e] for e in MSHR_SWEEP]
    assert ordered == sorted(ordered, reverse=True), ordered
    # Unbounded matches a large-enough bound (the knob only removes work).
    assert cycles[None] <= cycles[16]
