"""Table 1 — memory-dependence prediction cases for store-to-load
forwarding (the Figure 2 gadget).

The gadget, executing under an unresolved bounds check:

    PC1: load  r2, [r1]     ; speculative (potential secret)
    PC2: store r3, [r2]     ; address depends on the secret: unresolved
    PC3: load  r5, [r4]     ; [r4] was revealed non-speculatively
    PC4: load  r6, [r5]     ; dereferences PC3's value

Each of PC3/PC4 can be predicted independent (MEM) or store-dependent
(STF).  Paper result (Table 1): STT observes at most ``ld [r4]``; ReCon
additionally observes ``ld [r5]`` *only* in the MEM/MEM case — and that
observation leaks nothing new, because [r4] already leaked
non-speculatively.
"""

import pytest

from repro import Program, SchemeKind, StatSet, SystemParams
from repro.common import MemPrediction
from repro.core import Core
from repro.memory import MemoryHierarchy
from repro.security import make_policy
from repro.sim import format_table

from benchmarks.common import emit

SLOW = 0x40000
SECRET_PTR = 0x6000   # r1: concealed (never revealed)
PUBLIC_PTR = 0x1000   # r4: revealed by non-speculative execution
CASES = [
    ("1", MemPrediction.MEM, MemPrediction.MEM),
    ("2", MemPrediction.MEM, MemPrediction.STF),
    ("3", MemPrediction.STF, MemPrediction.MEM),
    ("4", MemPrediction.STF, MemPrediction.STF),
]


def _build(pc3_pred, pc4_pred):
    prog = Program()
    prog.poke(SECRET_PTR, 0x7000)
    prog.poke(PUBLIC_PTR, 0x2000)
    # Non-speculative execution reveals [r4] (a committed load pair),
    # then serializes so the reveal lands before the gadget dispatches.
    prog.li(4, PUBLIC_PTR)
    prog.load(5, base=4)
    prog.load(6, base=5)
    prog.branch(6, mispredict=True)
    # The bounds check: unresolved while the gadget body executes.
    prog.li(8, SLOW)
    prog.load(9, base=8)
    prog.branch(9)
    # The gadget.
    prog.li(1, SECRET_PTR)
    prog.li(3, 0xAB)
    pc1 = prog.load(2, base=1)                       # PC1
    prog.store(3, base=2)                            # PC2 (unresolved)
    pc3 = prog.load(5, base=4, forced_prediction=pc3_pred)   # PC3
    pc4 = prog.load(6, base=5, forced_prediction=pc4_pred)   # PC4
    return prog, pc3.seq, pc4.seq


def _observed(scheme, pc3_pred, pc4_pred):
    prog, pc3_seq, pc4_seq = _build(pc3_pred, pc4_pred)
    params = SystemParams()
    stats = StatSet()
    core = Core(
        0,
        params,
        prog.trace(),
        MemoryHierarchy(params),
        make_policy(scheme, stats),
        stats,
    )
    core.run()
    speculative = {
        obs.seq for obs in core.observations if obs.speculative
    }
    return pc3_seq in speculative, pc4_seq in speculative


def _fmt(pc3, pc4):
    return f"{'ld [r4]' if pc3 else '—':8s}, {'ld [r5]' if pc4 else '—'}"


def _run():
    rows = []
    outcomes = {}
    for label, pc3_pred, pc4_pred in CASES:
        stt = _observed(SchemeKind.STT, pc3_pred, pc4_pred)
        recon = _observed(SchemeKind.STT_RECON, pc3_pred, pc4_pred)
        outcomes[label] = (stt, recon)
        rows.append(
            [
                label,
                pc3_pred.value.upper(),
                pc4_pred.value.upper(),
                _fmt(*stt),
                _fmt(*recon),
            ]
        )
    table = format_table(
        ["case", "PC3", "PC4", "STT observation", "ReCon observation"], rows
    )
    return table, outcomes


def test_table1_store_forwarding_cases(benchmark):
    table, outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "table1_stlf",
        "Table 1: memory-dependence prediction cases (Figure 2 gadget)",
        table,
    )
    # Case 1 (MEM/MEM): STT observes only ld [r4]; ReCon also ld [r5].
    assert outcomes["1"][0] == (True, False)
    assert outcomes["1"][1] == (True, True)
    # Case 2 (MEM/STF): forwarding conceals; ld [r5] hidden in both.
    assert outcomes["2"][0] == (True, False)
    assert outcomes["2"][1] == (True, False)
    # Cases 3-4 (PC3 predicted STF): nothing is observed in either.
    for case in ("3", "4"):
        assert outcomes[case][0] == (False, False)
        assert outcomes[case][1] == (False, False)
