"""Figure 11 — load-pair table size sensitivity.

The LPT is indexed by physical register id; shrinking it introduces
conflicts (tag mismatches) that drop reveals.  Paper result: performance
is almost unaffected down to LPT/64 — load pairs sit close together in
the pipeline — with mcf the only benchmark that degrades visibly, because
its pairs are far apart (many interleaved chains).
"""

from repro import SchemeKind
from repro.sim import format_table, geomean
from repro.sim.runner import TraceCache, run_benchmark
from repro.sim.sweep import lpt_size_variants
from repro.workloads import spec2017_suite

from benchmarks.common import BENCH_LENGTH, emit

NAMES = ("gcc", "mcf", "omnetpp", "xalancbmk", "leela")


def _run():
    profiles = [p for p in spec2017_suite() if p.name in NAMES]
    variants = lpt_size_variants()
    labels = [label for label, _ in variants]
    columns = {label: {} for label in labels}
    conflicts = {label: {} for label in labels}
    for profile in profiles:
        cache = TraceCache()
        unsafe = run_benchmark(
            profile, SchemeKind.UNSAFE, BENCH_LENGTH, cache=cache
        )
        for label, params in variants:
            recon = run_benchmark(
                profile,
                SchemeKind.STT_RECON,
                BENCH_LENGTH,
                params=params,
                cache=cache,
            )
            columns[label][profile.name] = recon.ipc / unsafe.ipc
            conflicts[label][profile.name] = recon.stats.lpt_conflicts
    rows = []
    for name in NAMES:
        rows.append(
            [name]
            + [f"{columns[label][name]:.3f}" for label in labels]
            + [str(conflicts[labels[-1]][name])]
        )
    means = {
        label: geomean([columns[label][n] for n in NAMES]) for label in labels
    }
    rows.append(["geomean"] + [f"{means[label]:.3f}" for label in labels] + [""])
    table = format_table(
        ["benchmark"] + labels + [f"conflicts@{labels[-1]}"], rows
    )
    return table, columns, conflicts, means, labels


def test_fig11_lpt_size_sensitivity(benchmark):
    table, columns, conflicts, means, labels = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    emit(
        "fig11_lpt_sensitivity",
        "Figure 11: STT+ReCon with shrinking load-pair tables "
        "(paper: only mcf degrades)",
        table,
    )
    full, smallest = labels[0], labels[-1]
    # Shape: shrinking the LPT costs little on average...
    assert means[smallest] > means[full] - 0.06
    # ...the early shrink steps are almost free (pairs sit close)...
    assert means[labels[1]] > means[full] - 0.02
    # ...conflicts do appear at the smallest size...
    assert sum(conflicts[smallest].values()) > 0
    # ...and mcf (interleaved chains => distant pairs) is among the most
    # conflict-prone benchmarks.
    per_pair = {
        name: conflicts[smallest][name] for name in columns[smallest]
    }
    top_two = sorted(per_pair, key=per_pair.get, reverse=True)[:2]
    assert "mcf" in top_two
    # No benchmark gains from a smaller table beyond noise.
    for name in columns[full]:
        assert columns[smallest][name] <= columns[full][name] + 0.02
