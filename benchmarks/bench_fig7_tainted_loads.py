"""Figure 7 — tainted loads of STT+ReCon normalized to STT (SPEC2017).

Paper result: ReCon leaves on average 43.8% fewer loads tainted, because
a load to a revealed word does not taint its destination.  The paper also
notes that taint *count* reduction does not translate proportionally to
performance (perlbench vs xalancbmk).
"""

from repro import SchemeKind
from repro.sim import format_table
from repro.workloads import spec2017_suite

from benchmarks.common import emit, run_grid

SCHEMES = (SchemeKind.UNSAFE, SchemeKind.STT, SchemeKind.STT_RECON)


def _run():
    profiles = spec2017_suite()
    results = run_grid(profiles, SCHEMES)
    rows = []
    ratios = []
    for profile in profiles:
        stt = results[(profile.name, SchemeKind.STT)].stats.tainted_loads
        recon = results[
            (profile.name, SchemeKind.STT_RECON)
        ].stats.tainted_loads
        ratio = recon / stt if stt else 1.0
        ratios.append((profile.name, stt, recon, ratio))
        rows.append(
            [profile.name, str(stt), str(recon), f"{ratio:.3f}"]
        )
    meaningful = [r for _, s, _, r in ratios if s > 50]
    avg = sum(meaningful) / len(meaningful)
    rows.append(["average (taint-heavy)", "", "", f"{avg:.3f}"])
    table = format_table(
        ["benchmark", "STT tainted", "ReCon tainted", "ratio"], rows
    )
    return table, ratios, avg


def test_fig7_tainted_loads(benchmark):
    table, ratios, avg = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "fig7_tainted_loads",
        "Figure 7: tainted loads, STT+ReCon normalized to STT "
        "(paper average: 0.562)",
        f"{table}\n\naverage ratio {avg:.3f} => {1 - avg:.1%} fewer tainted "
        "loads (paper: 43.8% fewer)",
    )
    # Shape: ReCon substantially reduces tainted loads overall...
    assert avg < 0.85
    # ...and never increases them much.  (A small increase is possible:
    # lifting defenses lets *more* loads execute speculatively, and the
    # extra ones may touch unrevealed words.)
    for name, stt, recon, ratio in ratios:
        if stt > 50:
            assert ratio < 1.3, f"{name}: tainted loads grew under ReCon"
    # Pointer benchmarks see large reductions.
    by_name = {name: ratio for name, _, _, ratio in ratios}
    assert by_name["xalancbmk"] < 0.85
    assert by_name["mcf"] < 0.85
