"""Hot-path throughput trajectory — vectorized vs legacy core.

Times the same grid cells under both simulator backends
(``REPRO_HOTPATH=legacy`` and ``=vector``), on pre-built traces so only
simulation is inside the timed region, and writes the measurements to
``results/BENCH_hotpath.json``: uops/s per cell per backend, the
vector/legacy speedup, and a per-phase profile breakdown of the vector
run (dispatch / issue / commit / events / memory).

The regression gate compares the measured *speedup ratio* — not
absolute uops/s, which tracks the host machine — against the committed
baseline (``benchmarks/data/bench_hotpath_baseline.json``) and fails on
a >10% regression.  CI runs this bench on every push and uploads the
JSON artifact, so the trajectory of the hot path is visible per commit.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import time
from pathlib import Path

from repro import SchemeKind
from repro.core.hotpath import HOTPATH_ENV
from repro.sim import RunConfig, TraceCache, default_trace_length, run_benchmark
from repro.workloads import BenchmarkProfile, get_benchmark

from benchmarks.common import emit, results_dir

#: Shorter than the figure benches: every cell runs 2 backends x 3 rounds.
HOTPATH_LENGTH = default_trace_length(20_000)

#: Every node of every chain on its own cache line: the miss-heavy chase
#: regime (see BenchmarkProfile.node_stride_bytes) that stresses the
#: memory-side hot path rather than the issue queue.
_MISS_HEAVY = BenchmarkProfile(
    name="chase64",
    suite="micro",
    kernel_weights={"pointer_chase": 1.0},
    chains=24,
    chain_nodes=2048,
    node_stride_bytes=64,
    chase_steps=8,
)

#: (label, profile, scheme) cells of the trajectory.
CELLS = (
    ("spec2017/mcf/unsafe", get_benchmark("spec2017", "mcf"), SchemeKind.UNSAFE),
    ("spec2017/mcf/stt+recon", get_benchmark("spec2017", "mcf"), SchemeKind.STT_RECON),
    ("spec2017/mcf/dom+recon", get_benchmark("spec2017", "mcf"), SchemeKind.DOM_RECON),
    ("micro/chase64/stt+recon", _MISS_HEAVY, SchemeKind.STT_RECON),
)

ROUNDS = 3
BASELINE_PATH = Path(__file__).resolve().parent / "data" / "bench_hotpath_baseline.json"
TOLERANCE = 0.9  # fail when speedup drops below 90% of the baseline

_PHASES = ("dispatch", "issue", "commit", "events", "memory")


def _time_cell(profile, scheme, cache, backend):
    """Best-of-ROUNDS uops/s for one cell under one backend."""
    os.environ[HOTPATH_ENV] = backend
    best = 0.0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = run_benchmark(
            profile, scheme, HOTPATH_LENGTH, config=RunConfig(cache=cache)
        )
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, result.stats.committed_uops / elapsed)
    return best


def _phase_of(filename, funcname):
    """Bucket a profiled function into a pipeline phase."""
    if "events.py" in filename:
        return "events"
    if f"{os.sep}memory{os.sep}" in filename:
        return "memory"
    for phase in ("dispatch", "issue", "commit"):
        if phase in funcname:
            return phase
    return "other"


def _phase_breakdown(profile, scheme, cache):
    """Fraction of vector-run self-time spent in each pipeline phase."""
    os.environ[HOTPATH_ENV] = "vector"
    profiler = cProfile.Profile()
    profiler.enable()
    run_benchmark(profile, scheme, HOTPATH_LENGTH, config=RunConfig(cache=cache))
    profiler.disable()
    stats = pstats.Stats(profiler)
    buckets = {phase: 0.0 for phase in (*_PHASES, "other")}
    total = 0.0
    for (filename, _, funcname), entry in stats.stats.items():
        tottime = entry[2]
        buckets[_phase_of(filename, funcname)] += tottime
        total += tottime
    if total <= 0:
        return {}
    return {phase: spent / total for phase, spent in buckets.items()}


def _run():
    saved = os.environ.get(HOTPATH_ENV)
    cache = TraceCache()
    cells = {}
    try:
        for label, profile, scheme in CELLS:
            # Build the trace once, outside every timed region.
            cache.get(profile, 1, HOTPATH_LENGTH)
            legacy = _time_cell(profile, scheme, cache, "legacy")
            vector = _time_cell(profile, scheme, cache, "vector")
            cells[label] = {
                "legacy_uops_per_sec": round(legacy),
                "vector_uops_per_sec": round(vector),
                "speedup": round(vector / legacy, 3) if legacy else 0.0,
                "phases": {
                    k: round(v, 4)
                    for k, v in _phase_breakdown(profile, scheme, cache).items()
                },
            }
    finally:
        if saved is None:
            os.environ.pop(HOTPATH_ENV, None)
        else:
            os.environ[HOTPATH_ENV] = saved
    return {"length": HOTPATH_LENGTH, "rounds": ROUNDS, "cells": cells}


def test_hotpath_throughput_trajectory(benchmark):
    payload = benchmark.pedantic(_run, rounds=1, iterations=1)
    out = results_dir() / "BENCH_hotpath.json"
    out.write_text(json.dumps(payload, indent=2))

    rows = []
    for label, cell in payload["cells"].items():
        rows.append(
            f"{label:28s} legacy {cell['legacy_uops_per_sec'] / 1000:7.1f}k"
            f"  vector {cell['vector_uops_per_sec'] / 1000:7.1f}k"
            f"  speedup {cell['speedup']:.2f}x"
        )
    emit("BENCH_hotpath", "hot-path throughput (uops/s)", "\n".join(rows))

    for label, cell in payload["cells"].items():
        assert cell["vector_uops_per_sec"] > 0, label
        assert cell["legacy_uops_per_sec"] > 0, label

    baseline = json.loads(BASELINE_PATH.read_text())
    for label, base_cell in baseline["cells"].items():
        cell = payload["cells"].get(label)
        assert cell is not None, f"baseline cell {label} missing from bench"
        floor = base_cell["speedup"] * TOLERANCE
        assert cell["speedup"] >= floor, (
            f"{label}: vector/legacy speedup {cell['speedup']:.2f}x fell "
            f"below {floor:.2f}x (baseline {base_cell['speedup']:.2f}x "
            f"- 10% tolerance); the hot path has regressed"
        )
