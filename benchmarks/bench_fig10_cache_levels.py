"""Figure 10 — ReCon restricted to L1 only, L1+L2, or all cache levels.

Reveal bits stored only in the L1 are lost on L1 eviction; adding the L2
and the LLC/directory keeps reveals alive across larger working sets.
Paper result (STT, SPEC2017): overhead 8.9% unoptimized, 7.3% with
L1-only ReCon, 6.3% with L1+L2, 4.9% with all levels; small-footprint
benchmarks (leela, cactuBSSN) recover already at L1, large-footprint ones
(gcc, mcf, omnetpp, xalancbmk) need L2/LLC.
"""

from repro import SchemeKind
from repro.sim import format_table, geomean, normalized_ipc
from repro.sim.sweep import recon_level_variants
from repro.workloads import spec2017_suite

from benchmarks.common import emit, run_grid

#: Pointer-heavy subset: the benchmarks Figure 10 differentiates.
NAMES = ("gcc", "mcf", "omnetpp", "xalancbmk", "leela", "deepsjeng")


def _run():
    profiles = [p for p in spec2017_suite() if p.name in NAMES]
    base = run_grid(profiles, (SchemeKind.UNSAFE, SchemeKind.STT))
    columns = {"STT": {}}
    for name in NAMES:
        columns["STT"][name] = normalized_ipc(base, name, SchemeKind.STT)
    for label, params in recon_level_variants():
        results = {}
        for profile in profiles:
            from benchmarks.common import BENCH_LENGTH
            from repro.sim.runner import TraceCache, run_benchmark

            cache = TraceCache()
            unsafe = run_benchmark(
                profile, SchemeKind.UNSAFE, BENCH_LENGTH, cache=cache
            )
            recon = run_benchmark(
                profile,
                SchemeKind.STT_RECON,
                BENCH_LENGTH,
                params=params,
                cache=cache,
            )
            results[profile.name] = recon.ipc / unsafe.ipc
        columns[label] = results
    order = ["STT", "L1", "L1+L2", "all-levels"]
    rows = []
    for name in NAMES:
        rows.append([name] + [f"{columns[c][name]:.3f}" for c in order])
    means = {c: geomean([columns[c][n] for n in NAMES]) for c in order}
    rows.append(["geomean"] + [f"{means[c]:.3f}" for c in order])
    table = format_table(["benchmark"] + order, rows)
    return table, columns, means


def test_fig10_cache_level_sweep(benchmark):
    table, columns, means = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "fig10_cache_levels",
        "Figure 10: STT+ReCon applied to different cache levels "
        "(paper geomeans: STT 0.911, L1 0.927, L1+L2 0.937, all 0.951)",
        table,
    )
    # Monotone shape: more levels never hurt, each step helps somewhere.
    assert means["STT"] <= means["L1"] + 0.005
    assert means["L1"] <= means["L1+L2"] + 0.005
    assert means["L1+L2"] <= means["all-levels"] + 0.005
    assert means["all-levels"] > means["STT"] + 0.005
    # Large-footprint benchmarks need more than the L1 (paper: gcc, mcf,
    # omnetpp, xalancbmk lose reveals to L1 evictions).
    big = ["mcf", "omnetpp", "xalancbmk"]
    l1_gain = geomean([columns["L1"][n] for n in big]) - geomean(
        [columns["STT"][n] for n in big]
    )
    full_gain = geomean([columns["all-levels"][n] for n in big]) - geomean(
        [columns["STT"][n] for n in big]
    )
    assert full_gain > l1_gain
