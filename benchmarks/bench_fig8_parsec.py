"""Figure 8 — normalized execution time of parallel benchmarks (PARSEC).

Four cores share one MESI hierarchy; reveal bits propagate between cores
through the directory (paper §5.3).  Paper result: NDA adds 9.7% and STT
4.4% to total execution time; ReCon reduces those overheads by 46.7% and
78.6%, to 5.2% and 1.0%.
"""

from repro import SchemeKind
from repro.sim import format_table, geomean, grouped_bar_chart, overhead_reduction
from repro.workloads import parsec_suite

from benchmarks.common import emit, run_grid

SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.NDA_RECON,
    SchemeKind.STT,
    SchemeKind.STT_RECON,
)
THREADS = 4


def _run():
    profiles = parsec_suite()
    results = run_grid(profiles, SCHEMES, threads=THREADS)
    rows = []
    series = {scheme: [] for scheme in SCHEMES[1:]}
    for profile in profiles:
        base = results[(profile.name, SchemeKind.UNSAFE)].cycles
        row = [profile.name]
        for scheme in SCHEMES[1:]:
            ratio = results[(profile.name, scheme)].cycles / base
            series[scheme].append(ratio)
            row.append(f"{ratio:.3f}")
        rows.append(row)
    mean_row = ["geomean"]
    means = {}
    for scheme in SCHEMES[1:]:
        means[scheme] = geomean(series[scheme])
        mean_row.append(f"{means[scheme]:.3f}")
    rows.append(mean_row)
    table = format_table(
        ["benchmark", "NDA", "NDA+ReCon", "STT", "STT+ReCon"], rows
    )
    return table, results, means


def test_fig8_parsec_execution_time(benchmark):
    table, results, means = benchmark.pedantic(_run, rounds=1, iterations=1)
    nda_red = overhead_reduction(
        means[SchemeKind.NDA] - 1, means[SchemeKind.NDA_RECON] - 1
    )
    stt_red = overhead_reduction(
        means[SchemeKind.STT] - 1, means[SchemeKind.STT_RECON] - 1
    )
    chart = grouped_bar_chart(
        [
            (
                profile_name,
                {
                    scheme.value: results[(profile_name, scheme)].cycles
                    / results[(profile_name, SchemeKind.UNSAFE)].cycles
                    for scheme in SCHEMES[1:]
                },
            )
            for profile_name in sorted({name for name, _ in results})
        ],
        max_value=1.25,
        reference=1.0,
    )
    summary = (
        f"{table}\n\n{chart}\n\n"
        f"time overhead: NDA {means[SchemeKind.NDA] - 1:+.1%} -> "
        f"{means[SchemeKind.NDA_RECON] - 1:+.1%} (reduction {nda_red:.1%}; "
        f"paper: 9.7% -> 5.2%, 46.7%)\n"
        f"time overhead: STT {means[SchemeKind.STT] - 1:+.1%} -> "
        f"{means[SchemeKind.STT_RECON] - 1:+.1%} (reduction {stt_red:.1%}; "
        f"paper: 4.4% -> 1.0%, 78.6%)"
    )
    emit("fig8_parsec", "Figure 8: PARSEC normalized execution time", summary)

    # Shape: both schemes cost time; ReCon recovers a large share; NDA
    # costs at least as much as STT.
    assert means[SchemeKind.NDA] > 1.005
    assert means[SchemeKind.STT] > 1.005
    assert means[SchemeKind.NDA] >= means[SchemeKind.STT] - 0.005
    assert means[SchemeKind.NDA_RECON] < means[SchemeKind.NDA]
    assert means[SchemeKind.STT_RECON] < means[SchemeKind.STT]
    assert stt_red > 0.2
    # canneal (shared pointer chasing) is the big loser/winner.
    base = results[("canneal", SchemeKind.UNSAFE)].cycles
    stt = results[("canneal", SchemeKind.STT)].cycles / base
    recon = results[("canneal", SchemeKind.STT_RECON)].cycles / base
    assert stt > 1.03
    assert recon < stt
    # compute-bound benchmarks are untouched.
    for flat in ("blackscholes", "swaptions"):
        assert results[(flat, SchemeKind.STT)].cycles / results[
            (flat, SchemeKind.UNSAFE)
        ].cycles < 1.02
