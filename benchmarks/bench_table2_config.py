"""Table 2 — the simulated system configuration.

Validates that the default :class:`~repro.common.params.SystemParams`
reproduces the paper's gem5 configuration (scaled capacities documented
in DESIGN.md) and prints it in Table 2's layout.
"""

from repro import SystemParams
from repro.sim import format_table

from benchmarks.common import emit


def _build_table() -> str:
    params = SystemParams()
    params.validate()
    core, mem = params.core, params.memory
    rows = [
        ["Core", "3GHz OoO (4 cores for parallel benchmarks)"],
        ["Decode width", f"{core.decode_width} instructions"],
        ["Issue / Commit width", f"{core.issue_width} instructions"],
        ["Instruction queue", f"{core.iq_entries} entries"],
        ["Reorder buffer", f"{core.rob_entries} entries"],
        ["Load queue", f"{core.lq_entries} entries"],
        ["Store queue/buffer", f"{core.sq_entries} entries"],
        [
            "L1 D cache",
            f"{mem.l1.size_bytes // 1024} KiB, {mem.l1.ways} ways, "
            f"{mem.l1.latency} cycles roundtrip",
        ],
        [
            "L2 cache",
            f"{mem.l2.size_bytes // 1024} KiB, {mem.l2.ways} ways, "
            f"{mem.l2.latency} cycles roundtrip",
        ],
        [
            "LLC cache",
            f"{mem.llc.size_bytes // 1024} KiB, {mem.llc.ways} ways, "
            f"{mem.llc.latency} cycles roundtrip",
        ],
        ["Coherence protocol", "3-level MESI"],
        ["Coherence directory", "In-cache (LLC)"],
        ["Cache line size", f"{mem.l1.line_bytes} bytes"],
        ["DRAM latency", f"{mem.dram_latency} cycles"],
    ]
    return format_table(["Parameter", "Value"], rows)


def test_table2_configuration(benchmark):
    table = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    emit("table2_config", "Table 2: simulated system configuration", table)

    params = SystemParams()
    # The pipeline resources are Table 2's numbers verbatim.
    assert params.core.decode_width == 8
    assert params.core.rob_entries == 352
    assert params.core.iq_entries == 160
    assert params.core.lq_entries == 128
    assert params.core.sq_entries == 72
    # Latencies are Table 2's; capacities are scaled by 1/16 (DESIGN.md).
    assert params.memory.l1.latency == 2
    assert params.memory.l2.latency == 6
    assert params.memory.llc.latency == 16
    assert params.memory.l1.ways == 8
    assert params.memory.l2.ways == 16
    assert params.memory.llc.ways == 32
