"""Ablation — ReCon vs SPT-lite vs an oracle with perfect knowledge.

The paper's design argument (§4.2-4.3): restricting detection to
direct-dependence load pairs sheds the complexity of full DIFT while
capturing *most* of the exploitable non-speculative leakage.  This bench
quantifies that: it runs STT optimized by (a) the real ReCon mechanism
(LPT + coherent reveal bits), (b) SPT-lite (continuous commit-time DIFT,
§2.3 — the high-complexity alternative ReCon argues against), and (c) an
oracle that knows, per load, whether the word had already leaked under
global DIFT — an upper bound for any leakage-reuse optimization.

Shape expectation: oracle >= SPT >= (approximately) ReCon >= STT, with
ReCon capturing a large share of the oracle's recovery on pair-dominated
benchmarks — at a fraction of SPT's complexity.
"""

from repro import SchemeKind, StatSet, SystemParams
from repro.analysis.oracle import oracle_revealed_loads
from repro.core import Core
from repro.memory import MemoryHierarchy
from repro.security import make_policy
from repro.security.oracle import OracleSttPolicy
from repro.security.spt import SptSttPolicy
from repro.sim import format_table, geomean
from repro.sim.runner import TraceCache

from benchmarks.common import BENCH_LENGTH, emit

NAMES = ("gcc", "mcf", "omnetpp", "xalancbmk", "leela", "deepsjeng", "cactuBSSN")
WARMUP = (BENCH_LENGTH * 2) // 5


def _run_core(trace, policy_factory):
    params = SystemParams()
    stats = StatSet()
    policy = policy_factory(stats)
    core = Core(
        0,
        params,
        trace,
        MemoryHierarchy(params),
        policy,
        stats,
        warmup_uops=WARMUP,
    )
    core.run()
    return core.measured


def _run():
    from repro.workloads import spec2017_suite

    profiles = [p for p in spec2017_suite() if p.name in NAMES]
    cache = TraceCache()
    rows = []
    order = ("STT", "ReCon", "SPT", "Oracle")
    columns = {key: [] for key in order}
    for profile in profiles:
        trace = cache.get(profile, 1, BENCH_LENGTH)[0]
        oracle_set = oracle_revealed_loads(trace)
        unsafe = _run_core(trace, lambda s: make_policy(SchemeKind.UNSAFE, s))
        stt = _run_core(trace, lambda s: make_policy(SchemeKind.STT, s))
        recon = _run_core(
            trace, lambda s: make_policy(SchemeKind.STT_RECON, s)
        )
        spt = _run_core(trace, SptSttPolicy)
        oracle = _run_core(trace, lambda s: OracleSttPolicy(s, oracle_set))
        base_ipc = unsafe.ipc
        values = {
            "STT": stt.ipc / base_ipc,
            "ReCon": recon.ipc / base_ipc,
            "SPT": spt.ipc / base_ipc,
            "Oracle": oracle.ipc / base_ipc,
        }
        for key, value in values.items():
            columns[key].append(value)
        rows.append([profile.name] + [f"{values[k]:.3f}" for k in order])
    means = {k: geomean(v) for k, v in columns.items()}
    rows.append(["geomean"] + [f"{means[k]:.3f}" for k in order])
    table = format_table(
        ["benchmark", "STT", "STT+ReCon", "STT+SPT-lite", "STT+Oracle"], rows
    )
    return table, columns, means


def test_ablation_recon_vs_oracle(benchmark):
    table, columns, means = benchmark.pedantic(_run, rounds=1, iterations=1)
    captured = 0.0
    if means["Oracle"] > means["STT"]:
        captured = (means["ReCon"] - means["STT"]) / (
            means["Oracle"] - means["STT"]
        )
    emit(
        "ablation_oracle",
        "Ablation: ReCon (load pairs) vs SPT-lite (continuous DIFT) vs "
        "oracle (perfect knowledge)",
        f"{table}\n\nReCon captures {captured:.0%} of the oracle's recovery.",
    )
    # The oracle bounds SPT and ReCon, which bound STT (small noise ok).
    assert means["Oracle"] >= means["ReCon"] - 0.01
    assert means["Oracle"] >= means["SPT"] - 0.01
    assert means["SPT"] >= means["STT"] - 0.005
    assert means["ReCon"] >= means["STT"] - 0.005
    # The cheap detector captures a substantial share of the ideal.
    assert captured > 0.4
