"""Sampled-vs-exact accuracy and cost — the acceptance gate for sampling.

Runs the standard single-thread suite cells (SPEC-2017-style profiles x
the headline schemes) twice: exact detailed simulation and statistically
sampled simulation with default knobs.  Writes
``results/BENCH_sampling.json`` carrying, per cell, the exact IPC, the
sampled estimate with its CI half-width, the detailed-uop counts, and
the resulting cut, then asserts the two acceptance criteria:

* every per-cell IPC estimate lies within its reported confidence
  interval of the exact value, and
* sampled mode detail-simulates at least 5x fewer micro-ops than exact
  mode on every cell.

CI's ``sampling-smoke`` job runs this bench and uploads the JSON, which
``scripts/aggregate_bench.py`` folds into ``BENCH_trajectory.json``.
"""

from __future__ import annotations

import json
import time

from repro import SchemeKind
from repro.sim import RunConfig, TraceCache, default_trace_length, run_benchmark
from repro.sampling import SamplingConfig
from repro.workloads import get_benchmark

from benchmarks.common import emit, results_dir

#: Long enough for the default sampling knobs (8 units of length/48
#: uops plus a length/240 detailed re-warm each = a 5x cut exactly).
SAMPLING_LENGTH = default_trace_length(12_000)

BENCHES = ("mcf", "gcc", "xalancbmk")
SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.STT,
    SchemeKind.STT_RECON,
    SchemeKind.NDA_RECON,
)

#: Required detailed-uop reduction of sampled mode vs exact mode.
MIN_CUT = 5.0


def _run():
    sampling = SamplingConfig()
    cells = {}
    exact_wall = 0.0
    sampled_wall = 0.0
    for bench in BENCHES:
        profile = get_benchmark("spec2017", bench)
        # One trace cache per benchmark: exact and sampled runs (and all
        # schemes) measure the same workload, and the sampled runs share
        # one set of functional warm images across schemes.
        cache = TraceCache()
        for scheme in SCHEMES:
            start = time.perf_counter()
            exact = run_benchmark(
                profile, scheme, SAMPLING_LENGTH, config=RunConfig(cache=cache)
            )
            exact_wall += time.perf_counter() - start
            start = time.perf_counter()
            sampled = run_benchmark(
                profile,
                scheme,
                SAMPLING_LENGTH,
                config=RunConfig(cache=cache, sampling=sampling),
            )
            sampled_wall += time.perf_counter() - start
            estimate = sampled.sampling
            cells[f"{bench}/{scheme.value}"] = {
                "exact_ipc": round(exact.ipc, 6),
                "ipc": round(estimate.ipc, 6),
                "ipc_ci": round(estimate.ipc_ci, 6),
                "within_ci": abs(estimate.ipc - exact.ipc) <= estimate.ipc_ci,
                "samples": estimate.samples,
                "converged": estimate.converged,
                "detailed_uops": estimate.detailed_uops,
                "total_uops": estimate.total_uops,
                "cut": round(estimate.total_uops / estimate.detailed_uops, 2),
            }
    cuts = [cell["cut"] for cell in cells.values()]
    geomean_cut = 1.0
    for cut in cuts:
        geomean_cut *= cut
    geomean_cut **= 1.0 / len(cuts)
    return {
        "length": SAMPLING_LENGTH,
        "sampling": sampling.spec(),
        "cells": cells,
        "summary": {
            "cells": len(cells),
            "within_ci": sum(cell["within_ci"] for cell in cells.values()),
            "min_cut": min(cuts),
            "geomean_cut": round(geomean_cut, 2),
            "exact_wall_s": round(exact_wall, 3),
            "sampled_wall_s": round(sampled_wall, 3),
        },
    }


def test_sampling_accuracy_and_cut(benchmark):
    payload = benchmark.pedantic(_run, rounds=1, iterations=1)
    out = results_dir() / "BENCH_sampling.json"
    out.write_text(json.dumps(payload, indent=2))

    rows = []
    for label, cell in payload["cells"].items():
        mark = "ok" if cell["within_ci"] else "MISS"
        rows.append(
            f"{label:24s} exact {cell['exact_ipc']:6.3f}"
            f"  est {cell['ipc']:6.3f}±{cell['ipc_ci']:.3f} [{mark}]"
            f"  cut {cell['cut']:5.2f}x  n={cell['samples']}"
        )
    summary = payload["summary"]
    rows.append(
        f"{'summary':24s} {summary['within_ci']}/{summary['cells']} within CI"
        f"  min cut {summary['min_cut']:.2f}x"
        f"  wall {summary['exact_wall_s']:.1f}s -> "
        f"{summary['sampled_wall_s']:.1f}s"
    )
    emit("BENCH_sampling", "sampled vs exact (IPC, CI, uop cut)", "\n".join(rows))

    for label, cell in payload["cells"].items():
        assert cell["within_ci"], (
            f"{label}: sampled IPC {cell['ipc']:.4f}±{cell['ipc_ci']:.4f} "
            f"misses the exact value {cell['exact_ipc']:.4f}"
        )
        assert cell["cut"] >= MIN_CUT, (
            f"{label}: detailed-uop cut {cell['cut']:.2f}x is below the "
            f"{MIN_CUT:.0f}x acceptance floor "
            f"({cell['detailed_uops']}/{cell['total_uops']} uops detailed)"
        )
