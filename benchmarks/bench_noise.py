"""Methodology check — seed noise vs measured effects.

Synthetic-workload measurements carry seed noise where gem5+SPEC carries
simpoint noise.  This bench quantifies it: three workload seeds per
benchmark, mean ± std of normalized IPC per scheme, and a check that the
headline effects (STT's overhead, ReCon's recovery) clear the noise
floor.
"""

from repro import SchemeKind
from repro.sim import RunConfig, format_table
from repro.sim.runner import TraceCache, run_benchmark_seeds

from benchmarks.common import BENCH_LENGTH, bench_store, emit

SEEDS = (11, 22, 33)
NAMES = ("xalancbmk", "omnetpp", "gcc")
SCHEMES = (SchemeKind.UNSAFE, SchemeKind.STT, SchemeKind.STT_RECON)


def _run():
    from repro.workloads import get_benchmark

    rows = []
    effects = {}
    for name in NAMES:
        profile = get_benchmark("spec2017", name)
        config = RunConfig(cache=TraceCache())
        seeded = {
            scheme: run_benchmark_seeds(
                profile,
                scheme,
                BENCH_LENGTH,
                seeds=SEEDS,
                config=config,
                store=bench_store(),
            )
            for scheme in SCHEMES
        }
        # Normalize per seed (each seed's schemes ran on identical traces).
        norm = {scheme: [] for scheme in SCHEMES[1:]}
        for i in range(len(SEEDS)):
            base = seeded[SchemeKind.UNSAFE].runs[i].ipc
            for scheme in SCHEMES[1:]:
                norm[scheme].append(seeded[scheme].runs[i].ipc / base)

        def mean_std(values):
            mean = sum(values) / len(values)
            var = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
            return mean, var ** 0.5

        stt_mean, stt_std = mean_std(norm[SchemeKind.STT])
        recon_mean, recon_std = mean_std(norm[SchemeKind.STT_RECON])
        effects[name] = (stt_mean, stt_std, recon_mean, recon_std)
        rows.append(
            [
                name,
                f"{stt_mean:.3f} ± {stt_std:.3f}",
                f"{recon_mean:.3f} ± {recon_std:.3f}",
            ]
        )
    table = format_table(
        ["benchmark", "STT (mean ± std)", "STT+ReCon (mean ± std)"], rows
    )
    return table, effects


def test_effects_exceed_seed_noise(benchmark):
    table, effects = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "noise_check",
        f"Seed-noise check ({len(SEEDS)} seeds per benchmark)",
        table,
    )
    for name, (stt_mean, stt_std, recon_mean, recon_std) in effects.items():
        noise = max(stt_std, recon_std)
        overhead = 1 - stt_mean
        recovery = recon_mean - stt_mean
        # The STT overhead is a real effect, not seed noise.
        assert overhead > 2 * noise, (
            f"{name}: overhead {overhead:.3f} within noise {noise:.3f}"
        )
        # So is the ReCon recovery on these pointer benchmarks.
        assert recovery > noise, (
            f"{name}: recovery {recovery:.3f} within noise {noise:.3f}"
        )
