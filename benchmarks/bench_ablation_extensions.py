"""Ablations of ReCon design choices discussed but not evaluated by the
paper.

* **Speculation model** (§3.1): the paper's threat model sits between
  STT's Spectre model (control shadows only) and the Futuristic model;
  this sweep shows how the STT overhead and the ReCon recovery scale
  across the three.
* **Footnote 1**: preserving the reveal vectors of invalidated readers —
  the paper omits it "for simplicity"; how much does it buy on a
  write-sharing parallel workload?
* **Multi-source LPT** (§5.1.1, future work): checking both operands of
  indexed loads.
"""

import dataclasses

from repro import SchemeKind, SystemParams
from repro.common import SpeculationModel
from repro.sim import format_table, geomean
from repro.sim.runner import TraceCache, run_benchmark
from repro.workloads import get_benchmark, spec2017_suite

from benchmarks.common import BENCH_LENGTH, PARSEC_LENGTH, emit

NAMES = ("gcc", "mcf", "omnetpp", "xalancbmk")


def _spec_model_sweep():
    profiles = [p for p in spec2017_suite() if p.name in NAMES]
    rows = []
    summary = {}
    for model in SpeculationModel:
        params = SystemParams(speculation_model=model)
        stt_vals, recon_vals = [], []
        for profile in profiles:
            cache = TraceCache()
            unsafe = run_benchmark(
                profile, SchemeKind.UNSAFE, BENCH_LENGTH, params=params, cache=cache
            )
            stt = run_benchmark(
                profile, SchemeKind.STT, BENCH_LENGTH, params=params, cache=cache
            )
            recon = run_benchmark(
                profile,
                SchemeKind.STT_RECON,
                BENCH_LENGTH,
                params=params,
                cache=cache,
            )
            stt_vals.append(stt.ipc / unsafe.ipc)
            recon_vals.append(recon.ipc / unsafe.ipc)
        summary[model] = (geomean(stt_vals), geomean(recon_vals))
        rows.append(
            [
                model.value,
                f"{summary[model][0]:.3f}",
                f"{summary[model][1]:.3f}",
            ]
        )
    table = format_table(
        ["speculation model", "STT", "STT+ReCon"], rows
    )
    return table, summary


def test_ablation_speculation_models(benchmark):
    table, summary = benchmark.pedantic(
        _spec_model_sweep, rounds=1, iterations=1
    )
    emit(
        "ablation_spec_models",
        "Ablation: speculation models (Spectre / control+store / Futuristic)",
        table,
    )
    spectre = summary[SpeculationModel.CONTROL_ONLY]
    default = summary[SpeculationModel.CONTROL_AND_STORE]
    futuristic = summary[SpeculationModel.FUTURISTIC]
    # Overheads grow with shadow coverage; ReCon recovers under all three.
    assert spectre[0] >= default[0] - 0.01 >= futuristic[0] - 0.02
    for stt, recon in (spectre, default, futuristic):
        assert recon >= stt - 0.005


def _footnote1_sweep():
    profile = get_benchmark("parsec", "canneal")
    rows = []
    outcomes = {}
    for preserve in (False, True):
        params = SystemParams(
            num_cores=4, preserve_invalidated_reveals=preserve
        )
        cache = TraceCache()
        unsafe = run_benchmark(
            profile,
            SchemeKind.UNSAFE,
            PARSEC_LENGTH,
            params=params,
            threads=4,
            cache=cache,
        )
        recon = run_benchmark(
            profile,
            SchemeKind.STT_RECON,
            PARSEC_LENGTH,
            params=params,
            threads=4,
            cache=cache,
        )
        ratio = recon.cycles / unsafe.cycles
        outcomes[preserve] = (ratio, recon.stats.reveal_hits)
        rows.append(
            [
                "preserve" if preserve else "drop (paper default)",
                f"{ratio:.3f}",
                str(recon.stats.reveal_hits),
            ]
        )
    table = format_table(
        ["invalidated reader vectors", "time vs unsafe", "reveal hits"], rows
    )
    return table, outcomes


def test_ablation_footnote1_preservation(benchmark):
    table, outcomes = benchmark.pedantic(
        _footnote1_sweep, rounds=1, iterations=1
    )
    emit(
        "ablation_footnote1",
        "Ablation: preserving invalidated readers' reveal vectors "
        "(canneal, 4 cores)",
        table,
    )
    # Preservation can only help (more reveals survive write-sharing).
    assert outcomes[True][1] >= outcomes[False][1] - 50
    assert outcomes[True][0] <= outcomes[False][0] + 0.02


def _multi_source_sweep():
    profile = get_benchmark("spec2017", "gcc")
    rows = []
    outcomes = {}
    for sources in (1, 2):
        params = SystemParams(lpt_sources=sources)
        cache = TraceCache()
        unsafe = run_benchmark(
            profile, SchemeKind.UNSAFE, BENCH_LENGTH, params=params, cache=cache
        )
        recon = run_benchmark(
            profile,
            SchemeKind.STT_RECON,
            BENCH_LENGTH,
            params=params,
            cache=cache,
        )
        outcomes[sources] = (
            recon.ipc / unsafe.ipc,
            recon.stats.load_pairs_detected,
        )
        rows.append(
            [
                f"{sources} source(s)",
                f"{outcomes[sources][0]:.3f}",
                str(outcomes[sources][1]),
            ]
        )
    table = format_table(
        ["LPT operands checked", "STT+ReCon vs unsafe", "pairs detected"],
        rows,
    )
    return table, outcomes


def test_ablation_multi_source_lpt(benchmark):
    table, outcomes = benchmark.pedantic(
        _multi_source_sweep, rounds=1, iterations=1
    )
    emit(
        "ablation_multi_source",
        "Ablation: single- vs multi-source load-pair detection (§5.1.1)",
        table,
    )
    # Checking a second operand never detects fewer pairs.
    assert outcomes[2][1] >= outcomes[1][1]
    assert outcomes[2][0] >= outcomes[1][0] - 0.01
