"""Telemetry overhead gate.

The event bus promises two things when tracing is *off* (the default):
the simulated outcome is bit-identical to a run with tracing on, and
the instrumentation guards (`if self.telemetry.enabled:` at every
emission site) cost nothing measurable.  This bench checks both: the
disabled run must match the traced run's stats exactly and must not be
slower than the traced run beyond a 5% noise allowance — the traced run
does strictly more work, so this bounds the guards' cost without
needing an uninstrumented build to compare against.
"""

import time

from repro import SchemeKind
from repro.sim import RunConfig, format_table
from repro.sim.runner import TraceCache, run_benchmark
from repro.telemetry import TelemetryConfig

from benchmarks.common import emit

LENGTH = 12_000
ROUNDS = 3
NAME = "mcf"
SCHEME = SchemeKind.STT_RECON


def _time_run(config):
    """Best-of-N wall time and the final RunResult for one config."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = run_benchmark(
            get_profile(), SCHEME, LENGTH, config=config
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def get_profile():
    from repro.workloads import get_benchmark

    return get_benchmark("spec2017", NAME)


def _run():
    # One shared trace cache: both configurations simulate the exact
    # same micro-op stream and neither pays trace construction twice.
    cache = TraceCache()
    disabled_s, plain = _time_run(RunConfig(cache=cache))
    enabled_s, traced = _time_run(
        RunConfig(cache=cache, telemetry=TelemetryConfig())
    )
    rows = [
        ["disabled", f"{disabled_s * 1e3:.1f} ms", str(plain.cycles)],
        ["enabled", f"{enabled_s * 1e3:.1f} ms", str(traced.cycles)],
        [
            "ratio",
            f"{disabled_s / enabled_s:.3f}",
            "events: %d" % traced.telemetry.emitted_events,
        ],
    ]
    return rows, disabled_s, enabled_s, plain, traced


def test_disabled_telemetry_costs_nothing(benchmark):
    rows, disabled_s, enabled_s, plain, traced = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    emit(
        "telemetry_overhead",
        f"Telemetry overhead ({NAME}, {SCHEME.value}, {LENGTH} uops, "
        f"best of {ROUNDS})",
        format_table(["config", "wall time", "cycles"], rows),
    )
    # Tracing observes the run without perturbing it.
    assert plain.cycles == traced.cycles
    assert plain.stats.as_dict() == traced.stats.as_dict()
    assert traced.telemetry.emitted_events > 0
    # The disabled path may not cost more than the enabled path plus a
    # 5% wall-clock noise allowance.
    assert disabled_s <= enabled_s * 1.05, (
        f"disabled {disabled_s:.3f}s vs enabled {enabled_s:.3f}s"
    )
