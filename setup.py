"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on minimal toolchains.
"""

from setuptools import setup

setup()
