"""Stable programmatic API for running and loading experiments.

This module is the supported import surface for scripts, notebooks, and
downstream tooling.  Everything else under :mod:`repro` is an internal
implementation detail and may be rearranged between releases; code that
imports only from ``repro.api`` keeps working.

Three entry points cover the common cases:

* :func:`run_single` — run one (benchmark, scheme) cell and get a flat
  :class:`RunRecord` back.
* :func:`run_suite` — run a batch of :class:`RunRequest` cells (with
  optional parallelism, fault-tolerant supervision, and telemetry) and
  get a :class:`~repro.sim.engine.SuiteResult` grid back.
* :func:`load_result` — fetch a previously completed run from the
  on-disk result store by its content key, without simulating anything.

Security-analysis entry points ride along: :func:`leakage_report` runs
the Clueless trackers over a benchmark trace, and :func:`run_redteam`
runs the gadget-catalog verdict matrix (see :mod:`repro.redteam`).

When a ``repro serve`` endpoint is running (see
:mod:`repro.sim.service`), :func:`submit_suite` / :func:`poll` /
:func:`result` drive suites over HTTP instead of in-process — submit a
batch of :class:`RunRequest` cells, poll the job's progress counters,
and fetch the finished :class:`~repro.sim.engine.SuiteResult` grid.

The supporting types — :class:`~repro.sim.config.RunConfig`,
:class:`~repro.common.types.SchemeKind`,
:class:`~repro.telemetry.events.TelemetryConfig`,
:class:`~repro.sim.supervisor.FaultPolicy`, and the result types — are
re-exported here so callers never need a second import root::

    from repro.api import RunRequest, run_single

    record = run_single(RunRequest("spec2017/mcf", "stt+recon", 5000))
    print(record.ipc, record.stats.delayed_loads)
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.clueless import Clueless, LeakageReport
from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.sampling import SampledEstimate, SamplingConfig, parse_sampling
from repro.sim.config import RunConfig
from repro.sim.engine import RunSpec, SuiteResult, execute_specs
from repro.sim.runner import RunResult
from repro.sim.store import ResultStore, default_store_root
from repro.sim.supervisor import FaultPolicy, RunFailure
from repro.sim.reporting import format_table
from repro.telemetry.events import TelemetryConfig, TelemetryResult
from repro.redteam.harness import MatrixResult
from repro.workloads.gadgets import Verdict, gadget_catalog
from repro.workloads.kernels import build_trace
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.suites import get_benchmark

__all__ = [
    "Clueless",
    "FaultPolicy",
    "LeakageReport",
    "MatrixResult",
    "RunConfig",
    "RunFailure",
    "RunRecord",
    "RunRequest",
    "RunResult",
    "SampledEstimate",
    "SamplingConfig",
    "SchemeKind",
    "ServiceUnavailableError",
    "SuiteResult",
    "TelemetryConfig",
    "Verdict",
    "format_table",
    "parse_sampling",
    "gadget_catalog",
    "leakage_report",
    "load_result",
    "poll",
    "result",
    "run_redteam",
    "run_single",
    "run_suite",
    "submit_suite",
]


def _resolve_benchmark(benchmark: Union[str, BenchmarkProfile]) -> BenchmarkProfile:
    """Accept a profile or a ``"suite/name"`` label; ValueError otherwise."""
    if isinstance(benchmark, BenchmarkProfile):
        return benchmark
    if not isinstance(benchmark, str) or "/" not in benchmark:
        raise ValueError(
            f"benchmark must be a BenchmarkProfile or a 'suite/name' label, "
            f"got {benchmark!r}"
        )
    suite, _, name = benchmark.partition("/")
    try:
        return get_benchmark(suite, name)
    except KeyError as exc:
        raise ValueError(str(exc)) from None


def _resolve_scheme(scheme: Union[str, SchemeKind]) -> SchemeKind:
    """Accept a :class:`SchemeKind` or its string value; ValueError otherwise."""
    if isinstance(scheme, SchemeKind):
        return scheme
    try:
        return SchemeKind(scheme)
    except ValueError:
        known = ", ".join(kind.value for kind in SchemeKind)
        raise ValueError(f"unknown scheme {scheme!r}; known: {known}") from None


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """What to run: one (benchmark, scheme, length) cell plus its config.

    Attributes:
        benchmark: a :class:`~repro.workloads.profile.BenchmarkProfile`
            or a ``"suite/name"`` label such as ``"spec2017/mcf"``.
        scheme: a :class:`SchemeKind` or its string value such as
            ``"stt+recon"``.
        length: trace length in micro-ops.
        config: execution knobs (:class:`RunConfig`); ``None`` means the
            defaults (single thread, Table-2 parameters, 40% warm-up).
    """

    benchmark: Union[str, BenchmarkProfile]
    scheme: Union[str, SchemeKind]
    length: int
    config: Optional[RunConfig] = None

    def resolve(self) -> RunSpec:
        """The fully concrete :class:`~repro.sim.engine.RunSpec`.

        String benchmark/scheme fields are looked up here, so typos
        raise :class:`ValueError` before any simulation starts.
        """
        if self.length <= 0:
            raise ValueError("length must be positive")
        return RunSpec.build(
            _resolve_benchmark(self.benchmark),
            _resolve_scheme(self.scheme),
            self.length,
            self.config or RunConfig(),
        )


@dataclasses.dataclass
class RunRecord:
    """One completed run, flattened for direct consumption.

    Combines the measurement (:attr:`cycles`, :attr:`stats`,
    :attr:`per_core`) with its provenance (:attr:`key`,
    :attr:`from_store`, :attr:`wall_time_s`) so callers need neither the
    internal result nor the engine's bookkeeping types.
    """

    #: ``"suite/name"`` label of the benchmark that ran.
    benchmark: str
    #: The protection scheme that ran.
    scheme: SchemeKind
    #: Trace length in micro-ops.
    length: int
    #: Simulated cycles (post-warm-up region).
    cycles: int
    #: Aggregate pipeline statistics across cores.
    stats: StatSet
    #: Per-core pipeline statistics.
    per_core: List[StatSet]
    #: Result-store content key; :func:`load_result` accepts it later.
    key: str
    #: Wall-clock seconds this run took (0.0 when served from the store).
    wall_time_s: float
    #: True when the result came from the on-disk store, not a fresh run.
    from_store: bool
    #: Collected telemetry (``None`` unless the run traced).
    telemetry: Optional[TelemetryResult] = None
    #: Sampling statistics (``None`` unless the run was estimated).
    sampling: Optional[SampledEstimate] = None

    @property
    def ipc(self) -> float:
        """Committed micro-ops per simulated cycle."""
        if self.cycles == 0:
            return 0.0
        return self.stats.committed_uops / self.cycles

    @property
    def estimated(self) -> bool:
        """True when this record came from a sampled (statistical) run."""
        return self.sampling is not None

    @property
    def ipc_ci(self) -> Optional[float]:
        """Half-width of the IPC confidence interval (sampled runs only)."""
        return self.sampling.ipc_ci if self.sampling is not None else None


def _default_store() -> Optional[ResultStore]:
    root = default_store_root()
    return ResultStore(root) if root is not None else None


def _resolve_store(store: Union[bool, ResultStore, None]) -> Optional[ResultStore]:
    """Map the ``store`` argument onto a concrete :class:`ResultStore`."""
    if store is True:
        return _default_store()
    if store is False or store is None:
        return None
    return store


def run_single(
    request: RunRequest,
    *,
    store: Union[bool, ResultStore, None] = True,
) -> RunRecord:
    """Run one cell and return its flat :class:`RunRecord`.

    ``store`` controls result memoization: ``True`` (default) uses the
    standard on-disk store (honouring the ``REPRO_STORE`` environment
    variable), ``False`` disables it, and a
    :class:`~repro.sim.store.ResultStore` instance uses that store.
    Telemetry-enabled runs always bypass the store.
    """
    spec = request.resolve()
    results, records = execute_specs(
        [spec],
        config=request.config or RunConfig(),
        jobs=1,
        store=_resolve_store(store),
    )
    result, record = results[0], records[0]
    return RunRecord(
        benchmark=spec.profile.label,
        scheme=spec.scheme,
        length=spec.length,
        cycles=result.cycles,
        stats=result.stats,
        per_core=result.per_core,
        key=spec.key(),
        wall_time_s=record.wall_time_s,
        from_store=record.from_store,
        telemetry=result.telemetry,
        sampling=getattr(result, "sampling", None),
    )


def run_suite(
    requests: Iterable[RunRequest],
    *,
    jobs: Optional[int] = None,
    supervise: Union[bool, FaultPolicy] = False,
    telemetry: Union[None, bool, TelemetryConfig] = None,
    sampling: Union[None, str, SamplingConfig] = None,
    store: Union[bool, ResultStore, None] = True,
    progress: bool = False,
    backend: Optional[object] = None,
    observer: Optional[object] = None,
    journal: Optional[object] = None,
    resume: bool = False,
) -> SuiteResult:
    """Run a batch of cells and return the :class:`SuiteResult` grid.

    Args:
        requests: the cells to run; duplicates are allowed (later cells
            overwrite earlier ones in the grid mapping, as in the CLI).
        jobs: worker processes (``None`` honours ``REPRO_JOBS``, then
            runs inline).
        supervise: ``True`` routes execution through the fault-tolerant
            supervisor with the default :class:`FaultPolicy`; a policy
            instance uses that policy; ``False`` (default) is the plain
            fail-fast path.  Supervised cells that exhaust their retries
            land in ``SuiteResult.failures`` instead of raising.
        telemetry: ``True`` enables tracing with default
            :class:`TelemetryConfig` knobs on every cell; a config
            instance applies that config; ``None`` leaves each request's
            own ``config.telemetry`` in force.
        sampling: statistically sampled simulation on every cell — a
            spec string such as ``"ci=0.02,conf=0.95"`` (or ``"on"`` for
            defaults; see :func:`parse_sampling`) or a
            :class:`SamplingConfig` instance; ``None`` leaves each
            request's own ``config.sampling`` in force (exact mode by
            default).  Sampled records carry ``estimated=True``,
            ``samples``, and ``ipc_ci``.
        store: result memoization, as in :func:`run_single`.
        progress: print a per-run progress line to stderr.
        backend: execution substrate — a name (``inline`` / ``threads``
            / ``process`` / ``queue``) or an
            :class:`~repro.sim.backends.ExecutionBackend` instance;
            ``None`` honours ``REPRO_BACKEND``, then the jobs-based
            default.
        observer: callable receiving each settled engine record (and,
            supervised, each :class:`RunFailure`) as it lands — the
            sweep service streams these to HTTP clients.
        journal: a :class:`~repro.sim.supervisor.SuiteJournal` to
            checkpoint completed/failed keys into; implies the
            supervised path.
        resume: replay the journal before running, so already-settled
            cells are skipped (completed ones come back via the store);
            implies the supervised path.
    """
    specs = [request.resolve() for request in requests]
    if telemetry is not None:
        override = TelemetryConfig() if telemetry is True else telemetry
        specs = [dataclasses.replace(spec, telemetry=override) for spec in specs]
    if sampling is not None:
        cfg = parse_sampling(sampling)
        specs = [dataclasses.replace(spec, sampling=cfg) for spec in specs]
    resolved_store = _resolve_store(store)
    start = time.perf_counter()
    failures: List[RunFailure] = []
    fault_counters: Dict[str, int] = {}
    if supervise or journal is not None or resume:
        # Imported lazily: the supervisor pulls in the worker-pool stack.
        from repro.sim.supervisor import Supervisor

        policy = supervise if isinstance(supervise, FaultPolicy) else None
        supervisor = Supervisor(
            policy,
            jobs=jobs,
            store=resolved_store,
            journal=journal,
            progress=progress,
            backend=backend,
            observer=observer,
        )
        results, records, failures = supervisor.execute(specs, resume=resume)
        fault_counters = supervisor.fault_counters
    else:
        results, records = execute_specs(
            specs,
            jobs=jobs,
            store=resolved_store,
            progress=progress,
            backend=backend,
            observer=observer,
        )
    wall = time.perf_counter() - start
    mapping: Dict[Tuple[str, SchemeKind], RunResult] = {
        (spec.profile.name, spec.scheme): result
        for spec, result in zip(specs, results)
        if result is not None
    }
    return SuiteResult(
        mapping,
        records,
        wall_time_s=wall,
        failures=failures,
        fault_counters=fault_counters,
    )


def leakage_report(
    benchmark: Union[str, BenchmarkProfile], length: int
) -> LeakageReport:
    """Clueless leakage analysis of one benchmark trace.

    Builds the deterministic trace for ``benchmark`` (a profile or
    ``"suite/name"`` label) at ``length`` micro-ops and runs both the
    global-DIFT and direct-load-pair trackers over it, returning the
    :class:`~repro.analysis.clueless.LeakageReport` the ``run leakage``
    CLI command prints.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    profile = _resolve_benchmark(benchmark)
    return Clueless().run(build_trace(profile, length).trace())


def run_redteam(
    gadgets: Optional[Iterable[str]] = None,
    schemes: Optional[Iterable[Union[str, SchemeKind]]] = None,
    *,
    jobs: Optional[int] = None,
    progress: bool = False,
) -> MatrixResult:
    """Run the gadget x scheme red-team matrix (see :mod:`repro.redteam`).

    ``gadgets`` defaults to the whole catalog and ``schemes`` to the
    standard matrix columns; scheme strings such as ``"stt+recon"`` are
    accepted.  Returns the :class:`~repro.redteam.harness.MatrixResult`
    whose ``ok`` property asserts every cell's expected verdict.
    """
    from repro.redteam import run_matrix

    resolved_schemes = (
        [_resolve_scheme(scheme) for scheme in schemes]
        if schemes is not None
        else None
    )
    return run_matrix(
        gadgets=list(gadgets) if gadgets is not None else None,
        schemes=resolved_schemes,
        jobs=jobs,
        progress=progress,
    )


def load_result(key: str) -> Optional[RunResult]:
    """Fetch a stored run by its content key; ``None`` when absent.

    ``key`` is the value of :attr:`RunRecord.key` (or
    :meth:`~repro.sim.engine.RunSpec.key`).  Returns ``None`` when the
    store is disabled (``REPRO_STORE=off``) or holds no such entry.
    """
    store = _default_store()
    if store is None:
        return None
    return store.get(key)


# --- sweep-service client --------------------------------------------------
class ServiceUnavailableError(ConnectionError):
    """The ``repro serve`` endpoint could not be reached (or stayed busy).

    Raised by :func:`submit_suite` / :func:`poll` / :func:`result` after
    their bounded retries are exhausted — on connection-refused, socket
    timeouts, dropped/truncated responses, and on ``429``/``503``
    backpressure that outlasts the retry budget.  Carries the service
    URL and the last underlying error so the failure is actionable
    instead of a raw :class:`OSError` from ``urllib``.
    """

    def __init__(self, url: str, attempts: int, last_error: str) -> None:
        super().__init__(
            f"sweep service at {url} unavailable after {attempts} "
            f"attempt(s): {last_error}. Is `repro serve` running there?"
        )
        self.url = url
        self.attempts = attempts
        self.last_error = last_error


def _service_url(url: str, path: str) -> str:
    return url.rstrip("/") + path


def _service_token(token: Optional[str]) -> Optional[str]:
    """The auth token to send: explicit argument, else the env var."""
    if token is not None:
        return token or None
    import os

    return os.environ.get("REPRO_SERVE_TOKEN") or None


def _request_once(
    url: str,
    *,
    method: str = "GET",
    payload: Optional[Dict[str, object]] = None,
    timeout_s: float = 30.0,
    token: Optional[str] = None,
) -> Tuple[int, bytes, Dict[str, str]]:
    """One HTTP exchange: (status, body, lower-cased response headers)."""
    import urllib.error
    import urllib.request

    data = None
    headers = {"Accept": "application/json"}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return (
                response.status,
                response.read(),
                {k.lower(): v for k, v in response.headers.items()},
            )
    except urllib.error.HTTPError as exc:
        return (
            exc.code,
            exc.read(),
            {k.lower(): v for k, v in (exc.headers or {}).items()},
        )


#: Backpressure statuses the client waits out (admission 429, degraded 503).
_BUSY_STATUSES = (429, 503)
_RETRY_BACKOFF_S = 0.1
_RETRY_BACKOFF_CAP_S = 2.0


def _retry_after(headers: Dict[str, str], fallback: float) -> float:
    try:
        value = float(headers.get("retry-after", ""))
    except ValueError:
        return fallback
    return max(0.0, value)


def _request_json(
    url: str,
    *,
    method: str = "GET",
    payload: Optional[Dict[str, object]] = None,
    timeout_s: float = 30.0,
    token: Optional[str] = None,
    retries: int = 4,
    busy_wait_s: float = 0.0,
) -> Tuple[int, bytes]:
    """A resilient HTTP exchange with the sweep service.

    Transport faults — connection refused, socket timeouts, dropped or
    truncated responses — are retried up to ``retries`` times with
    exponential backoff and jitter, then raise
    :class:`ServiceUnavailableError`.  With ``busy_wait_s`` > 0,
    ``429``/``503`` backpressure responses are also retried (honouring
    the server's ``Retry-After`` header) until that budget runs out.
    Any other HTTP status is returned to the caller as ``(status,
    body)`` — application-level errors are the caller's protocol.
    """
    import http.client
    import random
    import socket
    import urllib.error

    deadline = time.monotonic() + busy_wait_s if busy_wait_s > 0 else None
    attempt = 0
    last_error = "no attempt made"
    while True:
        attempt += 1
        try:
            status, body, headers = _request_once(
                url, method=method, payload=payload,
                timeout_s=timeout_s, token=token,
            )
        except urllib.error.URLError as exc:
            last_error = f"{type(exc.reason).__name__}: {exc.reason}"
        except (http.client.HTTPException, socket.timeout, OSError) as exc:
            # Dropped/truncated responses (RemoteDisconnected,
            # IncompleteRead) and slow-loris reads (socket.timeout) land
            # here — all transient from the client's point of view.
            last_error = f"{type(exc).__name__}: {exc}"
        else:
            if status in _BUSY_STATUSES and deadline is not None:
                backoff = min(
                    _RETRY_BACKOFF_CAP_S,
                    _RETRY_BACKOFF_S * (2 ** (attempt - 1)),
                )
                delay = _retry_after(headers, backoff)
                if time.monotonic() + delay <= deadline:
                    time.sleep(delay)
                    continue
                last_error = (
                    f"service still busy (HTTP {status}) after "
                    f"{busy_wait_s:.0f}s"
                )
                raise ServiceUnavailableError(url, attempt, last_error)
            return status, body
        if attempt > retries:
            raise ServiceUnavailableError(url, attempt, last_error)
        backoff = min(
            _RETRY_BACKOFF_CAP_S, _RETRY_BACKOFF_S * (2 ** (attempt - 1))
        )
        time.sleep(backoff * (1.0 + 0.25 * random.random()))


def _wire_request(request: RunRequest) -> Dict[str, object]:
    """Flatten a :class:`RunRequest` for the service's JSON schema."""
    if request.config is not None:
        raise ValueError(
            "RunRequest.config cannot be sent over HTTP; submit cells with "
            "default config (length/benchmark/scheme only)"
        )
    benchmark = request.benchmark
    if not isinstance(benchmark, str):
        benchmark = f"{benchmark.suite}/{benchmark.name}"
    scheme = request.scheme
    if isinstance(scheme, SchemeKind):
        scheme = scheme.value
    return {"benchmark": benchmark, "scheme": scheme, "length": request.length}


def submit_suite(
    requests: Iterable[RunRequest],
    *,
    url: str = "http://127.0.0.1:8712",
    jobs: Optional[int] = None,
    supervise: bool = False,
    backend: Optional[str] = None,
    sampling: Union[None, str, SamplingConfig] = None,
    idempotency_key: Optional[str] = None,
    token: Optional[str] = None,
    timeout_s: float = 30.0,
    busy_wait_s: float = 120.0,
) -> str:
    """Submit a suite to a running ``repro serve`` endpoint; returns a job id.

    The job runs asynchronously on the server; track it with
    :func:`poll` and fetch the finished grid with :func:`result`.
    Requests must use the default :class:`RunConfig` — per-cell config
    objects do not serialize over the wire.

    The submit is resilient and exactly-once: every call carries an
    idempotency key (a fresh UUID unless ``idempotency_key`` pins one),
    so when a response is lost mid-flight the transparent retry returns
    the job the first attempt already created instead of enqueueing a
    duplicate.  Admission backpressure (``429`` + ``Retry-After``) and
    degraded-mode ``503`` are waited out for up to ``busy_wait_s``
    seconds; connection failures raise
    :class:`ServiceUnavailableError` after bounded retries.  ``token``
    (default: ``REPRO_SERVE_TOKEN``) authenticates when the server
    requires it.  ``sampling`` (a spec string or
    :class:`SamplingConfig`) asks the server to run every cell in
    statistically sampled mode.
    """
    import uuid

    payload: Dict[str, object] = {
        "requests": [_wire_request(request) for request in requests],
        "idempotency_key": idempotency_key or str(uuid.uuid4()),
    }
    if jobs is not None:
        payload["jobs"] = jobs
    if supervise:
        payload["supervise"] = True
    if backend is not None:
        payload["backend"] = backend
    if sampling is not None:
        # Validate locally (typos fail fast) and ship the canonical
        # spec string; the server re-parses it into a SamplingConfig.
        cfg = parse_sampling(sampling)
        payload["sampling"] = cfg.spec() if cfg is not None else "off"
    status, body = _request_json(
        _service_url(url, "/v1/suites"),
        method="POST",
        payload=payload,
        timeout_s=timeout_s,
        token=_service_token(token),
        busy_wait_s=busy_wait_s,
    )
    decoded = json.loads(body.decode("utf-8"))
    if status not in (200, 202):  # 200 = idempotent replay of a known job
        raise RuntimeError(
            f"suite submission failed ({status}): "
            f"{decoded.get('error', repr(body[:200]))}"
        )
    return str(decoded["job"])


def poll(
    job_id: str,
    *,
    url: str = "http://127.0.0.1:8712",
    token: Optional[str] = None,
    timeout_s: float = 30.0,
) -> Dict[str, object]:
    """Current status of a service job: state, record/failure counts.

    Returns the server's job summary dict — ``status`` is one of
    ``queued`` / ``running`` / ``done`` / ``failed``.  Transport faults
    are retried; an unreachable service raises
    :class:`ServiceUnavailableError` rather than a raw ``OSError``.
    """
    status, body = _request_json(
        _service_url(url, f"/v1/jobs/{job_id}"),
        timeout_s=timeout_s,
        token=_service_token(token),
    )
    decoded = json.loads(body.decode("utf-8"))
    if status != 200:
        raise RuntimeError(
            f"poll failed ({status}): {decoded.get('error', repr(body[:200]))}"
        )
    return decoded


def result(
    job_id: str,
    *,
    url: str = "http://127.0.0.1:8712",
    wait: bool = True,
    timeout_s: float = 600.0,
    interval_s: float = 0.25,
    token: Optional[str] = None,
    request_timeout_s: float = 30.0,
) -> SuiteResult:
    """Fetch a service job's :class:`SuiteResult`, waiting for completion.

    With ``wait=False`` a still-running job raises immediately
    (mirroring the server's 409); otherwise polls every ``interval_s``
    until the job finishes or ``timeout_s`` elapses.  A server-side job
    failure raises ``RuntimeError`` with the job's error string.  Each
    poll uses a ``request_timeout_s`` socket timeout and bounded
    transport retries, so a hung service surfaces as
    :class:`ServiceUnavailableError` instead of blocking forever.
    """
    resolved_token = _service_token(token)
    deadline = time.monotonic() + timeout_s
    while True:
        status, body = _request_json(
            _service_url(url, f"/v1/jobs/{job_id}/result"),
            timeout_s=request_timeout_s,
            token=resolved_token,
        )
        if status == 200:
            return SuiteResult.from_json(body.decode("utf-8"))
        decoded = json.loads(body.decode("utf-8"))
        if status == 500:
            raise RuntimeError(
                f"job {job_id} failed: {decoded.get('error', 'unknown error')}"
            )
        if status != 409 or not wait:
            raise RuntimeError(
                f"job {job_id} not ready ({status}): "
                f"{decoded.get('error', 'unfinished')}"
            )
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"job {job_id} still {decoded.get('status', 'running')} "
                f"after {timeout_s:.0f}s"
            )
        time.sleep(interval_s)
