"""Micro-op representation.

The simulator is trace driven: a workload is a sequence of
:class:`MicroOp` records with architectural-register dataflow, resolved
memory addresses, and branch outcomes.  This mirrors what the paper's gem5
O3 pipeline sees after decode (section 4.3 notes that CISC instructions are
cracked into RISC micro-ops, which is the level ReCon operates at).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.types import MemPrediction, OpClass

__all__ = ["MicroOp"]


class MicroOp:
    """One dynamic micro-op in a trace.

    Attributes:
        seq: position in the dynamic trace (set when appended to a program).
        pc: static program counter (used by predictors and reporting).
        opclass: the :class:`~repro.common.types.OpClass`.
        dest: destination architectural register, or ``None``.
        srcs: source architectural registers.  For memory ops these are the
            *address-forming* registers (base register first); a store's
            data register lives in ``data_srcs`` so that address generation
            — which resolves the store's speculation shadow — does not wait
            for the data to be produced.
        data_srcs: a store's data register(s); empty for everything else.
        addr: resolved effective address for memory ops, else ``None``.
        value: value loaded or stored (used by analysis tools and tests).
        mispredict: for branches, whether the predictor got it wrong.
        forced_prediction: overrides the memory-dependence predictor for
            this load (used by the Table 1 reproduction), or ``None``.
    """

    __slots__ = (
        "seq",
        "pc",
        "opclass",
        "dest",
        "srcs",
        "data_srcs",
        "addr",
        "value",
        "mispredict",
        "forced_prediction",
    )

    def __init__(
        self,
        opclass: OpClass,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        addr: Optional[int] = None,
        value: int = 0,
        pc: int = 0,
        mispredict: bool = False,
        forced_prediction: Optional[MemPrediction] = None,
        data_srcs: Tuple[int, ...] = (),
    ) -> None:
        if opclass.is_memory and addr is None:
            raise ValueError(f"{opclass} micro-op requires an address")
        if opclass is OpClass.LOAD and dest is None:
            raise ValueError("load micro-op requires a destination register")
        if data_srcs and opclass is not OpClass.STORE:
            raise ValueError("only stores carry data source registers")
        self.seq = -1
        self.pc = pc
        self.opclass = opclass
        self.dest = dest
        self.srcs = srcs
        self.data_srcs = data_srcs
        self.addr = addr
        self.value = value
        self.mispredict = mispredict
        self.forced_prediction = forced_prediction

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = [f"#{self.seq}", self.opclass.value]
        if self.dest is not None:
            fields.append(f"r{self.dest}<-")
        if self.srcs:
            fields.append(",".join(f"r{s}" for s in self.srcs))
        if self.addr is not None:
            fields.append(f"[{self.addr:#x}]")
        if self.mispredict:
            fields.append("MISP")
        return f"<MicroOp {' '.join(fields)}>"
