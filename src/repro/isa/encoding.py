"""Trace serialization.

A compact, dependency-free on-disk format for micro-op traces, so
workloads can be generated once and replayed across machines or shared
alongside experiment results (the role ChampSim traces play for the
paper's Clueless studies).

Format: a one-line JSON header followed by one line per micro-op::

    {"format": "repro-trace", "version": 1, "count": N}
    <opclass> <pc> <dest> <srcs> <data_srcs> <addr> <value> <flags>

Fields are space-separated; register lists are comma-separated (or ``-``
when empty); ``dest``/``addr`` use ``-`` for none; flags is ``M`` for a
mispredicted branch, ``S``/``E`` for forced STF/MEM predictions, ``-``
otherwise.  Numbers are hex for addresses/values, decimal elsewhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.common.types import MemPrediction, OpClass
from repro.isa.microop import MicroOp

__all__ = ["save_trace", "load_trace", "dumps", "loads"]

_FORMAT = "repro-trace"
_VERSION = 1

_FLAG_BY_PREDICTION = {MemPrediction.STF: "S", MemPrediction.MEM: "E"}
_PREDICTION_BY_FLAG = {v: k for k, v in _FLAG_BY_PREDICTION.items()}


def _regs_to_text(regs) -> str:
    return ",".join(str(r) for r in regs) if regs else "-"


def _regs_from_text(text: str):
    if text == "-":
        return ()
    return tuple(int(r) for r in text.split(","))


def _uop_to_line(uop: MicroOp) -> str:
    flags = "-"
    if uop.mispredict:
        flags = "M"
    elif uop.forced_prediction is not None:
        flags = _FLAG_BY_PREDICTION[uop.forced_prediction]
    return " ".join(
        [
            uop.opclass.value,
            str(uop.pc),
            "-" if uop.dest is None else str(uop.dest),
            _regs_to_text(uop.srcs),
            _regs_to_text(uop.data_srcs),
            "-" if uop.addr is None else f"{uop.addr:x}",
            f"{uop.value:x}",
            flags,
        ]
    )


def _uop_from_line(line: str, lineno: int) -> MicroOp:
    parts = line.split()
    if len(parts) != 8:
        raise ValueError(f"line {lineno}: expected 8 fields, got {len(parts)}")
    opclass_text, pc, dest, srcs, data_srcs, addr, value, flags = parts
    try:
        opclass = OpClass(opclass_text)
    except ValueError:
        raise ValueError(f"line {lineno}: unknown opclass {opclass_text!r}")
    uop = MicroOp(
        opclass,
        dest=None if dest == "-" else int(dest),
        srcs=_regs_from_text(srcs),
        data_srcs=_regs_from_text(data_srcs),
        addr=None if addr == "-" else int(addr, 16),
        value=int(value, 16),
        pc=int(pc),
        mispredict=flags == "M",
        forced_prediction=_PREDICTION_BY_FLAG.get(flags),
    )
    return uop


def dumps(trace: Iterable[MicroOp]) -> str:
    """Serialize a trace to a string."""
    body = [_uop_to_line(uop) for uop in trace]
    header = json.dumps(
        {"format": _FORMAT, "version": _VERSION, "count": len(body)}
    )
    return "\n".join([header] + body) + "\n"


def loads(text: str) -> List[MicroOp]:
    """Deserialize a trace from a string."""
    lines = text.splitlines()
    if not lines:
        raise ValueError("empty trace file")
    header = json.loads(lines[0])
    if header.get("format") != _FORMAT:
        raise ValueError(f"not a {_FORMAT} file")
    if header.get("version") != _VERSION:
        raise ValueError(f"unsupported trace version {header.get('version')}")
    count = header.get("count", len(lines) - 1)
    body = [line for line in lines[1:] if line.strip()]
    if len(body) != count:
        raise ValueError(
            f"trace header promises {count} micro-ops, file has {len(body)}"
        )
    trace = []
    for lineno, line in enumerate(body, start=2):
        uop = _uop_from_line(line, lineno)
        uop.seq = len(trace)
        trace.append(uop)
    return trace


def save_trace(trace: Iterable[MicroOp], path: Union[str, Path]) -> None:
    """Write a trace to ``path``."""
    Path(path).write_text(dumps(trace))


def load_trace(path: Union[str, Path]) -> List[MicroOp]:
    """Read a trace from ``path``; sequence numbers are renumbered."""
    return loads(Path(path).read_text())
