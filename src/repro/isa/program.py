"""A tiny assembler-style builder for micro-op traces.

:class:`Program` is both a trace builder and a functional interpreter: it
keeps an architectural register file and a sparse memory image, so that a
``load rd, [rs]`` appended to the program really does read the value that
the program last stored (or pre-installed) at ``regs[rs]``.  That property
is what makes the synthetic workloads *honest*: a "pointer dereference" in
a generated trace is an actual dereference of an actual pointer value, and
the Clueless analyzer sees the same dataflow the pipeline does.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.types import MemPrediction, OpClass, word_addr
from repro.isa.microop import MicroOp

__all__ = ["Program", "default_memory_value"]


def default_memory_value(addr: int) -> int:
    """Deterministic pseudo-content for memory never written by the program.

    A cheap integer hash keeps values reproducible without storing an image
    of all of memory.
    """
    x = (addr * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 29
    return x


class Program:
    """Builds a micro-op trace while interpreting it functionally.

    Args:
        arch_regs: size of the architectural register namespace.
        base_pc: starting program counter; each appended micro-op gets a
            fresh pc unless ``pc`` is passed explicitly (loops reuse pcs).
    """

    def __init__(self, arch_regs: int = 32, base_pc: int = 0x1000) -> None:
        self.arch_regs = arch_regs
        self.ops: List[MicroOp] = []
        self.regs: Dict[int, int] = {r: 0 for r in range(arch_regs)}
        self.memory: Dict[int, int] = {}
        self._next_pc = base_pc

    # ------------------------------------------------------------------
    # memory image
    # ------------------------------------------------------------------
    def poke(self, addr: int, value: int) -> None:
        """Pre-install ``value`` at aligned word ``addr`` (no trace record)."""
        self.memory[word_addr(addr)] = value

    def peek(self, addr: int) -> int:
        """Read the memory image (default content if never written)."""
        waddr = word_addr(addr)
        if waddr in self.memory:
            return self.memory[waddr]
        return default_memory_value(waddr)

    # ------------------------------------------------------------------
    # trace construction
    # ------------------------------------------------------------------
    def _append(self, op: MicroOp, pc: Optional[int]) -> MicroOp:
        if pc is None:
            op.pc = self._next_pc
            self._next_pc += 4
        else:
            op.pc = pc
        op.seq = len(self.ops)
        self.ops.append(op)
        return op

    def _check_reg(self, reg: int) -> None:
        if not 0 <= reg < self.arch_regs:
            raise ValueError(f"register r{reg} outside namespace of {self.arch_regs}")

    def li(self, dest: int, value: int, pc: Optional[int] = None) -> MicroOp:
        """Load-immediate (an ALU op with no sources)."""
        self._check_reg(dest)
        self.regs[dest] = value
        return self._append(
            MicroOp(OpClass.ALU, dest=dest, srcs=(), value=value), pc
        )

    def alu(
        self,
        dest: int,
        *srcs: int,
        opclass: OpClass = OpClass.ALU,
        pc: Optional[int] = None,
    ) -> MicroOp:
        """Register-to-register computation (ALU/MUL/DIV/FP).

        The interpreted result is a deterministic mix of the sources so that
        dependent address arithmetic stays reproducible.
        """
        if opclass.is_memory or opclass is OpClass.BRANCH:
            raise ValueError("alu() builds only computational micro-ops")
        self._check_reg(dest)
        for src in srcs:
            self._check_reg(src)
        result = 0
        for src in srcs:
            result = (result * 31 + self.regs[src]) & 0xFFFFFFFFFFFFFFFF
        self.regs[dest] = result
        return self._append(
            MicroOp(opclass, dest=dest, srcs=tuple(srcs), value=result), pc
        )

    def add_imm(
        self, dest: int, src: int, imm: int, pc: Optional[int] = None
    ) -> MicroOp:
        """``dest = src + imm`` — preserves pointer arithmetic exactly."""
        self._check_reg(dest)
        self._check_reg(src)
        result = (self.regs[src] + imm) & 0xFFFFFFFFFFFFFFFF
        self.regs[dest] = result
        return self._append(
            MicroOp(OpClass.ALU, dest=dest, srcs=(src,), value=result), pc
        )

    def load(
        self,
        dest: int,
        base: int,
        offset: int = 0,
        pc: Optional[int] = None,
        forced_prediction: Optional[MemPrediction] = None,
    ) -> MicroOp:
        """``load dest, [base + offset]`` — base is a register."""
        self._check_reg(dest)
        self._check_reg(base)
        addr = (self.regs[base] + offset) & 0xFFFFFFFFFFFFFFFF
        value = self.peek(addr)
        self.regs[dest] = value
        return self._append(
            MicroOp(
                OpClass.LOAD,
                dest=dest,
                srcs=(base,),
                addr=addr,
                value=value,
                forced_prediction=forced_prediction,
            ),
            pc,
        )

    def load_indexed(
        self,
        dest: int,
        base: int,
        index: int,
        offset: int = 0,
        pc: Optional[int] = None,
        forced_prediction: Optional[MemPrediction] = None,
    ) -> MicroOp:
        """``load dest, [base + index + offset]`` — two address sources.

        Models the multi-source micro-ops of paper §5.1.1: a load pair can
        form through *either* operand, and a multi-source-aware LPT checks
        both.
        """
        self._check_reg(dest)
        self._check_reg(base)
        self._check_reg(index)
        addr = (self.regs[base] + self.regs[index] + offset) & 0xFFFFFFFFFFFFFFFF
        value = self.peek(addr)
        self.regs[dest] = value
        return self._append(
            MicroOp(
                OpClass.LOAD,
                dest=dest,
                srcs=(base, index),
                addr=addr,
                value=value,
                forced_prediction=forced_prediction,
            ),
            pc,
        )

    def load_abs(
        self,
        dest: int,
        addr: int,
        pc: Optional[int] = None,
        forced_prediction: Optional[MemPrediction] = None,
    ) -> MicroOp:
        """``load dest, [addr]`` — absolute address, no source register."""
        self._check_reg(dest)
        value = self.peek(addr)
        self.regs[dest] = value
        return self._append(
            MicroOp(
                OpClass.LOAD,
                dest=dest,
                srcs=(),
                addr=addr,
                value=value,
                forced_prediction=forced_prediction,
            ),
            pc,
        )

    def store(
        self, src: int, base: int, offset: int = 0, pc: Optional[int] = None
    ) -> MicroOp:
        """``store src, [base + offset]``.

        The base register is the address source (``srcs``); the data
        register travels in ``data_srcs`` so address generation does not
        wait for the data.
        """
        self._check_reg(src)
        self._check_reg(base)
        addr = (self.regs[base] + offset) & 0xFFFFFFFFFFFFFFFF
        value = self.regs[src]
        self.memory[word_addr(addr)] = value
        return self._append(
            MicroOp(
                OpClass.STORE,
                srcs=(base,),
                data_srcs=(src,),
                addr=addr,
                value=value,
            ),
            pc,
        )

    def store_abs(self, src: int, addr: int, pc: Optional[int] = None) -> MicroOp:
        """``store src, [addr]`` — absolute address, no address register."""
        self._check_reg(src)
        value = self.regs[src]
        self.memory[word_addr(addr)] = value
        return self._append(
            MicroOp(
                OpClass.STORE, srcs=(), data_srcs=(src,), addr=addr, value=value
            ),
            pc,
        )

    def branch(
        self, *srcs: int, mispredict: bool = False, pc: Optional[int] = None
    ) -> MicroOp:
        """Conditional branch reading ``srcs``; casts a speculation shadow."""
        for src in srcs:
            self._check_reg(src)
        return self._append(
            MicroOp(OpClass.BRANCH, srcs=tuple(srcs), mispredict=mispredict), pc
        )

    def nop(self, pc: Optional[int] = None) -> MicroOp:
        """A no-op micro-op (consumes pipeline slots only)."""
        return self._append(MicroOp(OpClass.NOP), pc)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.ops)

    def trace(self) -> List[MicroOp]:
        """The built micro-op list (shared, not copied)."""
        return self.ops
