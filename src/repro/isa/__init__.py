"""Trace ISA: micro-ops, the program-builder DSL, and trace files."""

from repro.isa.encoding import dumps, load_trace, loads, save_trace
from repro.isa.microop import MicroOp
from repro.isa.program import Program, default_memory_value

__all__ = [
    "MicroOp",
    "Program",
    "default_memory_value",
    "dumps",
    "load_trace",
    "loads",
    "save_trace",
]
