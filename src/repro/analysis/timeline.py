"""Leakage timelines.

Clueless "dynamically records the portion of memory that has leaked at
any specific moment" (paper §6.1).  This module produces that time
series: the number of currently-leaked words (global DIFT and direct
load pairs) sampled every N micro-ops, which is useful for
understanding the reveal/conceal churn a workload produces — e.g. why a
benchmark with heavy pointer rewriting recovers less under ReCon.

Two ways to build one:

* :func:`leakage_timeline` re-runs Clueless over a trace after the fact
  (the legacy path — no simulator needed);
* :class:`TimelineSink` rides the telemetry event bus
  (:mod:`repro.telemetry.events`): attached to a live collector, it
  consumes the pipeline's commit events during the simulation itself,
  so the timeline comes out of a normal ``--trace`` run for free.  For
  a correct-path simulation the two are equivalent — commit order *is*
  architectural order.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, List, Tuple

from repro.analysis.clueless import Clueless
from repro.isa.microop import MicroOp

__all__ = ["LeakageTimeline", "TimelineSink", "leakage_timeline"]


@dataclasses.dataclass(frozen=True)
class LeakageTimeline:
    """Sampled leakage counts over a trace."""

    interval: int
    #: (micro-op index, DIFT-leaked words, pair-leaked words) per sample.
    samples: Tuple[Tuple[int, int, int], ...]

    @property
    def peak_dift(self) -> int:
        return max((s[1] for s in self.samples), default=0)

    @property
    def peak_pairs(self) -> int:
        return max((s[2] for s in self.samples), default=0)

    @property
    def final(self) -> Tuple[int, int]:
        if not self.samples:
            return (0, 0)
        return self.samples[-1][1], self.samples[-1][2]

    def as_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.sim.reporting.format_table`."""
        return [
            [str(index), str(dift), str(pairs)]
            for index, dift, pairs in self.samples
        ]


class TimelineSink:
    """Event-bus consumer building a leakage timeline from commits.

    Attach to a :class:`~repro.telemetry.events.TelemetryCollector`:
    every ``pipeline``/``commit`` event carries the committed micro-op,
    which is fed to Clueless in architectural (commit) order, sampling
    leaked-word counts every ``interval`` committed micro-ops.  The sink
    streams — it sees every event before sampling and ring-buffer
    truncation, so the timeline is exact even when the event trace is
    bounded.  It follows one core's commit stream (``core``): Clueless
    models one architectural register file.
    """

    def __init__(
        self, interval: int = 1000, arch_regs: int = 32, core: int = 0
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.core = core
        self._analyzer = Clueless(arch_regs)
        self._samples: List[Tuple[int, int, int]] = []
        self._count = 0

    def on_event(self, event: Any) -> None:
        """Consume one telemetry event (non-commit events are ignored)."""
        if (
            event.category != "pipeline"
            or event.kind != "commit"
            or event.core != self.core
            or event.uop is None
        ):
            return
        self._analyzer.step(event.uop)
        self._count += 1
        if self._count % self.interval == 0:
            report = self._analyzer.report()
            self._samples.append(
                (self._count, report.dift_leaked_words, report.pair_leaked_words)
            )

    def timeline(self) -> LeakageTimeline:
        """The timeline so far (with a tail sample if one is pending)."""
        samples = list(self._samples)
        if self._count % self.interval != 0:
            report = self._analyzer.report()
            samples.append(
                (self._count, report.dift_leaked_words, report.pair_leaked_words)
            )
        return LeakageTimeline(interval=self.interval, samples=tuple(samples))


def leakage_timeline(
    trace: Iterable[MicroOp], interval: int = 1000, arch_regs: int = 32
) -> LeakageTimeline:
    """Sample leaked-word counts every ``interval`` micro-ops."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    analyzer = Clueless(arch_regs)
    samples: List[Tuple[int, int, int]] = []
    count = 0
    for uop in trace:
        analyzer.step(uop)
        count += 1
        if count % interval == 0:
            report = analyzer.report()
            samples.append(
                (count, report.dift_leaked_words, report.pair_leaked_words)
            )
    if count % interval != 0:
        report = analyzer.report()
        samples.append(
            (count, report.dift_leaked_words, report.pair_leaked_words)
        )
    return LeakageTimeline(interval=interval, samples=tuple(samples))
