"""Leakage timelines.

Clueless "dynamically records the portion of memory that has leaked at
any specific moment" (paper §6.1).  This module produces that time
series: the number of currently-leaked words (global DIFT and direct
load pairs) sampled every N micro-ops, which is useful for
understanding the reveal/conceal churn a workload produces — e.g. why a
benchmark with heavy pointer rewriting recovers less under ReCon.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Tuple

from repro.analysis.clueless import Clueless
from repro.isa.microop import MicroOp

__all__ = ["LeakageTimeline", "leakage_timeline"]


@dataclasses.dataclass(frozen=True)
class LeakageTimeline:
    """Sampled leakage counts over a trace."""

    interval: int
    #: (micro-op index, DIFT-leaked words, pair-leaked words) per sample.
    samples: Tuple[Tuple[int, int, int], ...]

    @property
    def peak_dift(self) -> int:
        return max((s[1] for s in self.samples), default=0)

    @property
    def peak_pairs(self) -> int:
        return max((s[2] for s in self.samples), default=0)

    @property
    def final(self) -> Tuple[int, int]:
        if not self.samples:
            return (0, 0)
        return self.samples[-1][1], self.samples[-1][2]

    def as_rows(self) -> List[List[str]]:
        """Rows for :func:`repro.sim.reporting.format_table`."""
        return [
            [str(index), str(dift), str(pairs)]
            for index, dift, pairs in self.samples
        ]


def leakage_timeline(
    trace: Iterable[MicroOp], interval: int = 1000, arch_regs: int = 32
) -> LeakageTimeline:
    """Sample leaked-word counts every ``interval`` micro-ops."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    analyzer = Clueless(arch_regs)
    samples: List[Tuple[int, int, int]] = []
    count = 0
    for uop in trace:
        analyzer.step(uop)
        count += 1
        if count % interval == 0:
            report = analyzer.report()
            samples.append(
                (count, report.dift_leaked_words, report.pair_leaked_words)
            )
    if count % interval != 0:
        report = analyzer.report()
        samples.append(
            (count, report.dift_leaked_words, report.pair_leaked_words)
        )
    return LeakageTimeline(interval=interval, samples=tuple(samples))
