"""Clueless: trace-based characterization of non-speculative leakage.

Reproduces the two measurements of the paper's Figure 4:

* **global DIFT** — every memory word whose contents were turned into an
  address through *any* dependence chain (registers and memory);
* **direct load pairs** — the subset the paper's modified Clueless
  reports: words leaked by a load whose value is used, directly and
  without intervening computation (an immediate offset is allowed), as
  the address of a following load.

The pair-only tracker mirrors the LPT (§5.1) but in architectural order:
a load marks its destination register as *directly loaded from* its
address; any other producer clears that mark; a load whose base register
carries a mark leaks the marked address.  Stores conceal in both trackers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.common.types import OpClass, word_addr
from repro.analysis.dift import DiftEngine
from repro.isa.microop import MicroOp

__all__ = ["Clueless", "LeakageReport"]


@dataclasses.dataclass(frozen=True)
class LeakageReport:
    """Leakage summary for one trace (the rows of Figure 4)."""

    footprint_words: int
    dift_leaked_words: int
    pair_leaked_words: int
    dift_peak_words: int

    @property
    def dift_fraction(self) -> float:
        """Fraction of the footprint leaked under global DIFT."""
        if not self.footprint_words:
            return 0.0
        return self.dift_leaked_words / self.footprint_words

    @property
    def pair_fraction(self) -> float:
        """Fraction of the footprint leaked by direct load pairs."""
        if not self.footprint_words:
            return 0.0
        return self.pair_leaked_words / self.footprint_words

    @property
    def pair_coverage(self) -> float:
        """Share of all DIFT leakage that load pairs capture (Fig. 9 x-axis)."""
        if not self.dift_leaked_words:
            return 1.0
        return self.pair_leaked_words / self.dift_leaked_words


class Clueless:
    """Runs global-DIFT and pair-only leakage tracking over a trace."""

    def __init__(self, arch_regs: int = 32) -> None:
        self._dift = DiftEngine(arch_regs)
        self._direct_from: Dict[int, Optional[int]] = {
            r: None for r in range(arch_regs)
        }
        self._pair_leaked: Set[int] = set()

    def step(self, uop: MicroOp) -> None:
        """Process one micro-op in architectural order."""
        self._dift.step(uop)
        self._step_pairs(uop)

    def run(self, trace: Iterable[MicroOp]) -> LeakageReport:
        """Process a whole trace and return its leakage report."""
        for uop in trace:
            self.step(uop)
        return self.report()

    def _step_pairs(self, uop: MicroOp) -> None:
        opclass = uop.opclass
        if opclass is OpClass.LOAD:
            for src in uop.srcs:  # every address operand can form a pair
                marked = self._direct_from[src]
                if marked is not None:
                    self._pair_leaked.add(marked)
            assert uop.dest is not None and uop.addr is not None
            self._direct_from[uop.dest] = word_addr(uop.addr)
        elif opclass is OpClass.STORE:
            assert uop.addr is not None
            self._pair_leaked.discard(word_addr(uop.addr))
        elif uop.dest is not None:
            # Any non-load producer breaks direct dependence.
            self._direct_from[uop.dest] = None

    @property
    def dift_leaked(self) -> FrozenSet[int]:
        """Words currently leaked under global DIFT (live set).

        "Currently": a concealing store removes its word, so this is
        the leak state *at this point* of the trace — which is what the
        red-team harness needs to decide whether a transmitted word was
        already public at attack time.
        """
        return frozenset(self._dift.leaked)

    @property
    def pair_leaked(self) -> FrozenSet[int]:
        """Words currently leaked by direct load pairs (live set)."""
        return frozenset(self._pair_leaked)

    def report(self) -> LeakageReport:
        """Leakage summary for everything processed so far."""
        footprint = self._dift.footprint
        return LeakageReport(
            footprint_words=len(footprint),
            dift_leaked_words=len(self._dift.leaked & footprint),
            pair_leaked_words=len(self._pair_leaked & footprint),
            dift_peak_words=self._dift.peak_leaked,
        )
