"""Analysis tools: the Clueless leakage characterizer and companions."""

from repro.analysis.clueless import Clueless, LeakageReport
from repro.analysis.dift import DiftEngine
from repro.analysis.oracle import oracle_revealed_loads
from repro.analysis.timeline import LeakageTimeline, TimelineSink, leakage_timeline

__all__ = [
    "Clueless",
    "DiftEngine",
    "LeakageReport",
    "LeakageTimeline",
    "TimelineSink",
    "leakage_timeline",
    "oracle_revealed_loads",
]
