"""A global dynamic information-flow tracking (DIFT) engine over traces.

This is the reproduction of the tracking core of *Clueless* (Chen et al.,
2023), the tool the paper uses to characterize non-speculative leakage
(§6.1-6.2).  It runs over the architectural (in-order) trace — Clueless
does not model speculation — and answers: *which memory words have had
their contents turned into an address* (i.e. leaked through a cache
side-channel) at any point of the execution?

Tracking rules:

* each register carries a *source set* — the memory word addresses whose
  contents the register's value is derived from;
* ``load r, [addr]`` sets ``sources(r) = {addr} | mem_sources(addr)``
  (the loaded value lives at ``addr``, and at every location the stored
  value was itself derived from);
* computation unions the source sets of its operands;
* ``store r, [addr]`` sets ``mem_sources(addr) = sources(r)`` and — because
  the word now holds a *new* value that has not been observed — clears
  ``addr``'s leaked status;
* when a memory access computes its address from registers, every address
  in those registers' source sets is **leaked**: the value stored there was
  exposed as an address to the memory hierarchy.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.common.types import OpClass, word_addr
from repro.isa.microop import MicroOp

__all__ = ["DiftEngine"]

_EMPTY: FrozenSet[int] = frozenset()


class DiftEngine:
    """Global DIFT over an architectural trace."""

    def __init__(self, arch_regs: int = 32) -> None:
        self._reg_sources: Dict[int, FrozenSet[int]] = {
            r: _EMPTY for r in range(arch_regs)
        }
        self._mem_sources: Dict[int, FrozenSet[int]] = {}
        #: Words whose contents are currently leaked.
        self.leaked: Set[int] = set()
        #: All words the program has touched (its data footprint).
        self.footprint: Set[int] = set()
        #: Peak size of ``leaked`` over the run.
        self.peak_leaked = 0

    def step(self, uop: MicroOp) -> None:
        """Process one micro-op in architectural order."""
        opclass = uop.opclass
        if opclass is OpClass.LOAD:
            self._leak_address_sources(uop)
            addr = word_addr(uop.addr)  # type: ignore[arg-type]
            self.footprint.add(addr)
            sources = frozenset({addr}) | self._mem_sources.get(addr, _EMPTY)
            assert uop.dest is not None
            self._reg_sources[uop.dest] = sources
        elif opclass is OpClass.STORE:
            self._leak_address_sources(uop)
            addr = word_addr(uop.addr)  # type: ignore[arg-type]
            self.footprint.add(addr)
            data_reg = uop.data_srcs[0] if uop.data_srcs else None
            self._mem_sources[addr] = (
                self._reg_sources[data_reg] if data_reg is not None else _EMPTY
            )
            # The word holds a fresh value: no longer leaked.
            self.leaked.discard(addr)
        elif opclass is OpClass.BRANCH:
            # Control dependencies are implicit channels; Clueless (and
            # ReCon) focus on explicit leakage, so branches do not leak.
            pass
        elif uop.dest is not None:
            combined = _EMPTY
            for src in uop.srcs:
                combined |= self._reg_sources[src]
            self._reg_sources[uop.dest] = combined

    def _leak_address_sources(self, uop: MicroOp) -> None:
        """The address-forming registers' sources become leaked.

        ``uop.srcs`` of a memory op holds exactly the address-forming
        registers (a store's data register lives in ``data_srcs``).
        """
        changed = False
        for reg in uop.srcs:
            sources = self._reg_sources[reg]
            if sources:
                before = len(self.leaked)
                self.leaked.update(sources)
                changed = changed or len(self.leaked) != before
        if changed and len(self.leaked) > self.peak_leaked:
            self.peak_leaked = len(self.leaked)

    @property
    def leaked_fraction(self) -> float:
        """Leaked words as a fraction of the program's data footprint."""
        if not self.footprint:
            return 0.0
        return len(self.leaked & self.footprint) / len(self.footprint)
