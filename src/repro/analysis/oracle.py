"""Oracle leakage knowledge for ablation studies.

Runs the global DIFT engine over a trace in architectural order and
records, for every load, whether the word it accesses had *already
leaked* (through any dependence chain) at that point of the execution.

This is the information an idealized SPT-style mechanism — unlimited
tracking state, instant propagation, no cache-residency constraints —
could act on.  Comparing a secure scheme optimized by this oracle
against one optimized by ReCon's load-pair table quantifies how much of
the ideal benefit the paper's cheap detector captures (§4.2-4.3 argue it
is most of it).
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.analysis.dift import DiftEngine
from repro.common.types import OpClass, word_addr
from repro.isa.microop import MicroOp

__all__ = ["oracle_revealed_loads"]


def oracle_revealed_loads(trace: Iterable[MicroOp], arch_regs: int = 32) -> Set[int]:
    """Sequence numbers of loads whose word was already DIFT-leaked.

    The check happens *before* the load is processed, so a load does not
    count its own leakage; stores conceal as usual.
    """
    engine = DiftEngine(arch_regs)
    revealed: Set[int] = set()
    for uop in trace:
        if uop.opclass is OpClass.LOAD:
            assert uop.addr is not None
            if word_addr(uop.addr) in engine.leaked:
                revealed.add(uop.seq)
        engine.step(uop)
    return revealed
