"""Statistical sampling + warm-start simulation (SMARTS-style).

Instead of detail-simulating a whole trace, a sampled run functionally
warms memory state, detail-simulates short measurement units spread over
the measured region, and reports per-cell IPC / leakage-count estimates
with Student-t confidence intervals, escalating the number of units
until the relative CI half-width meets a target.

Public surface:

- :class:`~repro.sampling.config.SamplingConfig` /
  :func:`~repro.sampling.config.parse_sampling` — the knobs and the
  ``--sampling ci=0.02,conf=0.95`` spec-string parser.
- :class:`~repro.sampling.estimator.MeanEstimator` /
  :class:`~repro.sampling.estimator.SampledEstimate` — the statistics.
- :func:`~repro.sampling.executor.run_sampled` — the sampled
  counterpart of :func:`repro.sim.runner.run_benchmark` (reached
  automatically when ``RunConfig.sampling`` is set).

The executor pulls in the simulator stack, so it is loaded lazily —
importing :mod:`repro.sampling` (as :mod:`repro.sim.config` does for
the config type) stays cheap and cycle-free.
"""

from repro.sampling.config import (
    DEFAULT_SAMPLING_SPEC,
    SamplingConfig,
    parse_sampling,
)
from repro.sampling.estimator import (
    MeanEstimator,
    SampledEstimate,
    escalation_schedule,
    student_t_sf,
    t_critical,
)

__all__ = [
    "DEFAULT_SAMPLING_SPEC",
    "MeanEstimator",
    "SampledEstimate",
    "SamplingConfig",
    "escalation_schedule",
    "parse_sampling",
    "run_sampled",
    "student_t_sf",
    "t_critical",
]


def __getattr__(name):
    if name == "run_sampled":
        from repro.sampling.executor import run_sampled

        return run_sampled
    raise AttributeError(name)
