"""Functional warm-up: fast-forward memory state without detailed timing.

A sampled run cannot start each measurement unit from a cold machine —
cold caches would bias every unit's IPC down.  The functional warmer
replays the trace prefix through the *real*
:class:`~repro.memory.hierarchy.MemoryHierarchy` state updaters
(``read``/``write``/``reveal``), so lines land in the same caches, the
directory tracks the same owners/sharers, and ReCon reveal bits follow
the same load-pair discipline as a detailed run — just without the
cycle-accurate pipeline in front.  Load-pair effects are emulated on
architectural registers: a committed load records ``dest → addr``; a
later load that sources that register reveals the earlier load's word
(checked before the destination entry is overwritten, mirroring
:meth:`~repro.security.lpt.LoadPairTable.on_load_commit_multi` ordering);
any non-load writer of the register clears the entry.

Warm images are plain JSON-serializable dicts (cache lines in global
LRU order plus the per-core load-pair maps), so
:mod:`repro.sampling.executor` can memoize them in the result store and
share them across schemes — trace generation and the functional replay
are both scheme-independent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.common.params import SystemParams
from repro.common.types import MESIState
from repro.isa.microop import MicroOp
from repro.memory.cache import CacheArray
from repro.memory.hierarchy import MemoryHierarchy

__all__ = [
    "FunctionalWarmer",
    "clone_slice",
    "restore_hierarchy",
    "snapshot_hierarchy",
]


IMAGE_VERSION = 1


def clone_slice(
    trace: Sequence[MicroOp], start: int, stop: int
) -> List[MicroOp]:
    """Copy ``trace[start:stop]`` with sequence numbers rebased to 0.

    The trace cache shares MicroOp objects across runs, so slices must
    never mutate them; each cloned op is a fresh instance.  Program
    counters are kept (predictors key on pc), only ``seq`` is rebased so
    the pipeline's in-order bookkeeping sees a self-consistent window.
    """
    out: List[MicroOp] = []
    for idx, op in enumerate(trace[start:stop]):
        copy = MicroOp(
            op.opclass,
            dest=op.dest,
            srcs=op.srcs,
            addr=op.addr,
            value=op.value,
            pc=op.pc,
            mispredict=op.mispredict,
            forced_prediction=op.forced_prediction,
            data_srcs=op.data_srcs,
        )
        copy.seq = idx
        out.append(copy)
    return out


def _snapshot_array(array: CacheArray, directory: bool) -> List[List[Any]]:
    """Dump resident lines in global-LRU-tick order (oldest first)."""
    lines = sorted(array, key=lambda line: line.lru)
    dump: List[List[Any]] = []
    for line in lines:
        record: List[Any] = [
            line.addr,
            line.state.value,
            line.reveal,
            bool(line.dirty),
        ]
        if directory:
            record.append(line.owner)
            record.append(sorted(line.sharers))
        dump.append(record)
    return dump


def _restore_array(
    array: CacheArray, dump: Sequence[Sequence[Any]], directory: bool
) -> None:
    """Re-insert dumped lines; insertion order recreates per-set LRU."""
    for record in dump:
        addr, state, reveal, dirty = record[0], record[1], record[2], record[3]
        line, victim = array.insert(int(addr), MESIState(state), int(reveal))
        assert victim is None, "warm image exceeds cache capacity"
        line.dirty = bool(dirty)
        if directory:
            line.owner = record[4]
            line.sharers = set(record[5])
    # Re-inserting counted as capacity activity only in ticks, not
    # evictions; zero the telemetry counter so a restored hierarchy
    # starts its measurement window clean.
    array.evictions = 0


def snapshot_hierarchy(
    hierarchy: MemoryHierarchy, pairs: Sequence[Dict[int, int]]
) -> Dict[str, Any]:
    """Serialize warm cache/directory state plus the load-pair maps."""
    return {
        "version": IMAGE_VERSION,
        "llc": _snapshot_array(hierarchy.llc, directory=True),
        "cores": [
            {
                "l1": _snapshot_array(priv.l1, directory=False),
                "l2": _snapshot_array(priv.l2, directory=False),
            }
            for priv in hierarchy._privs
        ],
        "pairs": [
            {str(reg): addr for reg, addr in core_pairs.items()}
            for core_pairs in pairs
        ],
    }


def restore_hierarchy(
    params: SystemParams, image: Dict[str, Any]
) -> MemoryHierarchy:
    """Build a fresh hierarchy and load a warm image into it.

    MSHRs and ports start empty on purpose: the functional pass has no
    notion of in-flight transactions, and a unit's own detailed warm
    prefix re-populates transient state before measurement begins.
    """
    if image.get("version") != IMAGE_VERSION:
        raise ValueError(
            "warm image version %r != %d" % (image.get("version"), IMAGE_VERSION)
        )
    hierarchy = MemoryHierarchy(params)
    if len(image["cores"]) != params.num_cores:
        raise ValueError(
            "warm image built for %d cores, params have %d"
            % (len(image["cores"]), params.num_cores)
        )
    _restore_array(hierarchy.llc, image["llc"], directory=True)
    for priv, dump in zip(hierarchy._privs, image["cores"]):
        _restore_array(priv.l1, dump["l1"], directory=False)
        _restore_array(priv.l2, dump["l2"], directory=False)
    return hierarchy


def image_pairs(image: Dict[str, Any]) -> List[Dict[int, int]]:
    """Decode the per-core load-pair maps from a warm image."""
    return [
        {int(reg): int(addr) for reg, addr in core_pairs.items()}
        for core_pairs in image["pairs"]
    ]


class FunctionalWarmer:
    """Replays trace prefixes through real memory-state updaters.

    The warmer walks every core's trace round-robin by index (the
    closest order-approximation to concurrent execution that needs no
    timing model) and exposes :meth:`snapshot` at arbitrary uop offsets,
    advancing monotonically — the sampled executor snapshots once per
    measurement-grid slot in a single O(trace) pass.
    """

    def __init__(
        self,
        params: SystemParams,
        traces: Sequence[Sequence[MicroOp]],
    ) -> None:
        if len(traces) > params.num_cores:
            import dataclasses

            params = dataclasses.replace(params, num_cores=len(traces))
        self.params = params
        self.traces = traces
        self.hierarchy = MemoryHierarchy(params)
        self.position = 0
        self._pairs: List[Dict[int, int]] = [dict() for _ in traces]

    def advance(self, upto: int) -> None:
        """Replay all cores forward to per-core uop index ``upto``."""
        if upto < self.position:
            raise ValueError(
                "FunctionalWarmer is forward-only (at %d, asked for %d)"
                % (self.position, upto)
            )
        hierarchy = self.hierarchy
        for idx in range(self.position, upto):
            for core, trace in enumerate(self.traces):
                if idx >= len(trace):
                    continue
                uop = trace[idx]
                if uop.is_load:
                    pairs = self._pairs[core]
                    for src in uop.srcs:
                        addr = pairs.get(src)
                        if addr is not None:
                            hierarchy.reveal(core, addr, 0)
                    hierarchy.read(core, uop.addr, 0)
                    pairs[uop.dest] = uop.addr
                elif uop.is_store:
                    hierarchy.write(core, uop.addr, 0)
                elif uop.dest is not None:
                    self._pairs[core].pop(uop.dest, None)
        self.position = upto

    def snapshot(self, at: int) -> Dict[str, Any]:
        """Advance to ``at`` and serialize the warm state."""
        self.advance(at)
        return snapshot_hierarchy(self.hierarchy, self._pairs)


def build_warm_images(
    params: SystemParams,
    traces: Sequence[Sequence[MicroOp]],
    offsets: Sequence[int],
) -> Dict[str, Any]:
    """One functional pass producing a warm image per grid offset.

    ``offsets`` must be sorted ascending; the result maps each offset to
    its image under a JSON-friendly layout shared across schemes.
    """
    warmer = FunctionalWarmer(params, traces)
    images: Dict[str, Any] = {"version": IMAGE_VERSION, "offsets": {}}
    last: Optional[int] = None
    for offset in offsets:
        if last is not None and offset < last:
            raise ValueError("offsets must be ascending")
        last = offset
        images["offsets"][str(offset)] = warmer.snapshot(offset)
    return images
