"""Sampled-run executor: warm-up, measurement units, escalation.

:func:`run_sampled` is the sampled counterpart of
:func:`repro.sim.runner.run_benchmark` — same signature semantics, same
:class:`~repro.sim.runner.RunResult` shape, reached automatically when
``RunConfig.sampling`` is set.  The procedure (SMARTS-style):

1. Build (or reuse — traces are scheme-independent) the workload trace.
2. Place ``max_units`` measurement-grid slots evenly across the exact
   run's measured region ``[resolved_warmup, length)``.
3. One functional pass replays the trace through the real memory-state
   updaters, snapshotting a warm image at every slot (cheap: dict ops,
   no cycle loop).  Images are content-hash memoized — in-process
   always, in the result store's blob area when a store is available —
   and shared by every scheme of the same cell.
4. Escalate: detail-simulate ``min_units`` units (each restored from
   its warm image, with a short detailed re-warm prefix for
   pipeline-local state), estimate IPC with a Student-t interval, and
   double the unit count on the nested power-of-two grid until the
   relative half-width meets the target or ``max_units`` is reached.
   Doubling reuses every already-measured unit.
5. Scale counters to the measured region and report the estimate as a
   :class:`~repro.sampling.estimator.SampledEstimate` on the result.

Everything is deterministic: unit placement is arithmetic, units are
simulated in ascending-offset order, and the estimator is rebuilt in
that same order each round — so inline/threads/process/queue backends
and a service-restart replay all produce bit-identical results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.isa.microop import MicroOp
from repro.sampling.config import SamplingConfig
from repro.sampling.estimator import (
    MeanEstimator,
    SampledEstimate,
    escalation_schedule,
)
from repro.sampling.warmup import (
    FunctionalWarmer,
    clone_slice,
    restore_hierarchy,
)
from repro.sim.config import RunConfig
from repro.sim.system import System
from repro.workloads.profile import BenchmarkProfile

__all__ = ["run_sampled", "warm_images_key", "get_warm_images"]

#: StatSet counters that get their own per-cell estimate + CI (the
#: leakage-relevant ones a ReCon comparison reads off a sampled sweep).
LEAKAGE_COUNTERS = ("load_pairs_detected", "reveal_hits", "delayed_loads")

#: Blob kind under which warm images live in the result store.
WARM_IMAGE_KIND = "warm_images"

#: In-process warm-image memo (always on; the store adds persistence).
_WARM_MEMO: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
_WARM_MEMO_MAX = 4


def warm_images_key(
    profile: BenchmarkProfile,
    threads: int,
    length: int,
    params: Any,
    offsets: Sequence[int],
) -> str:
    """Content hash identifying a cell's warm-image set.

    Scheme is deliberately absent: trace generation and the functional
    replay are scheme-independent, so cells differing only in scheme
    share one entry — the delta memoization that makes scheme sweeps
    cheap.
    """
    from repro.sim.store import _jsonable

    payload = {
        "kind": WARM_IMAGE_KIND,
        "profile": _jsonable(profile),
        "seed": profile.seed,
        "threads": threads,
        "length": length,
        "params": _jsonable(params),
        "offsets": list(offsets),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _default_warm_store():
    """A store for warm images, only when ``REPRO_STORE`` is set.

    ``run_benchmark`` has no store argument, so persistence here is
    opt-in via the environment: an explicitly configured store directory
    is honored, the implicit ``results/.store`` default is not (a bare
    ``run_benchmark`` call must not start writing to the filesystem).
    """
    from repro.sim.store import STORE_ENV, ResultStore, default_store_root

    if os.environ.get(STORE_ENV) is None:
        return None
    root = default_store_root()
    if root is None:
        return None
    return ResultStore(root)


def get_warm_images(
    profile: BenchmarkProfile,
    threads: int,
    length: int,
    params: Any,
    offsets: Sequence[int],
    traces: Sequence[Sequence[MicroOp]],
    store: Optional[Any] = None,
) -> Dict[str, Any]:
    """Warm images for every grid offset, memoized by content hash."""
    key = warm_images_key(profile, threads, length, params, offsets)
    cached = _WARM_MEMO.get(key)
    if cached is not None:
        _WARM_MEMO.move_to_end(key)
        return cached
    if store is not None:
        blob = store.get_entry(WARM_IMAGE_KIND, key)
        if blob is not None:
            _memo_put(key, blob)
            return blob
    warmer = FunctionalWarmer(params, traces)
    blob = {"offsets": {str(off): warmer.snapshot(off) for off in offsets}}
    if store is not None:
        store.put_entry(WARM_IMAGE_KIND, key, blob)
    _memo_put(key, blob)
    return blob


def _memo_put(key: str, blob: Dict[str, Any]) -> None:
    _WARM_MEMO[key] = blob
    _WARM_MEMO.move_to_end(key)
    while len(_WARM_MEMO) > _WARM_MEMO_MAX:
        _WARM_MEMO.popitem(last=False)


def _unit_grid(
    warmup: int, length: int, unit_uops: int, max_units: int
) -> Tuple[List[int], int]:
    """Detailed-slice start offsets for every grid slot.

    Returns ``(starts, unit_uops)`` where ``starts[i]`` is slot *i*'s
    measurement start (the detailed re-warm prefix precedes it) and the
    unit size may have been shrunk for short measured regions.  Units
    estimate the same quantity exact mode measures, so every unit lies
    inside ``[warmup, length)``.
    """
    span = length - warmup
    if span <= 0:
        raise ValueError(
            "measured region is empty (warmup %d >= length %d)"
            % (warmup, length)
        )
    unit_uops = max(min(unit_uops, span // 2), 10)
    if span <= unit_uops:
        unit_uops = max(span // 2, 1)
    starts = [
        warmup + (i * (span - unit_uops)) // max_units
        for i in range(max_units)
    ]
    return starts, unit_uops


@dataclasses.dataclass
class _UnitResult:
    cpi: float
    committed: int
    detailed_uops: int
    per_core: List[StatSet]


def _measure_unit(
    traces: Sequence[Sequence[MicroOp]],
    params: Any,
    scheme: SchemeKind,
    start: int,
    unit_uops: int,
    unit_warm: int,
    image: Optional[Dict[str, Any]],
) -> _UnitResult:
    """Detail-simulate one measurement unit and return its measurement.

    The slice carries a cool-down suffix (one ROB worth of uops) past
    the measurement window so fetch never starves mid-window; the core
    stops at the window-closing commit (``measure_uops``), so the
    suffix is never simulated to completion and end-of-trace pipeline
    drain cannot pollute the measured cycle count.
    """
    snap = max(start - unit_warm, 0)
    warm_len = start - snap
    cooldown = params.core.rob_entries
    unit_traces = [
        clone_slice(trace, snap, min(start + unit_uops + cooldown, len(trace)))
        for trace in traces
    ]
    hierarchy = None
    if image is not None:
        hierarchy = restore_hierarchy(params, image)
    result = System(
        params,
        unit_traces,
        scheme,
        warmup_uops=warm_len,
        hierarchy=hierarchy,
        measure_uops=unit_uops,
    ).run()
    committed = sum(s.committed_uops for s in result.per_core)
    cpi = (result.cycles / committed) if committed else 0.0
    # Detailed cost = uops committed through the detailed pipeline
    # (warm prefix + measured window per core; the cool-down suffix is
    # fetched but never commits).
    detailed = sum(
        min(len(trace), warm_len + unit_uops) for trace in unit_traces
    )
    return _UnitResult(
        cpi=cpi,
        committed=committed,
        detailed_uops=detailed,
        per_core=result.per_core,
    )


def _scaled_stats(
    units: Sequence[_UnitResult], region_uops: List[int]
) -> Tuple[StatSet, List[StatSet]]:
    """Scale summed unit counters up to the full measured region.

    Cycle counts are left at 0 here — the caller derives cycles from
    the IPC estimate so that ``RunResult.ipc`` reproduces the estimator
    mean exactly.
    """
    num_cores = len(region_uops)
    per_core: List[StatSet] = []
    for core in range(num_cores):
        total = StatSet()
        for unit in units:
            if core < len(unit.per_core):
                total.merge(unit.per_core[core])
        committed = total.committed_uops
        scale = (region_uops[core] / committed) if committed else 0.0
        scaled = StatSet()
        for name, value in total.as_dict().items():
            setattr(scaled, name, int(round(value * scale)))
        scaled.committed_uops = region_uops[core]
        scaled.cycles = 0
        per_core.append(scaled)
    aggregate = StatSet()
    for core_stats in per_core:
        aggregate.merge(core_stats)
    aggregate.cycles = 0
    return aggregate, per_core


def run_sampled(
    profile: BenchmarkProfile,
    scheme: SchemeKind,
    length: int,
    *,
    config: RunConfig,
    traces: Sequence[Sequence[MicroOp]],
    store: Optional[Any] = None,
):
    """Run one (benchmark, scheme) cell with statistical sampling.

    Returns a :class:`~repro.sim.runner.RunResult` whose ``sampling``
    field carries the :class:`SampledEstimate`.  ``traces`` is the full
    trace list from the runner's trace cache (shared across schemes);
    ``store`` optionally persists warm images (defaults to the
    environment-configured store, see :func:`_default_warm_store`).
    """
    from repro.sim.runner import RunResult

    sampling = config.sampling
    assert sampling is not None
    params = config.resolved_params()
    if len(traces) > params.num_cores:
        params = dataclasses.replace(params, num_cores=len(traces))
    warmup = config.resolved_warmup(length)
    starts, unit_uops = _unit_grid(
        warmup, length, sampling.resolved_unit_uops(length), sampling.max_units
    )
    unit_warm = sampling.resolved_unit_warm(unit_uops)

    images: Optional[Dict[str, Any]] = None
    if sampling.warmup_mode == "functional":
        snap_offsets = sorted({max(s - unit_warm, 0) for s in starts})
        if store is None and sampling.memoize_warm:
            store = _default_warm_store()
        blob = get_warm_images(
            profile,
            config.threads,
            length,
            params,
            snap_offsets,
            traces,
            store=store if sampling.memoize_warm else None,
        )
        images = blob["offsets"]

    total_uops = sum(len(t) for t in traces)
    region_uops = [max(0, min(len(t), length) - warmup) for t in traces]

    measured: Dict[int, _UnitResult] = {}
    est = MeanEstimator(sampling.confidence)
    leak_ests: Dict[str, MeanEstimator] = {}
    rounds = 0
    converged = False
    for count in escalation_schedule(sampling.min_units, sampling.max_units):
        rounds += 1
        stride = max(sampling.max_units // count, 1)
        slots = [k * stride for k in range(count)]
        for slot in sorted(s for s in slots if s not in measured):
            start = starts[slot]
            image = None
            if images is not None:
                image = images[str(max(start - unit_warm, 0))]
            measured[slot] = _measure_unit(
                traces, params, scheme, start, unit_uops, unit_warm, image
            )
        # Rebuild the estimators in ascending-offset order every round:
        # the accumulation order (which matters in floating point) then
        # depends only on the final unit set, never on round history.
        # The IPC estimator works in the CPI domain — units commit a
        # fixed uop count, so the arithmetic mean of per-unit CPI is the
        # unbiased estimator of the region's cycles-per-uop (averaging
        # per-unit IPC instead would overweight fast phases).
        est = MeanEstimator(sampling.confidence)
        leak_ests = {
            name: MeanEstimator(sampling.confidence)
            for name in LEAKAGE_COUNTERS
        }
        region_total = sum(region_uops)
        for slot in sorted(measured):
            unit = measured[slot]
            est.add(unit.cpi)
            for name in LEAKAGE_COUNTERS:
                raw = sum(
                    getattr(stats, name) for stats in unit.per_core
                )
                rate = raw / unit.committed if unit.committed else 0.0
                leak_ests[name].add(rate * region_total)
        rel = est.relative_half_width()
        if rel is not None and rel <= sampling.target_ci:
            converged = True
            break

    rel_half = est.relative_half_width() or 0.0
    reported_rel = max(rel_half, sampling.bias_floor)
    mean_cpi = est.mean
    ipc_mean = (1.0 / mean_cpi) if mean_cpi > 0 else 0.0

    units = [measured[slot] for slot in sorted(measured)]
    stats, per_core = _scaled_stats(units, region_uops)
    region_total = sum(region_uops)
    cycles = int(round(region_total * mean_cpi)) if mean_cpi > 0 else 0
    stats.cycles = cycles
    if per_core:
        per_core[0].cycles = cycles

    estimate = SampledEstimate(
        ipc=ipc_mean,
        ipc_ci=ipc_mean * reported_rel,
        confidence=sampling.confidence,
        samples=est.n,
        unit_uops=unit_uops + unit_warm,
        detailed_uops=sum(unit.detailed_uops for unit in units),
        total_uops=total_uops,
        rounds=rounds,
        converged=converged,
        leakage={
            name: {
                "mean": leak_ests[name].mean,
                "ci": leak_ests[name].half_width() or 0.0,
            }
            for name in LEAKAGE_COUNTERS
        },
    )
    return RunResult(
        profile=profile,
        scheme=scheme,
        cycles=cycles,
        stats=stats,
        per_core=per_core,
        telemetry=None,
        sampling=estimate,
    )
