"""Sampling configuration and the ``--sampling`` spec-string parser."""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["SamplingConfig", "parse_sampling", "DEFAULT_SAMPLING_SPEC"]

WARMUP_MODES = ("functional", "cold")

DEFAULT_SAMPLING_SPEC = "ci=0.02,conf=0.95"


@dataclasses.dataclass(frozen=True)
class SamplingConfig:
    """Knobs for statistically sampled simulation.

    Attributes:
        target_ci: escalation target — relative CI half-width the
            estimator must reach (0.02 = ±2% of the IPC estimate).
        confidence: two-sided confidence level of the interval.
        min_units: measurement units in the first escalation round.
        max_units: hard cap on units; normalized up to the nearest
            ``min_units * 2**k`` so every round's placement grid is a
            subset of the next round's.
        unit_uops: committed micro-ops detailed-simulated per unit
            (``None`` → ``max(length // 48, 50)`` chosen at run time).
        unit_warm: committed micro-ops of *detailed* re-warm simulated
            before each measurement window opens (refills pipeline-local
            state — ROB, schedulers, LPT timing — that the functional
            image cannot carry).  ``None`` → ``max(unit_uops // 5, 32)``.
            The defaults keep the full-escalation detailed budget at
            ``max_units * (unit_uops + unit_warm) = length / 5`` — a
            guaranteed >= 5x cut in detailed-simulated micro-ops.
        warmup_mode: ``"functional"`` replays the trace prefix through
            the real cache/directory/LPT state updaters without timing;
            ``"cold"`` skips warm-up entirely (ablation/debug).
        bias_floor: relative systematic-error floor added in quadrature
            is wrong for bias — instead the reported half-width is
            ``max(statistical, bias_floor * |mean|)`` to keep intervals
            honest about slice-boundary effects the t statistic can't
            see.
        memoize_warm: share the functional warm image across schemes
            through the result store's content-hash blob entries.
    """

    target_ci: float = 0.02
    confidence: float = 0.95
    min_units: int = 4
    max_units: int = 8
    unit_uops: Optional[int] = None
    unit_warm: Optional[int] = None
    warmup_mode: str = "functional"
    bias_floor: float = 0.01
    memoize_warm: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.target_ci < 1.0:
            raise ValueError("target_ci must be in (0, 1)")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.min_units < 2:
            raise ValueError("min_units must be at least 2")
        if self.max_units < self.min_units:
            raise ValueError("max_units must be >= min_units")
        if self.unit_uops is not None and self.unit_uops < 10:
            raise ValueError("unit_uops must be at least 10")
        if self.unit_warm is not None and self.unit_warm < 0:
            raise ValueError("unit_warm must be non-negative")
        if self.warmup_mode not in WARMUP_MODES:
            raise ValueError(
                "warmup_mode must be one of %s" % (WARMUP_MODES,)
            )
        if self.bias_floor < 0.0:
            raise ValueError("bias_floor must be non-negative")
        # Normalize max_units up to min_units * 2**k so escalation
        # rounds nest on the power-of-two placement grid.
        cap = self.min_units
        while cap < self.max_units:
            cap *= 2
        if cap != self.max_units:
            object.__setattr__(self, "max_units", cap)

    def resolved_unit_uops(self, length: int) -> int:
        """Committed uops per measurement unit (default ``length/48``)."""
        if self.unit_uops is not None:
            return self.unit_uops
        return max(length // 48, 50)

    def resolved_unit_warm(self, unit_uops: int) -> int:
        """Detailed re-warm uops per unit (default ``unit_uops/5``)."""
        if self.unit_warm is not None:
            return self.unit_warm
        return max(unit_uops // 5, 32)

    def spec(self) -> str:
        """Canonical spec string; ``parse_sampling(cfg.spec()) == cfg``."""
        parts = ["ci=%g" % self.target_ci, "conf=%g" % self.confidence]
        default = SamplingConfig()
        if self.min_units != default.min_units:
            parts.append("min=%d" % self.min_units)
        if self.max_units != default.max_units:
            parts.append("max=%d" % self.max_units)
        if self.unit_uops is not None:
            parts.append("unit=%d" % self.unit_uops)
        if self.unit_warm is not None:
            parts.append("warm=%d" % self.unit_warm)
        if self.warmup_mode != default.warmup_mode:
            parts.append("warmup=%s" % self.warmup_mode)
        if self.bias_floor != default.bias_floor:
            parts.append("bias=%g" % self.bias_floor)
        if self.memoize_warm != default.memoize_warm:
            parts.append("memoize=%d" % int(self.memoize_warm))
        return ",".join(parts)


_KEY_ALIASES = {
    "ci": "target_ci",
    "target_ci": "target_ci",
    "conf": "confidence",
    "confidence": "confidence",
    "min": "min_units",
    "min_units": "min_units",
    "max": "max_units",
    "max_units": "max_units",
    "unit": "unit_uops",
    "unit_uops": "unit_uops",
    "warm": "unit_warm",
    "unit_warm": "unit_warm",
    "warmup": "warmup_mode",
    "warmup_mode": "warmup_mode",
    "bias": "bias_floor",
    "bias_floor": "bias_floor",
    "memoize": "memoize_warm",
    "memoize_warm": "memoize_warm",
}

_INT_FIELDS = {"min_units", "max_units", "unit_uops", "unit_warm"}
_FLOAT_FIELDS = {"target_ci", "confidence", "bias_floor"}
_BOOL_FIELDS = {"memoize_warm"}


def parse_sampling(spec) -> Optional[SamplingConfig]:
    """Parse a ``--sampling`` value into a :class:`SamplingConfig`.

    Accepts ``None`` (→ ``None``: exact mode), an existing
    :class:`SamplingConfig` (passed through), the bare words ``"on"`` /
    ``"default"`` (→ defaults), ``"off"`` / ``"none"`` (→ ``None``), or
    a comma-separated ``key=value`` list, e.g.
    ``"ci=0.02,conf=0.95,min=4,max=32,warmup=functional"``.
    """
    if spec is None:
        return None
    if isinstance(spec, SamplingConfig):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            "sampling spec must be None, a string, or a SamplingConfig, "
            "got %r" % (type(spec).__name__,)
        )
    text = spec.strip()
    if not text or text.lower() in ("off", "none", "exact"):
        return None
    if text.lower() in ("on", "default", "defaults"):
        return SamplingConfig()
    kwargs = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                "bad sampling spec item %r (expected key=value)" % item
            )
        raw_key, raw_value = item.split("=", 1)
        key = _KEY_ALIASES.get(raw_key.strip().lower())
        if key is None:
            raise ValueError(
                "unknown sampling option %r (known: %s)"
                % (raw_key.strip(), ", ".join(sorted(set(_KEY_ALIASES))))
            )
        value = raw_value.strip()
        try:
            if key in _INT_FIELDS:
                kwargs[key] = int(value)
            elif key in _FLOAT_FIELDS:
                kwargs[key] = float(value)
            elif key in _BOOL_FIELDS:
                kwargs[key] = value.lower() not in ("0", "false", "no", "off")
            else:
                kwargs[key] = value.lower()
        except ValueError as exc:
            raise ValueError(
                "bad value %r for sampling option %r" % (value, raw_key)
            ) from exc
    return SamplingConfig(**kwargs)
