"""Statistical estimator core for sampled simulation.

Pure math, no simulator imports: Student-t critical values (computed
from the regularized incomplete beta function, so no SciPy dependency),
a Welford-accumulating :class:`MeanEstimator` with confidence-interval
queries, the doubling escalation schedule, and the
:class:`SampledEstimate` record that rides on a sampled
:class:`~repro.sim.runner.RunResult`.

The t quantile is exact (to the bisection tolerance), not a table
lookup: sample counts escalate at run time, so the degrees of freedom
are not known in advance.  ``t_critical`` is memoized — an escalation
loop asks for the same (confidence, dof) pairs over and over.
"""

from __future__ import annotations

import dataclasses
import math
from functools import lru_cache
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "MeanEstimator",
    "SampledEstimate",
    "escalation_schedule",
    "student_t_sf",
    "t_critical",
]

_BETACF_MAX_ITER = 300
_BETACF_EPS = 3e-12
_FPMIN = 1e-300


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _FPMIN:
        d = _FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _BETACF_MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _BETACF_EPS:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # Use the continued fraction on the side where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, dof: int) -> float:
    """One-sided survival function P(T > t) of Student's t."""
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    x = dof / (dof + t * t)
    tail = 0.5 * _betainc(dof / 2.0, 0.5, x)
    return tail if t >= 0 else 1.0 - tail


@lru_cache(maxsize=512)
def t_critical(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value t* with P(|T| <= t*) = confidence."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if dof <= 0:
        raise ValueError("degrees of freedom must be positive")
    alpha = (1.0 - confidence) / 2.0
    lo, hi = 0.0, 2.0
    while student_t_sf(hi, dof) > alpha:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - unreachable for sane confidences
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_sf(mid, dof) > alpha:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10:
            break
    return 0.5 * (lo + hi)


class MeanEstimator:
    """Running mean/variance (Welford) with Student-t confidence intervals."""

    def __init__(self, confidence: float = 0.95) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        self.confidence = confidence
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the running mean/variance (Welford)."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def std_error(self) -> float:
        return math.sqrt(self.variance / self.n) if self.n else 0.0

    def half_width(self) -> Optional[float]:
        """CI half-width at :attr:`confidence`; ``None`` below two samples."""
        if self.n < 2:
            return None
        return t_critical(self.confidence, self.n - 1) * self.std_error

    def relative_half_width(self) -> Optional[float]:
        """Half-width relative to |mean| (``inf`` for a zero mean)."""
        half = self.half_width()
        if half is None:
            return None
        if self.mean == 0.0:
            return math.inf if half > 0.0 else 0.0
        return half / abs(self.mean)

    def covers(self, true_mean: float) -> bool:
        """Does the current CI contain ``true_mean``? (needs >= 2 samples)"""
        half = self.half_width()
        if half is None:
            raise ValueError("need at least two samples for an interval")
        return abs(true_mean - self.mean) <= half


def escalation_schedule(min_units: int, max_units: int) -> Iterator[int]:
    """Cumulative sample counts per escalation round: min, 2*min, ... max.

    Doubling keeps every round's unit set a subset of the next round's
    on a power-of-two placement grid, so escalation re-measures nothing.
    Terminates unconditionally: counts grow strictly until ``max_units``.
    """
    if min_units < 2:
        raise ValueError("min_units must be at least 2")
    if max_units < min_units:
        raise ValueError("max_units must be >= min_units")
    n = min_units
    while True:
        yield n
        if n >= max_units:
            return
        n = min(n * 2, max_units)


@dataclasses.dataclass
class SampledEstimate:
    """The statistical annotations of a sampled run.

    Attributes:
        ipc: the run's IPC estimate — the reciprocal of the mean
            per-unit CPI (units commit equal uop counts, so mean CPI is
            the unbiased region estimator; see ``docs/sampling.md``).
        ipc_ci: the CI half-width around :attr:`ipc` — the reported
            interval is ``ipc ± ipc_ci`` at :attr:`confidence`.  Never
            narrower than the configured systematic-error floor.
        confidence: the nominal two-sided confidence level.
        samples: measurement units the estimate is built from.
        unit_uops: micro-ops detailed-simulated per unit (including the
            unit's own detailed re-warm prefix).
        detailed_uops: total micro-ops simulated in detail across every
            unit — the cost an exact run would have paid for the whole
            trace (:attr:`total_uops`).
        total_uops: full trace length in micro-ops (summed over cores).
        rounds: escalation rounds taken.
        converged: whether the relative CI half-width met the target
            before :class:`~repro.sampling.config.SamplingConfig`'s
            ``max_units`` cap.
        leakage: per-counter ``{"mean": ..., "ci": ...}`` estimates for
            the leakage counters, scaled to the measured region.
    """

    ipc: float
    ipc_ci: float
    confidence: float
    samples: int
    unit_uops: int
    detailed_uops: int
    total_uops: int
    rounds: int
    converged: bool
    leakage: Dict[str, Dict[str, float]] = dataclasses.field(
        default_factory=dict
    )

    @property
    def estimated(self) -> bool:
        return True

    @property
    def speedup_bound(self) -> float:
        """How many times fewer uops were detailed-simulated than exact."""
        if self.detailed_uops <= 0:
            return math.inf
        return self.total_uops / self.detailed_uops

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dict of the estimate, tagged ``estimated: True``."""
        data = dataclasses.asdict(self)
        data["estimated"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SampledEstimate":
        data = dict(data)
        data.pop("estimated", None)
        return cls(**data)
