"""Shared enumerations and elementary type aliases.

Everything in this module is intentionally tiny: these are the vocabulary
types used across the core model, the memory hierarchy, and the security
schemes.
"""

from __future__ import annotations

import enum

__all__ = [
    "OpClass",
    "SchemeKind",
    "CacheLevel",
    "MESIState",
    "MemPrediction",
    "SpeculationModel",
    "WORD_BYTES",
    "LINE_BYTES",
    "WORDS_PER_LINE",
    "line_addr",
    "word_index",
    "word_addr",
]

#: Size of an aligned machine word, in bytes.  ReCon reveals and conceals at
#: this granularity (paper section 4.4 / 6.7).
WORD_BYTES = 8

#: Cache line size, in bytes (Table 2).
LINE_BYTES = 64

#: Number of reveal/conceal bits per cache line.
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


class OpClass(enum.Enum):
    """Micro-op classes recognized by the pipeline model."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)


class SchemeKind(enum.Enum):
    """Security scheme selector for a simulated core.

    The ``+recon`` variants optimize the base scheme with the paper's
    load-pair table and coherent reveal bits; the ``+spt`` variants use
    SPT-lite continuous DIFT instead (§2.3 — the high-complexity
    alternative, implemented as an ablation).
    """

    UNSAFE = "unsafe"
    NDA = "nda"
    STT = "stt"
    DOM = "dom"
    INVISPEC = "invispec"
    NDA_RECON = "nda+recon"
    STT_RECON = "stt+recon"
    DOM_RECON = "dom+recon"
    INVISPEC_RECON = "invispec+recon"
    NDA_SPT = "nda+spt"
    STT_SPT = "stt+spt"

    @property
    def uses_recon(self) -> bool:
        return self in (
            SchemeKind.NDA_RECON,
            SchemeKind.STT_RECON,
            SchemeKind.DOM_RECON,
            SchemeKind.INVISPEC_RECON,
        )

    @property
    def base(self) -> "SchemeKind":
        """The underlying secure scheme with the optimizer stripped off."""
        if self in (SchemeKind.NDA_RECON, SchemeKind.NDA_SPT):
            return SchemeKind.NDA
        if self in (SchemeKind.STT_RECON, SchemeKind.STT_SPT):
            return SchemeKind.STT
        if self is SchemeKind.DOM_RECON:
            return SchemeKind.DOM
        if self is SchemeKind.INVISPEC_RECON:
            return SchemeKind.INVISPEC
        return self


class SpeculationModel(enum.Enum):
    """Which instructions cast speculation shadows (paper §3.1, §6.1).

    * ``CONTROL_ONLY`` — the Spectre model: only branches.
    * ``CONTROL_AND_STORE`` — the paper's evaluated model: branches and
      stores (until address resolution).
    * ``FUTURISTIC`` — every load, store, and branch keeps younger
      instructions speculative until it completes (an approximation of
      STT's Futuristic model, where anything that may squash counts).
    """

    CONTROL_ONLY = "control"
    CONTROL_AND_STORE = "control+store"
    FUTURISTIC = "futuristic"


class CacheLevel(enum.IntEnum):
    """Cache levels; integer order matches distance from the core."""

    L1 = 1
    L2 = 2
    LLC = 3
    MEMORY = 4


class MESIState(enum.Enum):
    """Stable states of the directory MESI protocol."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class MemPrediction(enum.Enum):
    """Memory-dependence prediction outcome for a load (Table 1)."""

    MEM = "mem"  # predicted independent: go to the memory hierarchy
    STF = "stf"  # predicted dependent: wait and forward from the store


def line_addr(addr: int) -> int:
    """Return the cache-line base address containing ``addr``."""
    return addr & ~(LINE_BYTES - 1)


def word_index(addr: int) -> int:
    """Return the index of the aligned word within its cache line."""
    return (addr & (LINE_BYTES - 1)) // WORD_BYTES


def word_addr(addr: int) -> int:
    """Return the aligned 8-byte word address containing ``addr``."""
    return addr & ~(WORD_BYTES - 1)
