"""Structured simulator errors.

Lives in :mod:`repro.common` so that both the core pipeline and the
system assembly (which sit on opposite sides of the ``repro.core`` /
``repro.sim`` layering boundary) can raise the same exception types
without creating an import cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["SimulationHangError"]


class SimulationHangError(RuntimeError):
    """The cycle budget was exhausted before every core finished.

    Subclasses :class:`RuntimeError` (and keeps the exact legacy message
    ``"exceeded {max_cycles} cycles; likely hang"``) so existing callers
    that catch or match the bare hang guard keep working, while carrying
    the machine state needed to debug the hang from a failure record:
    the cycle the guard tripped at, each core's ROB-head sequence number
    (``-1`` once a core's ROB drained), each core's outstanding MSHR
    entries, and the shared event-queue depth.
    """

    def __init__(
        self,
        max_cycles: int,
        *,
        cycle: Optional[int] = None,
        rob_head_seqs: Optional[Sequence[int]] = None,
        mshr_outstanding: Optional[Sequence[int]] = None,
        event_queue_depth: Optional[int] = None,
    ) -> None:
        super().__init__(f"exceeded {max_cycles} cycles; likely hang")
        self.max_cycles = max_cycles
        self.cycle = cycle if cycle is not None else max_cycles
        self.rob_head_seqs: List[int] = list(rob_head_seqs or [])
        self.mshr_outstanding: List[int] = list(mshr_outstanding or [])
        self.event_queue_depth = (
            event_queue_depth if event_queue_depth is not None else 0
        )

    def diagnostics(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the hang state (for failure records)."""
        return {
            "max_cycles": self.max_cycles,
            "cycle": self.cycle,
            "rob_head_seqs": list(self.rob_head_seqs),
            "mshr_outstanding": list(self.mshr_outstanding),
            "event_queue_depth": self.event_queue_depth,
        }

    def details(self) -> str:
        """One-line human-readable diagnostic summary."""
        heads = ",".join(str(s) for s in self.rob_head_seqs) or "-"
        mshrs = ",".join(str(m) for m in self.mshr_outstanding) or "-"
        return (
            f"{self} (cycle={self.cycle}, rob_head_seq=[{heads}], "
            f"mshr_outstanding=[{mshrs}], "
            f"event_queue_depth={self.event_queue_depth})"
        )
