"""Simulation statistics.

A :class:`StatSet` is a typed bag of counters that every component of the
simulated system writes into.  Keeping them in one flat structure makes the
reporting layer (and the figure benches) trivial.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["StatSet"]


@dataclasses.dataclass
class StatSet:
    """Counters collected during one simulated run of one core."""

    # --- progress -----------------------------------------------------
    cycles: int = 0
    committed_uops: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    mispredicted_branches: int = 0

    # --- security-scheme activity --------------------------------------
    #: Loads whose destination was tainted at execute (STT family).
    tainted_loads: int = 0
    #: Loads whose issue was delayed by the security scheme.
    delayed_loads: int = 0
    #: Total cycles of issue delay attributed to the security scheme.
    delay_cycles: int = 0
    #: Loads whose broadcast was deferred (NDA family).
    deferred_broadcasts: int = 0
    #: Memory-order violations (load read stale data past an older store).
    mem_order_violations: int = 0

    # --- ReCon ---------------------------------------------------------
    #: Load pairs detected at commit (reveal requests sent to L1).
    load_pairs_detected: int = 0
    #: Reveal requests dropped because of an LPT conflict/miss.
    lpt_conflicts: int = 0
    #: Speculative loads that found their word revealed (defense lifted).
    reveal_hits: int = 0
    #: Speculative loads that found their word concealed.
    reveal_misses: int = 0
    #: Words concealed by performed stores.
    words_concealed: int = 0

    # --- memory hierarchy ----------------------------------------------
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    #: Coherence transactions initiated (GetS/GetM/upgrades/writebacks).
    coherence_transactions: int = 0
    invalidations: int = 0
    #: Reveal bit-vectors merged (OR-ed) into the directory.
    bitvector_merges: int = 0
    #: Store-to-load forwards from SQ/SB.
    store_forwards: int = 0

    # --- transaction engine (packet/port/MSHR contention) ---------------
    #: Secondary misses merged into an outstanding MSHR entry.
    mshr_hits_under_miss: int = 0
    #: Cycles primary misses waited for a free MSHR entry.
    mshr_stall_cycles: int = 0
    #: Cycles request packets waited for a master-port grant.
    port_stall_cycles: int = 0
    #: Cycles interconnect messages queued for a link slot.
    noc_queue_cycles: int = 0
    #: Cycles DRAM fetches waited in the bounded channel queue.
    dram_queue_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Committed micro-ops per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_uops / self.cycles

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict (floats excluded)."""
        return dataclasses.asdict(self)

    def snapshot(self) -> "StatSet":
        """A copy of the current counter values."""
        return dataclasses.replace(self)

    def delta(self, baseline: "StatSet") -> "StatSet":
        """Counters accumulated since ``baseline`` (a prior snapshot).

        Used to exclude warm-up from measurements: ``cycles`` subtracts
        like every other counter.
        """
        result = StatSet()
        for field in dataclasses.fields(self):
            setattr(
                result,
                field.name,
                getattr(self, field.name) - getattr(baseline, field.name),
            )
        return result

    def merge(self, other: "StatSet") -> None:
        """Accumulate ``other`` into this set (cycles take the max).

        Used to aggregate per-core stats of a multicore run: counters add
        up, while ``cycles`` becomes the parallel execution time.
        """
        for field in dataclasses.fields(self):
            if field.name == "cycles":
                self.cycles = max(self.cycles, other.cycles)
            else:
                setattr(
                    self,
                    field.name,
                    getattr(self, field.name) + getattr(other, field.name),
                )
