"""Shared discrete-event queue for cores and the memory system.

One :class:`EventQueue` is shared by every core of a :class:`System`
(and by the hierarchy's packet completions), replacing the per-core
``{cycle: [events]}`` dicts of the lockstep era.  Events are
``(cycle, callback)`` pairs; insertion order breaks ties, so two events
scheduled for the same cycle fire in the order they were scheduled —
which preserves the legacy per-core processing order exactly.

``service(cycle)`` fires *every* event due at or before ``cycle`` and is
idempotent, so any core's step may drain the queue on behalf of all of
them: callbacks are bound methods that only touch their own core's
state.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of ``(cycle, seq, callback)`` events."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Callable[[int], None]]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, cycle: int, callback: Callable[[int], None]) -> None:
        """Fire ``callback(cycle)`` when the clock reaches ``cycle``."""
        heapq.heappush(self._heap, (cycle, next(self._seq), callback))

    def service(self, cycle: int) -> bool:
        """Fire every event due at or before ``cycle``; True if any fired."""
        fired = False
        while self._heap and self._heap[0][0] <= cycle:
            _, _, callback = heapq.heappop(self._heap)
            callback(cycle)
            fired = True
        return fired

    def next_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event (None when empty)."""
        if not self._heap:
            return None
        return self._heap[0][0]
