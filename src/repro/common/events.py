"""Shared discrete-event queue for cores and the memory system.

One :class:`EventQueue` is shared by every core of a :class:`System`
(and by the hierarchy's packet completions), replacing the per-core
``{cycle: [events]}`` dicts of the lockstep era.  Events are
``(cycle, seq, callback, arg)`` entries; insertion order breaks ties, so
two events scheduled for the same cycle fire in the order they were
scheduled — which preserves the legacy per-core processing order
exactly.

``service(cycle)`` fires *every* event due at or before ``cycle`` and is
idempotent, so any core's step may drain the queue on behalf of all of
them: callbacks are bound methods that only touch their own core's
state.

Two scheduling forms coexist:

* :meth:`schedule` — the legacy closure form ``callback(now)``; kept for
  the reference pipeline and external callers.
* :meth:`push` — the hot-path form ``fn(arg, due)``: no lambda is
  allocated per event, the payload rides the heap entry itself, and the
  callee receives the cycle the event was scheduled for.  The run loops
  never tick past a due event, so the due cycle and the service cycle
  are always equal — the two forms are observably identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["EventQueue"]

#: Distinguishes legacy closure events (no payload) from push() events.
_NO_ARG = object()


class EventQueue:
    """Min-heap of ``(cycle, seq, callback, arg)`` events."""

    __slots__ = ("_heap", "_seq", "epoch")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Callable, Any]] = []
        self._seq = 0
        #: Simulation-state generation counter.  Bumped whenever state
        #: that could unblock a stalled instruction changes (events
        #: firing here; commits, drains, frontier moves, and cache
        #: fills at their sites).  A core that cached a "blocked"
        #: verdict may skip re-evaluating it while the epoch is
        #: unchanged.  Shared queue, shared epoch: one core's activity
        #: can unblock another core's load through the hierarchy.
        self.epoch = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, cycle: int, callback: Callable[[int], None]) -> None:
        """Fire ``callback(cycle)`` when the clock reaches ``cycle``."""
        self._seq += 1
        heappush(self._heap, (cycle, self._seq, callback, _NO_ARG))

    def push(self, cycle: int, fn: Callable, arg: Any) -> None:
        """Fire ``fn(arg, cycle)`` when the clock reaches ``cycle``.

        The closure-free fast form: the payload rides the heap entry, so
        scheduling allocates nothing beyond the tuple itself.
        """
        self._seq += 1
        heappush(self._heap, (cycle, self._seq, fn, arg))

    def service(self, cycle: int) -> bool:
        """Fire every event due at or before ``cycle``; True if any fired."""
        heap = self._heap
        if not heap or heap[0][0] > cycle:
            return False
        self.epoch += 1
        while heap and heap[0][0] <= cycle:
            due, _, callback, arg = heappop(heap)
            if arg is _NO_ARG:
                callback(cycle)
            else:
                callback(arg, due)
        return True

    def next_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event (None when empty)."""
        if not self._heap:
            return None
        return self._heap[0][0]
