"""Configuration dataclasses for the simulated system.

Defaults mirror Table 2 of the paper (the gem5 configuration used by the
authors), scaled only where a parameter is meaningless in a trace-driven
model (e.g. physical memory size).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.common.types import CacheLevel, LINE_BYTES, SpeculationModel

__all__ = [
    "CoreParams",
    "CacheParams",
    "MemoryParams",
    "MemoryTimingParams",
    "SystemParams",
]


@dataclasses.dataclass(frozen=True)
class CoreParams:
    """Out-of-order core resources (Table 2, 'Processor')."""

    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    iq_entries: int = 160
    rob_entries: int = 352
    lq_entries: int = 128
    sq_entries: int = 72
    #: Physical integer registers available for renaming.  Table 2 does not
    #: name this; the paper's LPT discussion (section 6.6) cites ~180-224 for
    #: contemporary cores, and 6.6/Fig. 11 sweeps the LPT below this.
    phys_regs: int = 224
    #: Number of architectural integer registers in the trace ISA.
    arch_regs: int = 32
    #: Cycles from branch execution to redirected fetch on a mispredict.
    mispredict_penalty: int = 12
    #: Default execution latencies per op class.
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    fp_latency: int = 4
    branch_latency: int = 1
    #: Store-buffer drain rate (performed stores per cycle).
    sb_drain_per_cycle: int = 1

    def validate(self) -> None:
        """Raise ValueError on inconsistent core resources."""
        if self.decode_width <= 0 or self.issue_width <= 0 or self.commit_width <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.phys_regs <= self.arch_regs:
            raise ValueError(
                "need more physical than architectural registers for renaming"
            )
        if self.rob_entries <= 0 or self.iq_entries <= 0:
            raise ValueError("window resources must be positive")
        if self.lq_entries <= 0 or self.sq_entries <= 0:
            raise ValueError("load/store queues must be positive")


@dataclasses.dataclass(frozen=True)
class CacheParams:
    """One cache level (size/associativity/latency)."""

    size_bytes: int
    ways: int
    latency: int  # round-trip data latency in cycles (Table 2)
    line_bytes: int = LINE_BYTES

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.ways)

    def validate(self) -> None:
        """Raise ValueError on an impossible cache geometry."""
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        if self.ways <= 0 or self.num_lines < self.ways:
            raise ValueError("invalid associativity")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")


@dataclasses.dataclass(frozen=True)
class MemoryTimingParams:
    """Contention knobs of the packet/port transaction engine.

    Every knob defaults to ``None`` (unbounded), which is the
    *contention-free* configuration: the transaction engine then
    reproduces the legacy atomic latency-summing model access-for-access
    (enforced by the golden parity suite).  Bounding any knob introduces
    queueing delay where real hardware serializes:

    * ``mshr_entries`` — outstanding misses per core; a primary miss
      with no free MSHR stalls until the oldest outstanding fill lands.
    * ``port_width`` — request packets a core's master port accepts per
      cycle; excess packets start on later cycles.
    * ``noc_link_width`` — interconnect messages injected per cycle
      before hops queue.
    * ``dram_queue_depth`` — outstanding DRAM reads; a fetch beyond the
      depth waits for the earliest in-flight read to complete.
    """

    mshr_entries: Optional[int] = None
    port_width: Optional[int] = None
    noc_link_width: Optional[int] = None
    dram_queue_depth: Optional[int] = None

    @property
    def contention_free(self) -> bool:
        """True when no knob can ever add queueing delay."""
        return (
            self.mshr_entries is None
            and self.port_width is None
            and self.noc_link_width is None
            and self.dram_queue_depth is None
        )

    def validate(self) -> None:
        """Raise ValueError on a meaningless bound."""
        for name in (
            "mshr_entries",
            "port_width",
            "noc_link_width",
            "dram_queue_depth",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")


@dataclasses.dataclass(frozen=True)
class MemoryParams:
    """Cache hierarchy + DRAM (Table 2, 'Memory').

    The default capacities are Table 2's divided by 16 so that the synthetic
    working sets (which are far smaller than SPEC's) see comparable pressure:
    L1 64 lines, L2 2048 lines, LLC 16384 lines.  Latencies are Table 2's
    verbatim.
    """

    l1: CacheParams = CacheParams(size_bytes=64 * 1024 // 16, ways=8, latency=2)
    l2: CacheParams = CacheParams(size_bytes=2 * 1024 * 1024 // 16, ways=16, latency=6)
    llc: CacheParams = CacheParams(
        size_bytes=16 * 1024 * 1024 // 16, ways=32, latency=16
    )
    dram_latency: int = 150
    #: Extra latency applied to each directory/coherence hop (GARNET stand-in).
    noc_hop_latency: int = 4
    #: Interconnect topology: "crossbar" (constant hop latency) or "mesh"
    #: (2D mesh, XY routing, distance-dependent latency).
    topology: str = "crossbar"
    mesh_rows: int = 2
    mesh_cols: int = 2
    #: Next-line prefetcher: an L2 miss also pulls the following line into
    #: the L2 (off the critical path).  Prefetched lines carry the
    #: directory's reveal vector like any other fill, so ReCon state
    #: arrives with the prefetch.
    prefetch_next_line: bool = False
    #: Contention model of the transaction engine (MSHR count, port
    #: widths, DRAM queue depth).  The default is contention-free.
    timing: MemoryTimingParams = MemoryTimingParams()

    def level(self, level: CacheLevel) -> CacheParams:
        """Parameters of one cache level."""
        if level is CacheLevel.L1:
            return self.l1
        if level is CacheLevel.L2:
            return self.l2
        if level is CacheLevel.LLC:
            return self.llc
        raise ValueError(f"no cache parameters for {level}")

    def validate(self) -> None:
        """Raise ValueError on inconsistent hierarchy parameters."""
        for cache in (self.l1, self.l2, self.llc):
            cache.validate()
        if not (self.l1.size_bytes <= self.l2.size_bytes <= self.llc.size_bytes):
            raise ValueError("cache capacities must be non-decreasing with level")
        if self.topology not in ("crossbar", "mesh"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "mesh" and (self.mesh_rows <= 0 or self.mesh_cols <= 0):
            raise ValueError("mesh dimensions must be positive")
        self.timing.validate()


@dataclasses.dataclass(frozen=True)
class SystemParams:
    """Whole-system configuration."""

    core: CoreParams = CoreParams()
    memory: MemoryParams = MemoryParams()
    num_cores: int = 1
    #: Cache levels at which reveal bits are *visible to the core* (Fig. 10).
    #: ``None`` means every level (the default ReCon design).
    recon_levels: Optional[Tuple[CacheLevel, ...]] = None
    #: Load-pair table entries; ``None`` sizes it to ``core.phys_regs``.
    lpt_entries: Optional[int] = None
    #: Enable the store-set-lite memory dependence predictor.
    memory_dependence_speculation: bool = True
    #: Which instructions cast speculation shadows (paper §3.1).
    speculation_model: SpeculationModel = SpeculationModel.CONTROL_AND_STORE
    #: Footnote 1 of the paper: on an invalidation, OR the invalidated
    #: reader's private reveal vector into the writer's copy instead of
    #: dropping it.  Safe (the writer conceals exactly the words it
    #: writes) but requires carrying the vector on invalidation acks.
    preserve_invalidated_reveals: bool = False
    #: How many source operands of a load the LPT checks at commit.
    #: The paper evaluates 1 (a single direct dependence, §5.1.1) and
    #: leaves multi-source operations as future work.
    lpt_sources: int = 1

    def validate(self) -> None:
        """Raise ValueError on an inconsistent system configuration."""
        self.core.validate()
        self.memory.validate()
        if self.num_cores <= 0:
            raise ValueError("need at least one core")
        if self.lpt_entries is not None and self.lpt_entries <= 0:
            raise ValueError("LPT must have at least one entry")
        if self.lpt_sources <= 0:
            raise ValueError("the LPT must check at least one source operand")
        if self.recon_levels is not None:
            for level in self.recon_levels:
                if level is CacheLevel.MEMORY:
                    raise ValueError("reveal bits are not stored in DRAM")

    def recon_visible_at(self, level: CacheLevel) -> bool:
        """True if a reveal bit served from ``level`` may lift defenses."""
        if self.recon_levels is None:
            return level is not CacheLevel.MEMORY
        return level in self.recon_levels

    @property
    def effective_lpt_entries(self) -> int:
        if self.lpt_entries is None:
            return self.core.phys_regs
        return self.lpt_entries
