"""Shared vocabulary: types, parameters, and statistics."""

from repro.common.errors import SimulationHangError
from repro.common.events import EventQueue
from repro.common.params import (
    CacheParams,
    CoreParams,
    MemoryParams,
    MemoryTimingParams,
    SystemParams,
)
from repro.common.stats import StatSet
from repro.common.types import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    CacheLevel,
    MemPrediction,
    MESIState,
    OpClass,
    SchemeKind,
    SpeculationModel,
    line_addr,
    word_addr,
    word_index,
)

__all__ = [
    "CacheLevel",
    "CacheParams",
    "CoreParams",
    "EventQueue",
    "LINE_BYTES",
    "MESIState",
    "MemPrediction",
    "MemoryParams",
    "MemoryTimingParams",
    "OpClass",
    "SchemeKind",
    "SimulationHangError",
    "SpeculationModel",
    "StatSet",
    "SystemParams",
    "WORD_BYTES",
    "WORDS_PER_LINE",
    "line_addr",
    "word_addr",
    "word_index",
]
