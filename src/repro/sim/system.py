"""System assembly: cores + shared memory hierarchy under one scheme."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.analysis.timeline import TimelineSink
from repro.common.errors import SimulationHangError
from repro.common.params import SystemParams
from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.core.hotpath import core_class
from repro.core.pipeline import Core
from repro.isa.microop import MicroOp
from repro.memory.hierarchy import MemoryHierarchy
from repro.security import make_policy
from repro.sim.events import EventQueue
from repro.telemetry.events import (
    NULL_TELEMETRY,
    TelemetryCollector,
    TelemetryConfig,
    TelemetryResult,
)

__all__ = ["System", "SystemResult"]


@dataclasses.dataclass
class SystemResult:
    """Outcome of one system run."""

    scheme: SchemeKind
    cycles: int
    per_core: List[StatSet]
    #: Collected telemetry (``None`` when tracing was disabled).
    telemetry: Optional[TelemetryResult] = None

    @property
    def aggregate(self) -> StatSet:
        total = StatSet()
        for stats in self.per_core:
            total.merge(stats)
        total.cycles = self.cycles
        return total

    @property
    def ipc(self) -> float:
        """Total committed micro-ops over parallel execution time."""
        if self.cycles == 0:
            return 0.0
        return sum(s.committed_uops for s in self.per_core) / self.cycles


class System:
    """One or more cores sharing a coherent memory hierarchy."""

    def __init__(
        self,
        params: SystemParams,
        traces: Sequence[Sequence[MicroOp]],
        scheme: SchemeKind,
        warmup_uops: int = 0,
        telemetry: Optional[TelemetryConfig] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        measure_uops: Optional[int] = None,
    ) -> None:
        if len(traces) > params.num_cores:
            params = dataclasses.replace(params, num_cores=len(traces))
        params.validate()
        self.params = params
        self.scheme = scheme
        if hierarchy is not None:
            # A pre-warmed hierarchy (sampled simulation restores one
            # from a warm image) must already be sized for this system.
            if hierarchy.params.num_cores != params.num_cores:
                raise ValueError(
                    "injected hierarchy has %d cores, system needs %d"
                    % (hierarchy.params.num_cores, params.num_cores)
                )
            self.hierarchy = hierarchy
        else:
            self.hierarchy = MemoryHierarchy(params)
        #: One event queue shared by every core and the memory system:
        #: pipeline completions and packet callbacks all fire from here.
        self.events = EventQueue()
        self.telemetry: Optional[TelemetryCollector] = None
        if telemetry is not None:
            self.telemetry = TelemetryCollector(telemetry)
            if telemetry.timeline_interval is not None:
                self.telemetry.add_sink(
                    TimelineSink(interval=telemetry.timeline_interval)
                )
        collector = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        # Traced runs use the reference loop (FastCore carries no
        # telemetry instrumentation); untraced runs take the selected
        # hot-path backend (REPRO_HOTPATH, default the fast path).
        core_cls = Core if self.telemetry is not None else core_class()
        self.cores: List[Core] = []
        for core_id, trace in enumerate(traces):
            stats = StatSet()
            policy = make_policy(scheme, stats)
            self.cores.append(
                core_cls(
                    core_id,
                    params,
                    list(trace),
                    self.hierarchy,
                    policy,
                    stats,
                    warmup_uops=warmup_uops,
                    telemetry=collector,
                    events=self.events,
                    measure_uops=measure_uops,
                )
            )

    def _result(self, cycles: int, measured: List[StatSet]) -> SystemResult:
        """Assemble the result, finalizing telemetry against the stats."""
        result = SystemResult(self.scheme, cycles, measured)
        if self.telemetry is not None:
            result.telemetry = self.telemetry.finalize(result.aggregate)
        return result

    def run(self, max_cycles: int = 50_000_000) -> SystemResult:
        """Run all cores to completion over the shared event queue.

        The single-core fast path delegates to :meth:`Core.run`, which
        raises the same :class:`~repro.common.errors.SimulationHangError`
        (a ``RuntimeError`` subclass — same message, same cycle budget)
        as the multicore loop when the hang guard trips.  The error
        carries hang diagnostics (current cycle, per-core ROB-head
        sequence numbers, outstanding MSHR entries, event-queue depth)
        so a supervised run's failure record is debuggable.
        """
        if len(self.cores) == 1:
            core = self.cores[0]
            core.run(max_cycles=max_cycles)
            measured = core.measured
            return self._result(measured.cycles, [measured])
        cycle = 0
        while True:
            pending = [core for core in self.cores if not core.done]
            if not pending:
                break
            if cycle >= max_cycles:
                raise SimulationHangError(
                    max_cycles,
                    cycle=cycle,
                    rob_head_seqs=[core.rob_head_seq for core in self.cores],
                    mshr_outstanding=[
                        core.mshr_outstanding(cycle) for core in self.cores
                    ],
                    event_queue_depth=len(self.events),
                )
            active = False
            for core in pending:
                active |= core.step(cycle)
            if active:
                cycle += 1
            else:
                cycle = min(core.next_wake(cycle) for core in pending)
        measured = [core.measured for core in self.cores]
        end = max(stats.cycles for stats in measured)
        return self._result(end, measured)
