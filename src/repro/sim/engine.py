"""Parallel experiment execution engine.

Fans independent ``(profile, scheme, seed, params)`` runs out across a
pluggable :class:`~repro.sim.backends.ExecutionBackend`: workers
receive a compact, picklable :class:`RunSpec` (traces are *not*
shipped — they are rebuilt deterministically from the profile's seed
inside the worker, where the per-process trace cache amortizes them
across schemes), and send back a plain
:class:`~repro.sim.runner.RunResult`.

Layered under the engine is the persistent result store
(:mod:`repro.sim.store`): before a spec is executed its content hash is
looked up, and completed runs are written back, so repeated invocations
of the same grid are served from disk and interrupted sweeps resume
where they stopped.

The worker count comes from the ``jobs`` argument, falling back to the
``REPRO_JOBS`` environment variable, falling back to 1 (``jobs == 0``
means "all cores"; negative counts are rejected).  The execution
substrate comes from the ``backend`` argument, falling back to the
``REPRO_BACKEND`` environment variable, falling back to the historical
default: ``jobs=1`` executes inline in the calling process — no pool,
identical results, and the engine clears its trace cache between grid
cells so long sweeps stay within memory budget — while ``jobs > 1``
uses the process-pool backend.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.params import SystemParams
from repro.common.types import SchemeKind
from repro.sampling.config import SamplingConfig
from repro.sim.chaos import ChaosConfig
from repro.sim.config import RunConfig
from repro.sim.runner import RunResult, TraceCache, run_benchmark
from repro.sim.store import ResultStore, result_from_dict, result_to_dict, run_key
from repro.telemetry.events import TelemetryConfig
from repro.workloads.profile import BenchmarkProfile

__all__ = [
    "JOBS_ENV",
    "RunRecord",
    "RunSpec",
    "SuiteResult",
    "execute_specs",
    "resolve_jobs",
    "run_grid",
]

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: argument, else ``REPRO_JOBS``, else 1.

    ``0`` explicitly means "all cores" (``os.cpu_count()``); negative
    counts are a :class:`ValueError` — they used to be silently coerced
    to all cores, which hid typos like ``--jobs -4``.
    """
    if jobs is None:
        value = os.environ.get(JOBS_ENV)
        if value:
            try:
                jobs = int(value)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {value!r}"
                ) from None
        else:
            jobs = 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    elif jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 means all cores), got {jobs}"
        )
    return jobs


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """Everything a worker needs to (re)produce one run.

    All defaults are resolved at construction (:meth:`build`), so a
    spec's fields — not the calling context — fully determine the
    result.  That is what makes the result-store content hash sound.
    """

    profile: BenchmarkProfile
    scheme: SchemeKind
    length: int
    threads: int
    params: SystemParams
    warmup_uops: int
    #: Telemetry configuration (``None`` = tracing off).  Deliberately
    #: excluded from :meth:`key`: telemetry observes a run without
    #: changing its outcome, but a stored result carries no event trace,
    #: so telemetry-enabled specs bypass the store (see execute_specs).
    telemetry: Optional[TelemetryConfig] = None
    #: Fault-injection plan (``None`` = no chaos).  Also excluded from
    #: :meth:`key` — chaos perturbs *execution*, never the simulated
    #: outcome — but chaos specs bypass the result store entirely so a
    #: fault-injection sweep cannot mask or pollute real results.
    chaos: Optional[ChaosConfig] = None
    #: Statistical-sampling configuration (``None`` = exact detailed
    #: simulation).  Unlike telemetry/chaos, sampling changes the
    #: produced numbers, so it *does* join :meth:`key` — but only when
    #: set, keeping exact-mode store keys byte-identical to before.
    sampling: Optional[SamplingConfig] = None

    @classmethod
    def build(
        cls,
        profile: BenchmarkProfile,
        scheme: SchemeKind,
        length: int,
        config: RunConfig,
    ) -> "RunSpec":
        """A spec with ``config``'s defaults resolved to concrete values."""
        return cls(
            profile=profile,
            scheme=scheme,
            length=length,
            threads=config.threads,
            params=config.resolved_params(),
            warmup_uops=config.resolved_warmup(length),
            telemetry=config.telemetry,
            chaos=config.chaos,
            sampling=config.sampling,
        )

    @property
    def trace_key(self) -> Tuple[str, int, int, int]:
        """Grid-cell identity: specs sharing it run on identical traces."""
        return (self.profile.label, self.profile.seed, self.threads, self.length)

    def key(self) -> str:
        """Result-store content hash of this spec."""
        return run_key(
            self.profile,
            self.scheme,
            self.length,
            self.threads,
            self.params,
            self.warmup_uops,
            sampling=self.sampling,
        )


@dataclasses.dataclass
class RunRecord:
    """Per-run observability: where a result came from and what it cost."""

    bench: str
    scheme: SchemeKind
    seed: int
    wall_time_s: float
    uops_per_sec: float
    from_store: bool
    #: True when the run's numbers are statistical estimates (sampled
    #: mode); exact runs keep the default so old record JSON round-trips.
    estimated: bool = False
    #: Measurement units behind a sampled estimate (``None`` if exact).
    samples: Optional[int] = None
    #: Absolute CI half-width of a sampled IPC estimate (``None`` exact).
    ipc_ci: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (scheme as its string value).

        Exact-run records omit the sampling fields entirely, so suite
        JSON written by exact sweeps is byte-identical to pre-sampling
        output.
        """
        data = dataclasses.asdict(self)
        data["scheme"] = self.scheme.value
        if not self.estimated:
            del data["estimated"]
            del data["samples"]
            del data["ipc_ci"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`as_dict` output."""
        data = dict(data)
        data["scheme"] = SchemeKind(data["scheme"])
        return cls(**data)


def _execute_spec(spec: RunSpec, cache: Optional[TraceCache] = None) -> RunResult:
    """Run one spec (in a worker this uses the per-process trace cache)."""
    from repro.sim.backends import base as _backend_base

    return _backend_base.execute_run(spec, cache=cache)


def _timed_execute(spec: RunSpec) -> Tuple[RunResult, float]:
    """Worker entry point: run a spec and measure its wall time."""
    start = time.perf_counter()
    result = _execute_spec(spec)
    return result, time.perf_counter() - start


def _record(spec: RunSpec, result: RunResult, wall: float, from_store: bool) -> RunRecord:
    rate = result.stats.committed_uops / wall if wall > 0 else 0.0
    sampling = getattr(result, "sampling", None)
    return RunRecord(
        bench=spec.profile.name,
        scheme=spec.scheme,
        seed=spec.profile.seed,
        wall_time_s=wall,
        uops_per_sec=rate,
        from_store=from_store,
        estimated=sampling is not None,
        samples=sampling.samples if sampling is not None else None,
        ipc_ci=sampling.ipc_ci if sampling is not None else None,
    )


def _progress_line(done: int, total: int, record: RunRecord) -> str:
    label = f"[{done}/{total}] {record.bench} {record.scheme.value}"
    if record.from_store:
        return f"{label}  (store)"
    return (
        f"{label}  {record.wall_time_s:.2f}s"
        f"  {record.uops_per_sec / 1000:.0f}k uops/s"
    )


def execute_specs(
    specs: Sequence[RunSpec],
    *,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: bool = False,
    backend: Optional[Any] = None,
    observer: Optional[Any] = None,
) -> Tuple[List[RunResult], List[RunRecord]]:
    """Execute ``specs``, returning results and records in spec order.

    Specs already present in ``store`` are served from disk; the rest
    run on the selected execution backend (``backend`` — a name or an
    :class:`~repro.sim.backends.ExecutionBackend` instance — else the
    ``REPRO_BACKEND`` env var, else inline for ``jobs=1`` / a process
    pool above), and are written back to the store as they complete —
    so an interrupted sweep resumes where it stopped.

    This is the *fail-fast* path: the first failing run raises (a
    :class:`~repro.sim.backends.TaskFailedError` carrying the worker's
    structured error).  ``observer``, when given, is called with each
    :class:`RunRecord` as it settles (the service layer streams these).
    A ``KeyboardInterrupt`` tears the backend down without waiting but
    every record already settled has hit the store, so the sweep
    resumes from disk.
    """
    jobs = resolve_jobs(jobs)
    total = len(specs)
    results: List[Optional[RunResult]] = [None] * total
    records: List[Optional[RunRecord]] = [None] * total
    done = 0

    def emit(record: RunRecord) -> None:
        if progress:
            print(_progress_line(done, total, record), file=sys.stderr)
        if observer is not None:
            observer(record)

    pending: List[int] = []
    keys: List[Optional[str]] = [None] * total
    for index, spec in enumerate(specs):
        if store is not None and spec.telemetry is None:
            keys[index] = spec.key()
            cached = store.get(keys[index])
            if cached is not None:
                results[index] = cached
                records[index] = _record(spec, cached, 0.0, from_store=True)
                done += 1
                emit(records[index])
                continue
        pending.append(index)

    def finish(index: int, result: RunResult, wall: float) -> None:
        nonlocal done
        if store is not None and keys[index] is not None:
            store.put(keys[index], result)
        results[index] = result
        records[index] = _record(specs[index], result, wall, from_store=False)
        done += 1
        emit(records[index])

    explicit_backend = backend is not None or bool(
        os.environ.get("REPRO_BACKEND")
    )
    if pending and jobs == 1 and not explicit_backend:
        # The historical deterministic fast path: no backend object, no
        # envelope — original exceptions propagate unchanged.
        cache = config.cache if config is not None else None
        own_cache = cache is None
        if own_cache:
            cache = TraceCache()
        current_cell: Optional[Tuple[str, int, int, int]] = None
        for index in pending:
            spec = specs[index]
            if own_cache and current_cell not in (None, spec.trace_key):
                cache.clear()
            current_cell = spec.trace_key
            start = time.perf_counter()
            result = _execute_spec(spec, cache=cache)
            finish(index, result, time.perf_counter() - start)
    elif pending:
        from repro.sim.backends import TaskFailedError, parse_envelope, resolve_backend

        backend_obj, owned = resolve_backend(
            backend, jobs=jobs, workers=min(jobs, len(pending))
        )
        try:
            backend_obj.start()
            handles = {
                backend_obj.submit(specs[index]): index for index in pending
            }
            while handles:
                for handle in backend_obj.poll():
                    index = handles.pop(handle)
                    # Fail fast: WorkerDeath/TaskTimeout raise here.
                    payload = parse_envelope(handle.outcome())
                    if payload[0] == "ok":
                        _, result, wall, _pid = payload
                        finish(index, result, wall)
                        continue
                    _, etype, message, tb, _diag, _wall, _pid = payload
                    raise TaskFailedError(etype, message, tb)
        except BaseException:
            # Settled records have already hit the store; tear the
            # backend down without waiting so Ctrl-C returns promptly
            # and the sweep stays resumable from disk.
            if owned:
                backend_obj.shutdown(wait=False)
            raise
        else:
            if owned:
                backend_obj.shutdown()

    return list(results), list(records)  # type: ignore[arg-type]


class SuiteResult(Mapping):
    """Results of a benchmarks x schemes grid, plus run observability.

    Behaves as a read-only mapping from ``(benchmark, scheme)`` to
    :class:`~repro.sim.runner.RunResult` (so the reporting helpers and
    any pre-existing consumers keep working), and additionally exposes
    :meth:`get` by (bench, scheme), :meth:`normalized_ipc`, JSON
    round-tripping, and the engine's per-run records and store counters.

    Under supervision (:mod:`repro.sim.supervisor`) a cell may fail
    permanently instead of producing a result; such cells are *absent*
    from the mapping and listed in :attr:`failures` as
    :class:`~repro.sim.supervisor.RunFailure` records, and the
    supervisor's fault counters ride on :attr:`fault_counters`.  Use
    :attr:`ok` to tell a complete suite from a degraded one.
    """

    def __init__(
        self,
        results: Dict[Tuple[str, SchemeKind], RunResult],
        records: Optional[List[RunRecord]] = None,
        wall_time_s: float = 0.0,
        failures: Optional[List[Any]] = None,
        fault_counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self._results = dict(results)
        self.records = [r for r in (records or []) if r is not None]
        self.wall_time_s = wall_time_s
        #: RunFailure records for cells that exhausted their retries.
        self.failures = list(failures or [])
        #: Snapshot of the supervisor's ``fault_*`` counters (empty for
        #: unsupervised runs).
        self.fault_counters = dict(fault_counters or {})

    # --- mapping protocol ------------------------------------------------
    def __getitem__(self, key: Tuple[str, SchemeKind]) -> RunResult:
        return self._results[key]

    def __iter__(self) -> Iterator[Tuple[str, SchemeKind]]:
        return iter(self._results)

    def __len__(self) -> int:
        return len(self._results)

    # --- grid access -----------------------------------------------------
    def get(self, bench, scheme=None, default=None):
        """``get(bench, scheme)`` for one cell; 1-arg form is dict-style."""
        key = bench if scheme is None else (bench, scheme)
        return self._results.get(key, default)

    @property
    def benches(self) -> List[str]:
        """Benchmark names in first-seen (grid) order."""
        seen: Dict[str, None] = {}
        for name, _ in self._results:
            seen.setdefault(name)
        return list(seen)

    @property
    def schemes(self) -> List[SchemeKind]:
        """Schemes in first-seen (grid) order."""
        seen: Dict[SchemeKind, None] = {}
        for _, scheme in self._results:
            seen.setdefault(scheme)
        return list(seen)

    def normalized_ipc(
        self, base: SchemeKind = SchemeKind.UNSAFE
    ) -> Dict[Tuple[str, SchemeKind], float]:
        """Every cell's IPC relative to its benchmark's ``base`` run."""
        normalized: Dict[Tuple[str, SchemeKind], float] = {}
        for (name, scheme), result in self._results.items():
            base_result = self._results.get((name, base))
            if base_result is None or base_result.ipc == 0:
                normalized[(name, scheme)] = 0.0
            else:
                normalized[(name, scheme)] = result.ipc / base_result.ipc
        return normalized

    # --- observability ---------------------------------------------------
    @property
    def store_hits(self) -> int:
        return sum(1 for r in self.records if r.from_store)

    @property
    def store_misses(self) -> int:
        return sum(1 for r in self.records if not r.from_store)

    @property
    def ok(self) -> bool:
        """True when every requested cell produced a result."""
        return not self.failures

    def summary(self) -> str:
        """One-line run summary (runs, failures, store hits, wall time)."""
        total = (len(self.records) + len(self.failures)) or len(self._results)
        simulated = self.store_misses if self.records else total
        parts = [f"{total} runs", f"store hits {self.store_hits}/{total}"]
        if self.failures:
            parts.append(f"FAILED {len(self.failures)}/{total}")
        if simulated:
            uops = sum(
                r.uops_per_sec * r.wall_time_s
                for r in self.records
                if not r.from_store
            )
            sim_wall = sum(
                r.wall_time_s for r in self.records if not r.from_store
            )
            if sim_wall > 0:
                parts.append(f"{uops / sim_wall / 1000:.0f}k uops/s")
        parts.append(f"wall {self.wall_time_s:.2f}s")
        return "  ".join(parts)

    # --- composition -----------------------------------------------------
    @classmethod
    def merged(cls, parts: Iterable["SuiteResult"]) -> "SuiteResult":
        """Fold per-cell (or per-chunk) suite results into one grid.

        The sweep service runs each suite cell-by-cell so cells from
        different jobs can interleave fairly; this reassembles the
        per-cell :class:`SuiteResult` parts into the single grid an
        uninterrupted :func:`~repro.api.run_suite` call would have
        produced.  Mapping cells merge in order (later parts win on
        duplicate keys, as in the engine), records and failures
        concatenate, wall times and fault counters sum.
        """
        results: Dict[Tuple[str, SchemeKind], RunResult] = {}
        records: List[RunRecord] = []
        failures: List[Any] = []
        fault_counters: Dict[str, int] = {}
        wall = 0.0
        for part in parts:
            results.update(part._results)
            records.extend(part.records)
            failures.extend(part.failures)
            wall += part.wall_time_s
            for name, value in part.fault_counters.items():
                fault_counters[name] = fault_counters.get(name, 0) + value
        return cls(
            results,
            records,
            wall_time_s=wall,
            failures=failures,
            fault_counters=fault_counters,
        )

    # --- serialization ---------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize results, records, and failures to a JSON string."""
        payload: Dict[str, Any] = {
            "version": 1,
            "wall_time_s": self.wall_time_s,
            "records": [record.as_dict() for record in self.records],
            "results": [
                {
                    "bench": name,
                    "scheme": scheme.value,
                    "run": result_to_dict(result),
                }
                for (name, scheme), result in self._results.items()
            ],
        }
        if self.failures:
            payload["failures"] = [f.as_dict() for f in self.failures]
        if self.fault_counters:
            payload["fault_counters"] = dict(self.fault_counters)
        return json.dumps(payload, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SuiteResult":
        payload = json.loads(text)
        results = {
            (cell["bench"], SchemeKind(cell["scheme"])): result_from_dict(
                cell["run"]
            )
            for cell in payload["results"]
        }
        records = [RunRecord.from_dict(r) for r in payload.get("records", [])]
        failures: List[Any] = []
        if payload.get("failures"):
            from repro.sim.supervisor import RunFailure

            failures = [
                RunFailure.from_dict(f) for f in payload["failures"]
            ]
        return cls(
            results,
            records,
            wall_time_s=payload.get("wall_time_s", 0.0),
            failures=failures,
            fault_counters=dict(payload.get("fault_counters", {})),
        )

    def save(self, path: Path) -> Path:
        """Write the JSON form under ``path`` atomically.

        The payload lands in a sibling temp file first and is renamed
        into place, so a crash mid-save never leaves a truncated suite
        artifact where a resumable one used to be.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.to_json(indent=2)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: Path) -> "SuiteResult":
        return cls.from_json(Path(path).read_text())


def run_grid(
    profiles: Iterable[BenchmarkProfile],
    schemes: Sequence[SchemeKind],
    length: int,
    *,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    progress: bool = False,
    policy: Optional[Any] = None,
    journal: Optional[Any] = None,
    resume: bool = False,
    backend: Optional[Any] = None,
    observer: Optional[Any] = None,
) -> SuiteResult:
    """Run a benchmarks x schemes grid through the engine.

    With ``policy`` (a :class:`~repro.sim.supervisor.FaultPolicy`),
    ``journal`` (a :class:`~repro.sim.supervisor.SuiteJournal`),
    ``resume``, or chaos on ``config``, execution routes through the
    fault-tolerant :class:`~repro.sim.supervisor.Supervisor`: cells that
    exhaust their retries land in ``SuiteResult.failures`` instead of
    raising, and completed/failed keys are checkpointed for resume.
    Otherwise the plain fail-fast :func:`execute_specs` path runs.

    ``backend`` selects the execution substrate on either path (a name
    — ``inline`` / ``threads`` / ``process`` / ``queue`` — or an
    :class:`~repro.sim.backends.ExecutionBackend` instance); ``observer``
    receives each settled :class:`RunRecord` /
    :class:`~repro.sim.supervisor.RunFailure` as it lands.
    """
    config = config or RunConfig()
    specs = [
        RunSpec.build(profile, scheme, length, config)
        for profile in profiles
        for scheme in schemes
    ]
    supervised = (
        policy is not None
        or journal is not None
        or resume
        or config.chaos is not None
    )
    start = time.perf_counter()
    if supervised:
        # Imported lazily: supervisor imports this module at load time.
        from repro.sim.supervisor import Supervisor

        supervisor = Supervisor(
            policy,
            jobs=jobs,
            store=store,
            journal=journal,
            progress=progress,
            backend=backend,
            observer=observer,
        )
        results, records, failures = supervisor.execute(specs, resume=resume)
        fault_counters = supervisor.fault_counters
    else:
        results, records = execute_specs(
            specs,
            config=config,
            jobs=jobs,
            store=store,
            progress=progress,
            backend=backend,
            observer=observer,
        )
        failures, fault_counters = [], {}
    wall = time.perf_counter() - start
    mapping = {
        (spec.profile.name, spec.scheme): result
        for spec, result in zip(specs, results)
        if result is not None
    }
    return SuiteResult(
        mapping,
        records,
        wall_time_s=wall,
        failures=failures,
        fault_counters=fault_counters,
    )
