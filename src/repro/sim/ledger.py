"""Crash-safe write-ahead job ledger for the sweep service.

The sweep service (:mod:`repro.sim.service`) used to keep its job table
purely in memory: a crash or redeploy silently lost every in-flight
suite.  The :class:`JobLedger` makes the job table durable — every
submit and every state transition is one fsync'd JSON line, appended
with a *single* unbuffered ``write`` syscall so a SIGKILL (or power
loss after the fsync returns) can tear at most the line being written,
never an already-acknowledged one.

Write-ahead ordering is the contract that makes restart sound:

* a submit is appended (and fsync'd) **before** the HTTP 202 is sent,
  so an acknowledged job is never forgotten;
* a job's ``done`` record is appended only **after** its
  ``SuiteResult`` JSON has been durably written to the job's result
  sidecar file (:func:`durable_write`: temp file + fsync +
  atomic rename), so a ``done`` job always has a readable result;
* per-cell progress is *not* ledgered — it already lives in the
  supervisor's checkpoint journal and the result store, which is what
  :meth:`~repro.sim.service.SweepService.recover` replays a running
  job through.

Replay (:meth:`JobLedger.replay`) folds the record stream into one
:class:`JobSnapshot` per job (last state wins) and tolerates torn or
garbage lines by skipping them, exactly like the supervisor journal.
:meth:`JobLedger.rotate` compacts the stream — one submit plus one
terminal state per live job — through a temp file, fsync, and atomic
rename, so the ledger never grows without bound and a crash mid-rotate
leaves the previous ledger intact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "JobLedger",
    "JobSnapshot",
    "LEDGER_NAME",
    "durable_write",
    "fsync_directory",
]

#: Default ledger file name inside the service state directory.
LEDGER_NAME = "ledger.jsonl"

#: Record count above which :meth:`JobLedger.maybe_rotate` compacts.
DEFAULT_ROTATE_AT = 4096

_TERMINAL = ("done", "failed")
_STATUSES = ("queued", "running", "done", "failed")


def fsync_directory(path: Path) -> None:
    """fsync a directory so a just-created/renamed entry is durable."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # e.g. platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem-specific
        pass
    finally:
        os.close(fd)


def durable_write(path: Path, text: str) -> Path:
    """Write ``text`` to ``path`` torn-proof: temp + fsync + rename.

    The payload lands in a sibling temp file, is fsync'd, and is renamed
    into place; the parent directory is fsync'd afterwards.  A crash at
    any point leaves either the old content or the new — never a
    truncated mixture.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)
    return path


@dataclasses.dataclass
class JobSnapshot:
    """One job's replayed state: submit payload plus last known status."""

    job_id: str
    requests: List[Dict[str, Any]]
    options: Dict[str, Any]
    idempotency_key: Optional[str] = None
    created_at: float = 0.0
    status: str = "queued"
    error: Optional[str] = None
    #: Path of the job's durably-written ``SuiteResult`` JSON sidecar
    #: (set by the ``done`` state record).
    result_path: Optional[str] = None
    updated_at: float = 0.0

    @property
    def terminal(self) -> bool:
        """Whether the job had finished (done or failed) when recorded."""
        return self.status in _TERMINAL

    def submit_record(self) -> Dict[str, Any]:
        """The compacted ``submit`` record for :meth:`JobLedger.rotate`."""
        return {
            "kind": "submit",
            "job": self.job_id,
            "requests": self.requests,
            "options": self.options,
            "idempotency_key": self.idempotency_key,
            "at": self.created_at,
        }

    def state_record(self) -> Dict[str, Any]:
        """The compacted last-``state`` record for :meth:`JobLedger.rotate`."""
        record: Dict[str, Any] = {
            "kind": "state",
            "job": self.job_id,
            "status": self.status,
            "at": self.updated_at,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.result_path is not None:
            record["result_path"] = self.result_path
        return record


class JobLedger:
    """Append-only, fsync'd JSONL record of every job's lifecycle."""

    def __init__(
        self, path: Path, *, rotate_at: int = DEFAULT_ROTATE_AT
    ) -> None:
        self.path = Path(path)
        if rotate_at < 2:
            raise ValueError("rotate_at must be at least 2")
        self.rotate_at = rotate_at
        #: Records appended through this instance (not the file total).
        self.records_written = 0
        #: Compactions performed through this instance.
        self.rotations = 0
        self._records_in_file = 0
        self._dir_synced = False

    # -- appending -----------------------------------------------------
    def record_submit(
        self,
        job_id: str,
        requests: List[Dict[str, Any]],
        options: Dict[str, Any],
        *,
        idempotency_key: Optional[str] = None,
        at: Optional[float] = None,
    ) -> None:
        """Ledger a submitted job **before** it is acknowledged."""
        self._append(
            {
                "kind": "submit",
                "job": job_id,
                "requests": list(requests),
                "options": dict(options),
                "idempotency_key": idempotency_key,
                "at": time.time() if at is None else at,
            }
        )

    def record_state(
        self,
        job_id: str,
        status: str,
        *,
        error: Optional[str] = None,
        result_path: Optional[str] = None,
        at: Optional[float] = None,
    ) -> None:
        """Ledger one lifecycle transition (queued/running/done/failed).

        For ``done``, callers must have durably written the result
        sidecar (``result_path``) first — the ledger is the commit
        point, the sidecar is the payload.
        """
        if status not in _STATUSES:
            raise ValueError(
                f"unknown job status {status!r}; choose from {_STATUSES}"
            )
        record: Dict[str, Any] = {
            "kind": "state",
            "job": job_id,
            "status": status,
            "at": time.time() if at is None else at,
        }
        if error is not None:
            record["error"] = error
        if result_path is not None:
            record["result_path"] = result_path
        self._append(record)

    def _append(self, record: Dict[str, Any]) -> None:
        """One record = one unbuffered write + fsync (torn-proof append)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        existed = self.path.exists()
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        if not existed or not self._dir_synced:
            fsync_directory(self.path.parent)
            self._dir_synced = True
        self.records_written += 1
        self._records_in_file += 1

    # -- replay --------------------------------------------------------
    def replay(self) -> Dict[str, JobSnapshot]:
        """Snapshots by job id (submit order preserved; torn lines skipped).

        A ``state`` record for a job with no surviving ``submit`` record
        is dropped — without the request payload there is nothing to
        re-run, and a compaction would have carried the submit along.
        """
        snapshots: Dict[str, JobSnapshot] = {}
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return snapshots
        count = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from a killed writer
            if not isinstance(record, dict):
                continue
            job_id = record.get("job")
            if not isinstance(job_id, str):
                continue
            kind = record.get("kind")
            if kind == "submit":
                requests = record.get("requests")
                if not isinstance(requests, list) or not requests:
                    continue
                snapshots[job_id] = JobSnapshot(
                    job_id=job_id,
                    requests=requests,
                    options=dict(record.get("options") or {}),
                    idempotency_key=record.get("idempotency_key"),
                    created_at=float(record.get("at") or 0.0),
                    updated_at=float(record.get("at") or 0.0),
                )
            elif kind == "state":
                snapshot = snapshots.get(job_id)
                status = record.get("status")
                if snapshot is None or status not in _STATUSES:
                    continue
                snapshot.status = status
                snapshot.error = record.get("error")
                snapshot.result_path = record.get("result_path")
                snapshot.updated_at = float(record.get("at") or 0.0)
        self._records_in_file = count
        return snapshots

    # -- rotation ------------------------------------------------------
    def rotate(self, snapshots: Dict[str, JobSnapshot]) -> None:
        """Compact the ledger to ``snapshots`` via temp + fsync + rename.

        The compacted stream holds one submit record per job plus one
        state record for jobs past ``queued``, in ``created_at`` order.
        A crash mid-rotation leaves the previous ledger file intact.
        """
        lines: List[str] = []
        ordered = sorted(
            snapshots.values(), key=lambda snap: (snap.created_at, snap.job_id)
        )
        for snapshot in ordered:
            lines.append(json.dumps(snapshot.submit_record(), sort_keys=True))
            if snapshot.status != "queued":
                lines.append(
                    json.dumps(snapshot.state_record(), sort_keys=True)
                )
        durable_write(self.path, "".join(line + "\n" for line in lines))
        self.rotations += 1
        self._records_in_file = len(lines)

    def maybe_rotate(self, snapshots: Dict[str, JobSnapshot]) -> bool:
        """Rotate when the file has outgrown ``rotate_at`` records."""
        if self._records_in_file <= self.rotate_at:
            return False
        self.rotate(snapshots)
        return True
