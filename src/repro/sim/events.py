"""Sim-level alias of the shared event queue.

The implementation lives in :mod:`repro.common.events` so that
:mod:`repro.core.pipeline` can import it without pulling in the whole
``repro.sim`` package (which imports the pipeline back — a cycle).
Simulation code imports it from here.
"""

from repro.common.events import EventQueue

__all__ = ["EventQueue"]
