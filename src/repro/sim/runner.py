"""Experiment runner: benchmarks x schemes, with trace caching.

This is the layer the figure benches and examples drive.  Trace
generation is deterministic and independent of the scheme, so traces are
built once per (profile, length) and reused across every scheme — both
for speed and so that scheme comparisons are literally run on identical
micro-op streams.

``run_benchmark`` is the single-run primitive; ``run_benchmark_seeds``
and ``run_suite`` fan their grids out through the parallel experiment
engine (:mod:`repro.sim.engine`), which adds multiprocessing (``jobs``)
and persistent result-store memoization on top.
"""

from __future__ import annotations

import dataclasses
import os
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.isa.microop import MicroOp
from repro.sim.config import UNSET, RunConfig, coerce_config
from repro.sim.system import System, SystemResult
from repro.telemetry.events import TelemetryResult
from repro.workloads.kernels import build_parallel_traces, build_trace
from repro.workloads.profile import BenchmarkProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle (engine imports runner)
    from repro.sim.engine import SuiteResult
    from repro.sim.store import ResultStore

__all__ = [
    "RunResult",
    "SeededResult",
    "default_trace_length",
    "run_benchmark",
    "run_benchmark_seeds",
    "run_suite",
    "TraceCache",
]

#: Environment variable scaling every bench's trace length.
TRACE_LEN_ENV = "REPRO_TRACE_LEN"


def default_trace_length(fallback: int = 12_000) -> int:
    """Trace length for benches; override with ``REPRO_TRACE_LEN``."""
    value = os.environ.get(TRACE_LEN_ENV)
    if value is None:
        return fallback
    return max(500, int(value))


@dataclasses.dataclass
class RunResult:
    """One (benchmark, scheme) measurement."""

    profile: BenchmarkProfile
    scheme: SchemeKind
    cycles: int
    stats: StatSet
    per_core: List[StatSet]
    #: Collected telemetry (``None`` unless the run traced).
    telemetry: Optional[TelemetryResult] = None
    #: Statistical annotations (``None`` unless the run was sampled);
    #: a :class:`~repro.sampling.estimator.SampledEstimate`.
    sampling: Optional[Any] = None

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.stats.committed_uops / self.cycles

    @property
    def estimated(self) -> bool:
        """True when the numbers are statistical estimates, not exact."""
        return self.sampling is not None


#: Rough per-uop retained size used for the cache's byte budget.  A
#: MicroOp is a small dataclass plus list slots; ~200 bytes is within 2x
#: of measured CPython footprints and errs toward evicting early.
_UOP_EST_BYTES = 200


class TraceCache:
    """Builds and memoizes workload traces per (profile, seed, threads, length).

    The cache is bounded: at most ``max_entries`` traces and roughly
    ``max_bytes`` of retained micro-ops, with least-recently-used
    eviction.  The experiment engine calls :meth:`clear` between grid
    cells so a long sweep never accumulates every profile's traces.
    """

    def __init__(
        self,
        max_entries: int = 32,
        max_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self._cache: "OrderedDict[Tuple[str, int, int, int], List[List[MicroOp]]]" = (
            OrderedDict()
        )
        self._bytes = 0

    @staticmethod
    def _entry_bytes(traces: List[List[MicroOp]]) -> int:
        return sum(len(trace) for trace in traces) * _UOP_EST_BYTES

    def get(
        self, profile: BenchmarkProfile, threads: int, length: int
    ) -> List[List[MicroOp]]:
        """Return (building if needed) the trace list for this request."""
        key = (profile.label, profile.seed, threads, length)
        if key in self._cache:
            self.hits += 1
            self._cache.move_to_end(key)
            return self._cache[key]
        self.misses += 1
        if threads == 1:
            traces = [build_trace(profile, length).trace()]
        else:
            traces = [
                prog.trace()
                for prog in build_parallel_traces(profile, threads, length)
            ]
        self._cache[key] = traces
        self._bytes += self._entry_bytes(traces)
        self._evict()
        return traces

    def _evict(self) -> None:
        """Drop least-recently-used entries until within budget.

        The newest entry always survives — the caller holds a reference
        to it anyway, so evicting it would only cause rebuild thrash.
        """
        while len(self._cache) > 1 and (
            len(self._cache) > self.max_entries or self._bytes > self.max_bytes
        ):
            _, traces = self._cache.popitem(last=False)
            self._bytes -= self._entry_bytes(traces)

    def clear(self) -> None:
        """Drop every cached trace (hit/miss counters survive)."""
        self._cache.clear()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def approx_bytes(self) -> int:
        """Estimated bytes of retained trace data."""
        return self._bytes


_GLOBAL_CACHE = TraceCache()


def run_benchmark(
    profile: BenchmarkProfile,
    scheme: SchemeKind,
    length: int,
    *,
    config: Optional[RunConfig] = None,
    params: Any = UNSET,
    threads: Any = UNSET,
    cache: Any = UNSET,
    warmup_uops: Any = UNSET,
) -> RunResult:
    """Run one benchmark under one scheme; returns the measurement.

    ``config`` carries the system parameters, thread count, trace cache,
    and warm-up prefix (paper §6.1: detailed warm-up so that the
    mechanism itself is warmed; the default warms up over the first 40%
    of the trace).  The old ``params``/``threads``/``cache``/
    ``warmup_uops`` kwargs still work behind a ``DeprecationWarning``.
    """
    config = coerce_config(
        config, params=params, threads=threads, cache=cache, warmup_uops=warmup_uops
    )
    trace_cache = config.cache if config.cache is not None else _GLOBAL_CACHE
    traces = trace_cache.get(profile, config.threads, length)
    if config.sampling is not None:
        from repro.sampling.executor import run_sampled

        return run_sampled(
            profile, scheme, length, config=config, traces=traces
        )
    result: SystemResult = System(
        config.resolved_params(),
        traces,
        scheme,
        warmup_uops=config.resolved_warmup(length),
        telemetry=config.telemetry,
    ).run()
    return RunResult(
        profile=profile,
        scheme=scheme,
        cycles=result.cycles,
        stats=result.aggregate,
        per_core=result.per_core,
        telemetry=result.telemetry,
    )


@dataclasses.dataclass
class SeededResult:
    """Multi-seed measurement: per-seed results plus summary statistics."""

    profile: BenchmarkProfile
    scheme: SchemeKind
    runs: List[RunResult]

    @property
    def ipcs(self) -> List[float]:
        return [run.ipc for run in self.runs]

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipcs) / len(self.ipcs)

    @property
    def std_ipc(self) -> float:
        if len(self.runs) < 2:
            return 0.0
        mean = self.mean_ipc
        var = sum((v - mean) ** 2 for v in self.ipcs) / (len(self.ipcs) - 1)
        return var ** 0.5


def run_benchmark_seeds(
    profile: BenchmarkProfile,
    scheme: SchemeKind,
    length: int,
    seeds: Sequence[int],
    *,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    params: Any = UNSET,
    threads: Any = UNSET,
    cache: Any = UNSET,
    warmup_uops: Any = UNSET,
) -> SeededResult:
    """Run one benchmark over several workload seeds.

    Synthetic-workload noise is seed noise; reporting mean and standard
    deviation over seeds is the honest way to quote a number from this
    reproduction.  Seeds are independent runs, so they fan out across
    ``jobs`` worker processes and memoize in ``store`` like any grid.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    from repro.sim.engine import RunSpec, execute_specs

    config = coerce_config(
        config, params=params, threads=threads, cache=cache, warmup_uops=warmup_uops
    )
    specs = [
        RunSpec.build(
            dataclasses.replace(profile, seed=seed), scheme, length, config
        )
        for seed in seeds
    ]
    results, _ = execute_specs(specs, config=config, jobs=jobs, store=store)
    return SeededResult(profile=profile, scheme=scheme, runs=results)


def run_suite(
    profiles: Iterable[BenchmarkProfile],
    schemes: Sequence[SchemeKind],
    length: int,
    *,
    config: Optional[RunConfig] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    progress: bool = False,
    policy: Optional[Any] = None,
    journal: Optional[Any] = None,
    resume: bool = False,
    backend: Optional[Any] = None,
    params: Any = UNSET,
    threads: Any = UNSET,
    cache: Any = UNSET,
    warmup_uops: Any = UNSET,
) -> "SuiteResult":
    """Run a full benchmarks x schemes grid on identical traces.

    Returns a :class:`~repro.sim.engine.SuiteResult` — a mapping from
    ``(benchmark, scheme)`` to :class:`RunResult` that also carries
    per-run observability records and store hit/miss counts.  ``jobs``
    (or the ``REPRO_JOBS`` environment variable) fans independent cells
    out across worker processes; ``store`` memoizes completed runs on
    disk so repeated invocations are near-instant.

    ``policy`` / ``journal`` / ``resume`` (and chaos on ``config``)
    route execution through the fault-tolerant supervisor — see
    :func:`~repro.sim.engine.run_grid` and ``docs/robustness.md``.
    ``backend`` picks the execution substrate (``inline`` / ``threads``
    / ``process`` / ``queue`` or an
    :class:`~repro.sim.backends.ExecutionBackend` instance) — see
    ``docs/backends.md``.
    """
    from repro.sim.engine import run_grid

    config = coerce_config(
        config, params=params, threads=threads, cache=cache, warmup_uops=warmup_uops
    )
    return run_grid(
        profiles,
        schemes,
        length,
        config=config,
        jobs=jobs,
        store=store,
        progress=progress,
        policy=policy,
        journal=journal,
        resume=resume,
        backend=backend,
    )
