"""Experiment runner: benchmarks x schemes, with trace caching.

This is the layer the figure benches and examples drive.  Trace
generation is deterministic and independent of the scheme, so traces are
built once per (profile, length) and reused across every scheme — both
for speed and so that scheme comparisons are literally run on identical
micro-op streams.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.params import SystemParams
from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.isa.microop import MicroOp
from repro.sim.system import System, SystemResult
from repro.workloads.kernels import build_parallel_traces, build_trace
from repro.workloads.profile import BenchmarkProfile

__all__ = [
    "RunResult",
    "SeededResult",
    "default_trace_length",
    "run_benchmark",
    "run_benchmark_seeds",
    "run_suite",
    "TraceCache",
]

#: Environment variable scaling every bench's trace length.
TRACE_LEN_ENV = "REPRO_TRACE_LEN"


def default_trace_length(fallback: int = 12_000) -> int:
    """Trace length for benches; override with ``REPRO_TRACE_LEN``."""
    value = os.environ.get(TRACE_LEN_ENV)
    if value is None:
        return fallback
    return max(500, int(value))


@dataclasses.dataclass
class RunResult:
    """One (benchmark, scheme) measurement."""

    profile: BenchmarkProfile
    scheme: SchemeKind
    cycles: int
    stats: StatSet
    per_core: List[StatSet]

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.stats.committed_uops / self.cycles


class TraceCache:
    """Builds and memoizes workload traces per (profile, seed, threads, length)."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int, int, int], List[List[MicroOp]]] = {}

    def get(
        self, profile: BenchmarkProfile, threads: int, length: int
    ) -> List[List[MicroOp]]:
        """Return (building if needed) the trace list for this request."""
        key = (profile.label, profile.seed, threads, length)
        if key not in self._cache:
            if threads == 1:
                self._cache[key] = [build_trace(profile, length).trace()]
            else:
                self._cache[key] = [
                    prog.trace()
                    for prog in build_parallel_traces(profile, threads, length)
                ]
        return self._cache[key]


_GLOBAL_CACHE = TraceCache()


def run_benchmark(
    profile: BenchmarkProfile,
    scheme: SchemeKind,
    length: int,
    params: Optional[SystemParams] = None,
    threads: int = 1,
    cache: Optional[TraceCache] = None,
    warmup_uops: Optional[int] = None,
) -> RunResult:
    """Run one benchmark under one scheme; returns the measurement.

    ``warmup_uops`` excludes a detailed-warm-up prefix from the reported
    stats (paper §6.1: detailed warm-up so that the mechanism itself is
    warmed); the default warms up over the first 40% of the trace.
    """
    cache = cache or _GLOBAL_CACHE
    traces = cache.get(profile, threads, length)
    if params is None:
        params = SystemParams(num_cores=threads)
    if warmup_uops is None:
        warmup_uops = (length * 2) // 5
    result: SystemResult = System(
        params, traces, scheme, warmup_uops=warmup_uops
    ).run()
    return RunResult(
        profile=profile,
        scheme=scheme,
        cycles=result.cycles,
        stats=result.aggregate,
        per_core=result.per_core,
    )


@dataclasses.dataclass
class SeededResult:
    """Multi-seed measurement: per-seed results plus summary statistics."""

    profile: BenchmarkProfile
    scheme: SchemeKind
    runs: List[RunResult]

    @property
    def ipcs(self) -> List[float]:
        return [run.ipc for run in self.runs]

    @property
    def mean_ipc(self) -> float:
        return sum(self.ipcs) / len(self.ipcs)

    @property
    def std_ipc(self) -> float:
        if len(self.runs) < 2:
            return 0.0
        mean = self.mean_ipc
        var = sum((v - mean) ** 2 for v in self.ipcs) / (len(self.ipcs) - 1)
        return var ** 0.5


def run_benchmark_seeds(
    profile: BenchmarkProfile,
    scheme: SchemeKind,
    length: int,
    seeds: Sequence[int],
    params: Optional[SystemParams] = None,
    threads: int = 1,
    cache: Optional[TraceCache] = None,
    warmup_uops: Optional[int] = None,
) -> SeededResult:
    """Run one benchmark over several workload seeds.

    Synthetic-workload noise is seed noise; reporting mean and standard
    deviation over seeds is the honest way to quote a number from this
    reproduction.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    cache = cache or _GLOBAL_CACHE
    runs = []
    for seed in seeds:
        seeded = dataclasses.replace(profile, seed=seed)
        runs.append(
            run_benchmark(
                seeded,
                scheme,
                length,
                params=params,
                threads=threads,
                cache=cache,
                warmup_uops=warmup_uops,
            )
        )
    return SeededResult(profile=profile, scheme=scheme, runs=runs)


def run_suite(
    profiles: Iterable[BenchmarkProfile],
    schemes: Sequence[SchemeKind],
    length: int,
    params: Optional[SystemParams] = None,
    threads: int = 1,
    cache: Optional[TraceCache] = None,
    warmup_uops: Optional[int] = None,
) -> Dict[Tuple[str, SchemeKind], RunResult]:
    """Run a full benchmarks x schemes grid on identical traces."""
    results: Dict[Tuple[str, SchemeKind], RunResult] = {}
    for profile in profiles:
        for scheme in schemes:
            results[(profile.name, scheme)] = run_benchmark(
                profile,
                scheme,
                length,
                params=params,
                threads=threads,
                cache=cache,
                warmup_uops=warmup_uops,
            )
    return results
