"""Async sweep service: submit suites over HTTP, poll, stream progress.

``repro serve`` exposes the suite runner as a small stdlib-only HTTP
endpoint so long sweeps can be driven from other machines (or detached
terminals) without holding a shell open.  The server is a hand-rolled
HTTP/1.1 loop on :func:`asyncio.start_server` — no third-party web
framework — because the protocol surface is deliberately tiny:

========  ============================  =====================================
Method    Path                          Meaning
========  ============================  =====================================
GET       ``/v1/health``                liveness + job counts
POST      ``/v1/suites``                submit a suite; returns a job id
GET       ``/v1/jobs``                  list all jobs with status
GET       ``/v1/jobs/{id}``             one job's status + progress counts
GET       ``/v1/jobs/{id}/result``      the ``SuiteResult`` JSON (409 until
                                        the job is done)
GET       ``/v1/jobs/{id}/events``      NDJSON progress stream (one record
                                        or failure event per line, then a
                                        terminal ``status`` event)
========  ============================  =====================================

A submitted suite body looks like::

    {"requests": [{"benchmark": "spec2017/mcf",
                   "scheme": "stt+recon",
                   "length": 2000}],
     "jobs": 2, "supervise": true, "backend": "threads"}

Each job runs :func:`repro.api.run_suite` on an executor thread; the
engine/supervisor ``observer`` callback appends progress events to the
job under a lock, and the ``/events`` streamer polls that list from the
event loop.  Cross-thread signalling is therefore lock + poll, never
``call_soon_threadsafe`` from simulation code — the simulator stays
ignorant of asyncio.

The matching client helpers live in :mod:`repro.api`:
``submit_suite`` / ``poll`` / ``result``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.backends import BACKEND_NAMES

__all__ = ["Job", "SweepService", "serve"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_STREAM_POLL_S = 0.1


@dataclass
class Job:
    """One submitted suite: request payload, lifecycle, progress events."""

    job_id: str
    requests: List[Dict[str, Any]]
    options: Dict[str, Any]
    status: str = "queued"  # queued -> running -> done | failed
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result_json: Optional[str] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed")

    def add_event(self, event: Dict[str, Any]) -> None:
        """Append one progress event, stamping its monotonic ``seq``."""
        with self.lock:
            event["seq"] = len(self.events)
            self.events.append(event)

    def events_since(self, seq: int) -> List[Dict[str, Any]]:
        """Events with ``seq`` >= the given cursor, oldest first."""
        with self.lock:
            return list(self.events[seq:])

    def summary(self) -> Dict[str, Any]:
        """The job's status row: id, state, and record/failure counts."""
        with self.lock:
            records = sum(1 for e in self.events if e.get("type") == "record")
            failures = sum(1 for e in self.events if e.get("type") == "failure")
        return {
            "job": self.job_id,
            "status": self.status,
            "cells": len(self.requests),
            "records": records,
            "failures": failures,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


def _observer_event(item: Any) -> Dict[str, Any]:
    """Map an engine record / supervisor failure onto a wire event."""
    # RunFailure has error_type; engine RunRecord has from_store.
    kind = "failure" if hasattr(item, "error_type") else "record"
    try:
        body = item.as_dict()
    except Exception:  # pragma: no cover - defensive; both types have it
        body = {"repr": repr(item)}
    return {"type": kind, kind: body}


class SweepService:
    """Job table + HTTP front-end for :func:`repro.api.run_suite`."""

    def __init__(
        self,
        *,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        store: bool = True,
        max_concurrent: int = 1,
    ) -> None:
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; known: {', '.join(BACKEND_NAMES)}"
            )
        self.default_jobs = jobs
        self.default_backend = backend
        self.store = store
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._seq = 0
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, max_concurrent),
            thread_name_prefix="repro-serve",
        )

    # --- job lifecycle ---------------------------------------------------
    def submit(
        self, requests: List[Dict[str, Any]], options: Dict[str, Any]
    ) -> Job:
        """Validate and enqueue a suite; returns the queued :class:`Job`."""
        if not requests:
            raise ValueError("requests must be a non-empty list")
        backend = options.get("backend", self.default_backend)
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; known: {', '.join(BACKEND_NAMES)}"
            )
        parsed = [self._parse_request(entry) for entry in requests]
        # Resolve eagerly so typos fail the submit, not the job.
        for request in parsed:
            request.resolve()
        with self._jobs_lock:
            self._seq += 1
            job = Job(
                job_id=f"job-{self._seq:04d}",
                requests=list(requests),
                options=dict(options),
            )
            self._jobs[job.job_id] = job
        self._pool.submit(self._run_job, job, parsed)
        return job

    @staticmethod
    def _parse_request(entry: Any) -> Any:
        from repro.api import RunRequest

        if not isinstance(entry, dict):
            raise ValueError(f"each request must be an object, got {entry!r}")
        missing = [k for k in ("benchmark", "scheme", "length") if k not in entry]
        if missing:
            raise ValueError(f"request missing fields: {', '.join(missing)}")
        return RunRequest(
            benchmark=entry["benchmark"],
            scheme=entry["scheme"],
            length=int(entry["length"]),
        )

    def _run_job(self, job: Job, parsed: List[Any]) -> None:
        from repro.api import run_suite

        job.status = "running"
        job.started_at = time.time()
        options = job.options
        try:
            result = run_suite(
                parsed,
                jobs=options.get("jobs", self.default_jobs),
                supervise=bool(options.get("supervise", False)),
                telemetry=options.get("telemetry"),
                store=self.store,
                backend=options.get("backend", self.default_backend),
                observer=lambda item: job.add_event(_observer_event(item)),
            )
            job.result_json = result.to_json()
            job.status = "done"
        except Exception as exc:  # job failures are data, not crashes
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "failed"
        finally:
            job.finished_at = time.time()
            job.add_event(
                {"type": "status", "status": job.status, "error": job.error}
            )

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or ``None``."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Status summaries for every submitted job, oldest first."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        return [job.summary() for job in jobs]

    def health(self) -> Dict[str, Any]:
        """Liveness payload: service status, job counts, backend name."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        counts: Dict[str, int] = {}
        for job in jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        return {
            "status": "ok",
            "jobs": counts,
            "backend": self.default_backend or "auto",
        }

    def close(self) -> None:
        """Stop accepting work and release the job executor."""
        self._pool.shutdown(wait=False)

    # --- HTTP plumbing ---------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP connection: parse, dispatch, respond, close."""
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._dispatch(writer, method, path, body)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> None:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/health" and method == "GET":
            await _send_json(writer, 200, self.health())
            return
        if path == "/v1/suites" and method == "POST":
            await self._handle_submit(writer, body)
            return
        if path == "/v1/jobs" and method == "GET":
            await _send_json(writer, 200, {"jobs": self.list_jobs()})
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            job_id, _, action = rest.partition("/")
            job = self.get(job_id)
            if job is None:
                await _send_json(
                    writer, 404, {"error": f"no such job: {job_id}"}
                )
                return
            if method != "GET":
                await _send_json(writer, 405, {"error": "GET only"})
                return
            if not action:
                await _send_json(writer, 200, job.summary())
            elif action == "result":
                await self._handle_result(writer, job)
            elif action == "events":
                await self._handle_events(writer, job)
            else:
                await _send_json(
                    writer, 404, {"error": f"unknown action: {action}"}
                )
            return
        await _send_json(writer, 404, {"error": f"unknown path: {path}"})

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            requests = payload.get("requests")
            if not isinstance(requests, list):
                raise ValueError("body must carry a 'requests' list")
            options = {
                key: payload[key]
                for key in ("jobs", "supervise", "backend", "telemetry")
                if key in payload
            }
            job = self.submit(requests, options)
        except (ValueError, json.JSONDecodeError) as exc:
            await _send_json(writer, 400, {"error": str(exc)})
            return
        await _send_json(
            writer, 202, {"job": job.job_id, "status": job.status}
        )

    async def _handle_result(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        if job.status == "failed":
            await _send_json(
                writer, 500, {"job": job.job_id, "error": job.error}
            )
        elif job.status != "done" or job.result_json is None:
            await _send_json(
                writer,
                409,
                {"job": job.job_id, "status": job.status,
                 "error": "job not finished"},
            )
        else:
            await _send_raw(
                writer, 200, job.result_json.encode("utf-8"),
                "application/json",
            )

    async def _handle_events(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        headers = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(headers.encode("latin-1"))
        seq = 0
        while True:
            fresh = job.events_since(seq)
            for event in fresh:
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
            seq += len(fresh)
            await writer.drain()
            if fresh and fresh[-1].get("type") == "status":
                return
            if job.done and not job.events_since(seq):
                # Job finished before its terminal event landed; re-check
                # once more next tick rather than racing it.
                await asyncio.sleep(_STREAM_POLL_S)
                tail = job.events_since(seq)
                if not tail:
                    return
                continue
            await asyncio.sleep(_STREAM_POLL_S)


async def _send_raw(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str,
) -> None:
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict",
        500: "Internal Server Error",
    }.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def _send_json(
    writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
) -> None:
    await _send_raw(
        writer, status, json.dumps(payload).encode("utf-8"),
        "application/json",
    )


async def _serve_async(
    service: SweepService, host: str, port: int,
    ready: Optional["threading.Event"] = None,
    bound: Optional[List[Tuple[str, int]]] = None,
) -> None:
    server = await asyncio.start_server(service.handle, host, port)
    addresses = [sock.getsockname()[:2] for sock in server.sockets or []]
    if bound is not None:
        bound.extend(addresses)
    if ready is not None:
        ready.set()
    shown = ", ".join(f"http://{h}:{p}" for h, p in addresses)
    print(f"repro serve: listening on {shown}", flush=True)
    async with server:
        await server.serve_forever()


def serve(
    host: str = "127.0.0.1",
    port: int = 8712,
    *,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    store: bool = True,
    max_concurrent: int = 1,
) -> None:
    """Run the sweep service until interrupted (the ``repro serve`` body)."""
    service = SweepService(
        jobs=jobs, backend=backend, store=store, max_concurrent=max_concurrent
    )
    try:
        asyncio.run(_serve_async(service, host, port))
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    finally:
        service.close()
