"""Durable async sweep service: submit suites over HTTP, survive crashes.

``repro serve`` exposes the suite runner as a small stdlib-only HTTP
endpoint so long sweeps can be driven from other machines (or detached
terminals) without holding a shell open.  The server is a hand-rolled
HTTP/1.1 loop on :func:`asyncio.start_server` — no third-party web
framework — because the protocol surface is deliberately tiny:

========  ============================  =====================================
Method    Path                          Meaning
========  ============================  =====================================
GET       ``/healthz``                  liveness (always 200 while the
                                        process is up; never authed)
GET       ``/readyz``                   readiness (ledger replayed, workers
                                        alive, breaker not open)
GET       ``/v1/health``                liveness + job counts (legacy)
GET       ``/v1/metrics``               service metrics registry snapshot
POST      ``/v1/suites``                submit a suite; returns a job id
GET       ``/v1/jobs``                  list all jobs with status
GET       ``/v1/jobs/{id}``             one job's status + progress counts
GET       ``/v1/jobs/{id}/result``      the ``SuiteResult`` JSON (409 until
                                        the job is done)
GET       ``/v1/jobs/{id}/events``      NDJSON progress stream (one record
                                        or failure event per line, then a
                                        terminal ``status`` event);
                                        ``?since=N`` resumes from seq N
========  ============================  =====================================

A submitted suite body looks like::

    {"requests": [{"benchmark": "spec2017/mcf",
                   "scheme": "stt+recon",
                   "length": 2000}],
     "jobs": 2, "supervise": true, "backend": "threads",
     "sampling": "ci=0.02,conf=0.95",
     "idempotency_key": "..."}

``sampling`` (optional) is a :func:`repro.sampling.parse_sampling` spec
string; the job's cells then run in statistically sampled mode and
their records carry ``estimated``/``samples``/``ipc_ci``.

**Durability** (``state_dir``): every submit and job state transition
is written ahead to a crash-safe :class:`~repro.sim.ledger.JobLedger`
before it is acknowledged, and a finished job's ``SuiteResult`` JSON is
durably written to a per-job sidecar *before* its ``done`` record.  On
restart, :meth:`SweepService.recover` replays the ledger: finished jobs
re-attach their sidecar results, and in-flight jobs re-enter the queue
— their already-completed cells come back instantly (and bit-identically)
from the :class:`~repro.sim.store.ResultStore`, and previously
exhausted failures replay from the per-job supervisor journal, so a
kill -9 mid-suite costs at most the cell that was running.

**Fair scheduling**: a bounded worker pool runs jobs *one cell at a
time*, round-robin — a job runs a cell, then goes to the back of the
ready queue — so one giant suite cannot starve the small ones.  The
per-cell :class:`~repro.sim.engine.SuiteResult` parts are merged into
the final grid with :meth:`~repro.sim.engine.SuiteResult.merged`.

**Admission control**: more open jobs than ``max_queued`` are refused
with ``429`` + ``Retry-After``; repeated backend worker crashes trip a
:class:`CircuitBreaker` into a degraded read-only mode where submits
get ``503`` (reads still work) until a cooldown probe succeeds.

**Auth**: with a ``token`` (CLI: ``REPRO_SERVE_TOKEN``), every endpoint
except the health probes requires ``Authorization: Bearer <token>``,
compared constant-time.

**Chaos** (:class:`~repro.sim.chaos.ServiceChaosConfig`): deterministic
dropped/truncated/slow-loris responses and SIGKILL-after-N-cells, used
by the CI ``service-chaos`` drill to prove the above actually holds.

Each job cell runs :func:`repro.api.run_suite` on a worker thread; the
engine/supervisor ``observer`` callback appends progress events to the
job under a lock, and the ``/events`` streamer polls that ring from the
event loop.  Cross-thread signalling is therefore lock + poll, never
``call_soon_threadsafe`` from simulation code — the simulator stays
ignorant of asyncio.

The matching client helpers live in :mod:`repro.api`:
``submit_suite`` / ``poll`` / ``result``.
"""

from __future__ import annotations

import asyncio
import collections
import hmac
import json
import os
import signal
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.sim.backends import BACKEND_NAMES
from repro.sim.chaos import ServiceChaosConfig, parse_service_chaos
from repro.sim.ledger import JobLedger, JobSnapshot, LEDGER_NAME, durable_write
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "CircuitBreaker",
    "Job",
    "ServiceBusyError",
    "SweepService",
    "serve",
]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_STREAM_POLL_S = 0.1

#: Default bound on open (queued + running) jobs before 429.
DEFAULT_MAX_QUEUED = 8

#: Default per-job progress-event ring size.
DEFAULT_EVENT_BUFFER = 1024

#: Paths that never require auth and are never chaos-faulted: a drill
#: (or an orchestrator) must always be able to tell the service is up.
_EXEMPT_PATHS = frozenset({"/healthz", "/readyz", "/v1/health"})


class ServiceBusyError(Exception):
    """A submit refused by admission control or the circuit breaker."""

    def __init__(self, status: int, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """Trips submits into degraded read-only mode on repeated crashes.

    States: ``closed`` (normal), ``open`` (reject submits, serve
    reads), ``half_open`` (cooldown elapsed; one probe job is allowed
    through — success closes the breaker, another crash re-opens it).
    ``clock`` is injectable so tests drive the cooldown without
    sleeping.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Any = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        if cooldown_s <= 0:
            raise ValueError("breaker cooldown must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.state = "closed"  # closed | open | half_open
        self.trips = 0
        self.resets = 0
        self._consecutive = 0
        self._opened_at = 0.0

    def _tick(self) -> None:
        if self.state == "open" and (
            self.clock() - self._opened_at >= self.cooldown_s
        ):
            self.state = "half_open"

    def allow_submit(self) -> Tuple[bool, float]:
        """Whether a submit may proceed, and the Retry-After otherwise."""
        self._tick()
        if self.state == "open":
            remaining = self.cooldown_s - (self.clock() - self._opened_at)
            return False, max(0.1, remaining)
        return True, 0.0

    def record_crash(self) -> None:
        """One backend worker-crash observation (trips at threshold)."""
        self._tick()
        self._consecutive += 1
        if self.state == "half_open" or self._consecutive >= self.threshold:
            self.state = "open"
            self._opened_at = self.clock()
            self._consecutive = 0
            self.trips += 1

    def record_success(self) -> None:
        """One crash-free cell completion (closes a half-open breaker)."""
        self._tick()
        self._consecutive = 0
        if self.state == "half_open":
            self.state = "closed"
            self.resets += 1


@dataclass
class Job:
    """One submitted suite: request payload, lifecycle, progress events.

    Progress events live in a bounded ring (``events``) stamped with an
    absolute monotonic ``seq``; record/failure totals are kept in
    separate counters so summaries stay exact even after the ring wraps.
    ``cursor``/``parts`` track cell-by-cell execution: the scheduler
    runs one cell per turn and merges ``parts`` into the final grid.
    """

    job_id: str
    requests: List[Dict[str, Any]]
    options: Dict[str, Any]
    status: str = "queued"  # queued -> running -> done | failed
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result_json: Optional[str] = None
    idempotency_key: Optional[str] = None
    #: True when this job was rebuilt from the ledger after a restart.
    recovered: bool = False
    #: Index of the next cell to run; ``parts`` holds per-cell results.
    cursor: int = 0
    parts: List[Any] = field(default_factory=list, repr=False)
    records_count: int = 0
    failures_count: int = 0
    events: Deque[Dict[str, Any]] = field(default_factory=collections.deque)
    next_seq: int = 0
    dropped_events: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed")

    @property
    def open(self) -> bool:
        """Whether the job still occupies an admission slot."""
        return self.status in ("queued", "running")

    def add_event(self, event: Dict[str, Any]) -> None:
        """Append one progress event, stamping its monotonic ``seq``."""
        with self.lock:
            event["seq"] = self.next_seq
            self.next_seq += 1
            maxlen = self.events.maxlen
            if maxlen is not None and len(self.events) >= maxlen:
                self.dropped_events += 1
            self.events.append(event)
            kind = event.get("type")
            if kind == "record":
                self.records_count += 1
            elif kind == "failure":
                self.failures_count += 1

    def events_from(self, cursor: int) -> Tuple[List[Dict[str, Any]], int]:
        """Events with ``seq`` >= ``cursor`` plus the oldest held seq.

        The second element tells a streamer whether the ring wrapped
        past its cursor (``oldest > cursor`` with events dropped), so it
        can emit a ``gap`` notice instead of silently skipping.
        """
        with self.lock:
            if not self.events:
                return [], self.next_seq
            oldest = self.events[0]["seq"]
            return [e for e in self.events if e["seq"] >= cursor], oldest

    def events_since(self, seq: int) -> List[Dict[str, Any]]:
        """Events with ``seq`` >= the given cursor, oldest first."""
        return self.events_from(seq)[0]

    def summary(self) -> Dict[str, Any]:
        """The job's status row: id, state, and record/failure counts."""
        with self.lock:
            records = self.records_count
            failures = self.failures_count
        return {
            "job": self.job_id,
            "status": self.status,
            "cells": len(self.requests),
            "records": records,
            "failures": failures,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "recovered": self.recovered,
        }


def _observer_event(item: Any) -> Dict[str, Any]:
    """Map an engine record / supervisor failure onto a wire event."""
    # RunFailure has error_type; engine RunRecord has from_store.
    kind = "failure" if hasattr(item, "error_type") else "record"
    try:
        body = item.as_dict()
    except Exception:  # pragma: no cover - defensive; both types have it
        body = {"repr": repr(item)}
    return {"type": kind, kind: body}


class SweepService:
    """Durable job table + HTTP front-end for :func:`repro.api.run_suite`.

    With ``state_dir`` the job table is backed by a write-ahead
    :class:`~repro.sim.ledger.JobLedger` and survives a kill -9;
    without it (the default, and the test fixtures' mode) the service
    is purely in-memory, as before.
    """

    def __init__(
        self,
        *,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        store: bool = True,
        max_concurrent: int = 1,
        state_dir: Union[None, str, Path] = None,
        max_queued: int = DEFAULT_MAX_QUEUED,
        token: Optional[str] = None,
        chaos: Union[None, str, ServiceChaosConfig] = None,
        event_buffer: int = DEFAULT_EVENT_BUFFER,
        breaker: Optional[CircuitBreaker] = None,
        start_workers: bool = True,
    ) -> None:
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; known: {', '.join(BACKEND_NAMES)}"
            )
        if max_queued < 1:
            raise ValueError("max_queued must be at least 1")
        if event_buffer < 8:
            raise ValueError("event_buffer must be at least 8")
        self.default_jobs = jobs
        self.default_backend = backend
        self.store = store
        self.max_queued = max_queued
        self.token = token or None
        self.chaos = (
            parse_service_chaos(chaos) if isinstance(chaos, str) else chaos
        )
        self.event_buffer = event_buffer
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.metrics = MetricsRegistry()
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._ledger: Optional[JobLedger] = None
        self._ledger_lock = threading.Lock()
        self._breaker_lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._idempotency: Dict[str, str] = {}
        self._jobs_lock = threading.Lock()
        self._seq = 0
        self._cells_done = 0
        self._chaos_requests = 0
        self._recovered = self.state_dir is None
        self._cond = threading.Condition()
        self._ready: Deque[Job] = collections.deque()
        self._stop = False
        self._workers: List[threading.Thread] = []
        self._worker_count = max(1, max_concurrent)
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._ledger = JobLedger(self.state_dir / LEDGER_NAME)
            self.recover()
        if start_workers:
            self.start_workers()

    # --- durability ------------------------------------------------------
    def _ledger_submit(self, job: Job) -> None:
        if self._ledger is None:
            return
        with self._ledger_lock:
            self._ledger.record_submit(
                job.job_id,
                job.requests,
                _wire_options(job.options),
                idempotency_key=job.idempotency_key,
                at=job.created_at,
            )
            self._count_ledger()

    def _ledger_state(
        self,
        job: Job,
        status: str,
        *,
        error: Optional[str] = None,
        result_path: Optional[str] = None,
    ) -> None:
        if self._ledger is None:
            return
        with self._ledger_lock:
            self._ledger.record_state(
                job.job_id, status, error=error, result_path=result_path
            )
            self._count_ledger()
            if self._ledger.maybe_rotate(self._snapshots()):
                self.metrics.counter("ledger_rotations").inc()

    def _count_ledger(self) -> None:
        self.metrics.counter("ledger_records").inc()

    def _snapshots(self) -> Dict[str, JobSnapshot]:
        """The live job table as ledger snapshots (for compaction)."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        snapshots: Dict[str, JobSnapshot] = {}
        for job in jobs:
            snapshots[job.job_id] = JobSnapshot(
                job_id=job.job_id,
                requests=job.requests,
                options=_wire_options(job.options),
                idempotency_key=job.idempotency_key,
                created_at=job.created_at,
                status=job.status,
                error=job.error,
                result_path=(
                    str(self._result_path(job)) if job.status == "done" else None
                ),
                updated_at=job.finished_at or job.started_at or job.created_at,
            )
        return snapshots

    def _result_path(self, job: Job) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / f"{job.job_id}.result.json"

    def _job_journal(self, job: Job) -> Optional[Any]:
        if self.state_dir is None:
            return None
        from repro.sim.supervisor import SuiteJournal

        return SuiteJournal(self.state_dir / f"{job.job_id}.journal.jsonl")

    def recover(self) -> int:
        """Replay the ledger into the job table; returns jobs recovered.

        Finished jobs re-attach their durably-written result sidecars;
        queued/running jobs re-enter the ready queue from cell 0 —
        cells completed before the crash settle instantly from the
        result store (bit-identical, since a run is a pure function of
        its spec) and previously exhausted failures replay from the
        per-job supervisor journal, so nothing is lost or run twice.
        """
        if self._ledger is None:
            self._recovered = True
            return 0
        snapshots = self._ledger.replay()
        ordered = sorted(
            snapshots.values(), key=lambda snap: (snap.created_at, snap.job_id)
        )
        recovered = 0
        for snap in ordered:
            job = Job(
                job_id=snap.job_id,
                requests=list(snap.requests),
                options=dict(snap.options),
                created_at=snap.created_at or time.time(),
                idempotency_key=snap.idempotency_key,
                recovered=True,
                events=collections.deque(maxlen=self.event_buffer),
            )
            self._track_seq(snap.job_id)
            resumed = False
            if snap.status == "done" and snap.result_path:
                try:
                    job.result_json = Path(snap.result_path).read_text(
                        encoding="utf-8"
                    )
                    job.status = "done"
                    job.finished_at = snap.updated_at
                except OSError:
                    resumed = True  # sidecar lost: re-run the suite
            elif snap.status == "failed":
                job.status = "failed"
                job.error = snap.error
                job.finished_at = snap.updated_at
            else:
                resumed = True
            if resumed:
                try:
                    parsed = [self._parse_request(e) for e in job.requests]
                    for request in parsed:
                        request.resolve()
                except (ValueError, TypeError) as exc:
                    job.status = "failed"
                    job.error = f"unrecoverable after restart: {exc}"
                    resumed = False
            with self._jobs_lock:
                self._jobs[job.job_id] = job
                if job.idempotency_key:
                    self._idempotency[job.idempotency_key] = job.job_id
            if resumed:
                job.status = "queued"
                with self._cond:
                    self._ready.append(job)
                    self._cond.notify()
                self.metrics.counter("ledger_resumed_jobs").inc()
            else:
                job.add_event(
                    {"type": "status", "status": job.status, "error": job.error}
                )
            recovered += 1
        self.metrics.counter("ledger_replayed_jobs").set(recovered)
        self._recovered = True
        return recovered

    def _track_seq(self, job_id: str) -> None:
        """Keep the job-id counter ahead of every replayed id."""
        try:
            number = int(job_id.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return
        with self._jobs_lock:
            self._seq = max(self._seq, number)

    # --- job lifecycle ---------------------------------------------------
    def submit(
        self, requests: List[Dict[str, Any]], options: Dict[str, Any]
    ) -> Job:
        """Validate and enqueue a suite; returns the queued :class:`Job`."""
        job, _ = self.submit_job(requests, options)
        return job

    def submit_job(
        self,
        requests: List[Dict[str, Any]],
        options: Dict[str, Any],
        *,
        idempotency_key: Optional[str] = None,
    ) -> Tuple[Job, bool]:
        """Admit, ledger, and enqueue a suite.

        Returns ``(job, replayed)`` — ``replayed`` is True when
        ``idempotency_key`` matched an already-known job, which is then
        returned as-is instead of enqueueing a duplicate.  Raises
        :class:`ValueError` on a malformed suite (HTTP 400) and
        :class:`ServiceBusyError` on admission refusal (429) or an open
        circuit breaker (503).
        """
        if not requests:
            raise ValueError("requests must be a non-empty list")
        if idempotency_key is not None and not isinstance(
            idempotency_key, str
        ):
            raise ValueError("idempotency_key must be a string")
        backend = options.get("backend", self.default_backend)
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; known: {', '.join(BACKEND_NAMES)}"
            )
        if options.get("sampling") is not None:
            from repro.sampling import parse_sampling

            # A bad spec fails the submit with 400, not the job later.
            parse_sampling(options["sampling"])
        parsed = [self._parse_request(entry) for entry in requests]
        # Resolve eagerly so typos fail the submit, not the job.
        for request in parsed:
            request.resolve()
        with self._jobs_lock:
            if idempotency_key:
                known = self._idempotency.get(idempotency_key)
                if known is not None:
                    self.metrics.counter("admission_idempotent_replays").inc()
                    return self._jobs[known], True
        allowed, retry_after = self._allow_submit()
        if not allowed[0]:
            raise ServiceBusyError(allowed[1], allowed[2], retry_after)
        with self._jobs_lock:
            self._seq += 1
            job = Job(
                job_id=f"job-{self._seq:04d}",
                requests=list(requests),
                options=dict(options),
                idempotency_key=idempotency_key,
                events=collections.deque(maxlen=self.event_buffer),
            )
            self._jobs[job.job_id] = job
            if idempotency_key:
                self._idempotency[idempotency_key] = job.job_id
        # Write-ahead: the submit is durable before it is acknowledged.
        self._ledger_submit(job)
        self.metrics.counter("admission_accepted").inc()
        with self._cond:
            self._ready.append(job)
            self._cond.notify()
        return job, False

    def _allow_submit(self) -> Tuple[Tuple[bool, int, str], float]:
        """Admission verdict: ((allowed, status, message), retry_after)."""
        with self._breaker_lock:
            ok, retry_after = self.breaker.allow_submit()
        if not ok:
            self.metrics.counter("breaker_rejected").inc()
            return (
                (
                    False,
                    503,
                    "service degraded (read-only): backend workers keep "
                    "crashing; retry after the breaker cooldown",
                ),
                retry_after,
            )
        with self._jobs_lock:
            open_jobs = sum(1 for job in self._jobs.values() if job.open)
        if open_jobs >= self.max_queued:
            self.metrics.counter("admission_rejected").inc()
            return (
                (
                    False,
                    429,
                    f"queue full ({open_jobs}/{self.max_queued} open jobs)",
                ),
                1.0,
            )
        return (True, 0, ""), 0.0

    @staticmethod
    def _parse_request(entry: Any) -> Any:
        from repro.api import RunRequest

        if not isinstance(entry, dict):
            raise ValueError(f"each request must be an object, got {entry!r}")
        missing = [k for k in ("benchmark", "scheme", "length") if k not in entry]
        if missing:
            raise ValueError(f"request missing fields: {', '.join(missing)}")
        return RunRequest(
            benchmark=entry["benchmark"],
            scheme=entry["scheme"],
            length=int(entry["length"]),
        )

    # --- worker pool -----------------------------------------------------
    def start_workers(self) -> None:
        """Start the bounded cell-executor pool (idempotent)."""
        if self._workers:
            return
        for index in range(self._worker_count):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{index}",
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop and not self._ready:
                    self._cond.wait(0.2)
                if self._stop:
                    return
                job = self._ready.popleft()
            try:
                self._run_cell(job)
            except Exception as exc:  # pragma: no cover - last-resort guard
                self._finalize_failed(job, exc)

    def _run_cell(self, job: Job) -> None:
        """Run the job's next cell, then round-robin it back (or finish).

        One cell per turn is the fairness mechanism: with several open
        jobs each turn interleaves them, so a 100-cell suite cannot
        starve a 2-cell one submitted after it.
        """
        # Looked up at call time so tests can monkeypatch repro.api.run_suite.
        import repro.api as api_mod

        if job.status == "queued":
            job.status = "running"
            job.started_at = time.time()
            self._ledger_state(job, "running")
        index = job.cursor
        try:
            request = self._parse_request(job.requests[index])
            options = job.options
            part = api_mod.run_suite(
                [request],
                jobs=options.get("jobs", self.default_jobs),
                supervise=bool(options.get("supervise", False)),
                telemetry=options.get("telemetry"),
                sampling=options.get("sampling"),
                store=self.store,
                backend=options.get("backend", self.default_backend),
                observer=lambda item: job.add_event(_observer_event(item)),
                journal=self._job_journal(job),
                resume=self.state_dir is not None,
            )
        except Exception as exc:  # job failures are data, not crashes
            self._finalize_failed(job, exc)
            return
        self._feed_breaker(part)
        job.parts.append(part)
        job.cursor += 1
        self._after_cell()
        if job.cursor >= len(job.requests):
            self._finalize_done(job)
            return
        with self._cond:
            self._ready.append(job)
            self._cond.notify()

    def _feed_breaker(self, part: Any) -> None:
        """Feed one cell's outcome to the breaker (crashes vs. success)."""
        crashes = int(part.fault_counters.get("fault_worker_crashes", 0))
        crashes += sum(
            1
            for failure in part.failures
            if getattr(failure, "error_type", "") == "WorkerCrashError"
        )
        with self._breaker_lock:
            before = self.breaker.state
            if crashes > 0:
                for _ in range(crashes):
                    self.breaker.record_crash()
            else:
                self.breaker.record_success()
            after = self.breaker.state
            if after == "open" and before != "open":
                self.metrics.counter("breaker_trips").inc()
            if after == "closed" and before == "half_open":
                self.metrics.counter("breaker_resets").inc()

    def _after_cell(self) -> None:
        """Count a completed cell; fire the chaos SIGKILL drill if due."""
        with self._jobs_lock:
            self._cells_done += 1
            done = self._cells_done
        self.metrics.counter("service_cells_completed").inc()
        if (
            self.chaos is not None
            and self.chaos.kill_after_cells > 0
            and done == self.chaos.kill_after_cells
        ):
            # The restart drill: die exactly like a power cut would.
            os.kill(os.getpid(), signal.SIGKILL)

    def service_counters(self) -> Dict[str, int]:
        """The ``ledger_*``/``admission_*``/``breaker_*`` counter snapshot."""
        snapshot = {
            name: counter.value
            for name, counter in sorted(self.metrics.counters.items())
            if name.startswith(("ledger_", "admission_", "breaker_"))
        }
        snapshot["breaker_trips"] = self.breaker.trips
        snapshot["breaker_resets"] = self.breaker.resets
        return snapshot

    def _finalize_done(self, job: Job) -> None:
        from repro.sim.engine import SuiteResult

        merged = SuiteResult.merged(job.parts)
        # Fold the service-level counters into the suite's fault
        # counters so the PR 4/7 dashboards see them without changes.
        for name, value in self.service_counters().items():
            if value:
                merged.fault_counters[name] = value
        job.result_json = merged.to_json()
        result_path = self._result_path(job)
        if result_path is not None:
            # Result first, durably; the 'done' ledger record is the
            # commit point and must never point at a missing sidecar.
            durable_write(result_path, job.result_json)
        # In-memory status flips before the ledger record: a rotation
        # triggered by that very record compacts from the in-memory
        # snapshot, which must not still say "running".  (A crash in
        # between is safe — replay sees "running" and re-runs.)
        job.status = "done"
        job.finished_at = time.time()
        if result_path is not None:
            self._ledger_state(job, "done", result_path=str(result_path))
        job.add_event({"type": "status", "status": "done", "error": None})

    def _finalize_failed(self, job: Job, exc: BaseException) -> None:
        job.error = f"{type(exc).__name__}: {exc}"
        # Status before the ledger record, for the same rotation-
        # snapshot reason as in _finalize_done.
        job.status = "failed"
        job.finished_at = time.time()
        self._ledger_state(job, "failed", error=job.error)
        job.add_event({"type": "status", "status": "failed", "error": job.error})

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or ``None``."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Status summaries for every submitted job, oldest first."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        return [job.summary() for job in jobs]

    def health(self) -> Dict[str, Any]:
        """Liveness payload: service status, job counts, backend name."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        counts: Dict[str, int] = {}
        for job in jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        with self._breaker_lock:
            breaker_state = self.breaker.state
        return {
            "status": "ok",
            "jobs": counts,
            "backend": self.default_backend or "auto",
            "durable": self.state_dir is not None,
            "breaker": breaker_state,
        }

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """Whether the service should receive traffic, plus detail.

        Ready means the ledger replay finished, at least one worker is
        alive to run cells, and the breaker is not open (an open breaker
        is degraded read-only — traffic should prefer a healthy
        replica).
        """
        workers_alive = any(t.is_alive() for t in self._workers)
        with self._breaker_lock:
            breaker_state = self.breaker.state
        ready = self._recovered and workers_alive and breaker_state != "open"
        return ready, {
            "status": "ready" if ready else "not-ready",
            "ledger_replayed": self._recovered,
            "workers_alive": workers_alive,
            "breaker": breaker_state,
        }

    def close(self) -> None:
        """Stop the worker pool (running cells finish; queue drains not)."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for thread in self._workers:
            thread.join(timeout=2.0)

    # --- HTTP plumbing ---------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one HTTP connection: parse, dispatch, respond, close."""
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            route, _, query = path.partition("?")
            route = route.rstrip("/") or "/"
            if not self._apply_response_chaos(writer, method, route):
                return  # dropped connection
            if not self._authorized(route, headers):
                self.metrics.counter("service_auth_rejected").inc()
                await _send_json(
                    writer, 401, {"error": "missing or invalid bearer token"}
                )
                return
            await self._dispatch(writer, method, route, query, body)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _apply_response_chaos(
        self, writer: asyncio.StreamWriter, method: str, route: str
    ) -> bool:
        """Arm deterministic response chaos; False means drop now."""
        if self.chaos is None or route in _EXEMPT_PATHS:
            return True
        with self._jobs_lock:
            self._chaos_requests += 1
            token = f"{method}:{route}:{self._chaos_requests}"
        kind = self.chaos.decide_response(token)
        if kind is None:
            return True
        self.metrics.counter(f"service_chaos_{kind}").inc()
        if kind == "drop":
            return False
        # truncate / slow are applied where the response is written.
        writer._repro_chaos = (kind, self.chaos.slow_s)  # type: ignore[attr-defined]
        return True

    def _authorized(self, route: str, headers: Dict[str, str]) -> bool:
        if self.token is None or route in _EXEMPT_PATHS:
            return True
        supplied = headers.get("authorization", "")
        expected = f"Bearer {self.token}"
        # Constant-time compare: an attacker must not learn the token
        # one byte at a time from response timing.
        return hmac.compare_digest(
            supplied.encode("utf-8"), expected.encode("utf-8")
        )

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: str,
        body: bytes,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await _send_json(writer, 200, {"status": "ok"})
            return
        if path == "/readyz" and method == "GET":
            ready, detail = self.readiness()
            if ready:
                await _send_json(writer, 200, detail)
            else:
                await _send_json(
                    writer, 503, detail, extra_headers={"Retry-After": "1"}
                )
            return
        if path == "/v1/health" and method == "GET":
            await _send_json(writer, 200, self.health())
            return
        if path == "/v1/metrics" and method == "GET":
            await _send_json(writer, 200, self.metrics.as_dict())
            return
        if path == "/v1/suites" and method == "POST":
            await self._handle_submit(writer, body)
            return
        if path == "/v1/jobs" and method == "GET":
            await _send_json(writer, 200, {"jobs": self.list_jobs()})
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/") :]
            job_id, _, action = rest.partition("/")
            job = self.get(job_id)
            if job is None:
                await _send_json(
                    writer, 404, {"error": f"no such job: {job_id}"}
                )
                return
            if method != "GET":
                await _send_json(writer, 405, {"error": "GET only"})
                return
            if not action:
                await _send_json(writer, 200, job.summary())
            elif action == "result":
                await self._handle_result(writer, job)
            elif action == "events":
                await self._handle_events(writer, job, _since_param(query))
            else:
                await _send_json(
                    writer, 404, {"error": f"unknown action: {action}"}
                )
            return
        await _send_json(writer, 404, {"error": f"unknown path: {path}"})

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            requests = payload.get("requests")
            if not isinstance(requests, list):
                raise ValueError("body must carry a 'requests' list")
            options = {
                key: payload[key]
                for key in (
                    "jobs", "supervise", "backend", "telemetry", "sampling",
                )
                if key in payload
            }
            job, replayed = self.submit_job(
                requests,
                options,
                idempotency_key=payload.get("idempotency_key"),
            )
        except ServiceBusyError as busy:
            await _send_json(
                writer,
                busy.status,
                {"error": str(busy)},
                extra_headers={"Retry-After": f"{busy.retry_after_s:.1f}"},
            )
            return
        except (ValueError, json.JSONDecodeError) as exc:
            await _send_json(writer, 400, {"error": str(exc)})
            return
        # 202 = newly accepted; 200 = idempotent replay of a known job.
        await _send_json(
            writer,
            200 if replayed else 202,
            {"job": job.job_id, "status": job.status, "replayed": replayed},
        )

    async def _handle_result(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        if job.status == "failed":
            await _send_json(
                writer, 500, {"job": job.job_id, "error": job.error}
            )
        elif job.status != "done" or job.result_json is None:
            await _send_json(
                writer,
                409,
                {"job": job.job_id, "status": job.status,
                 "error": "job not finished"},
            )
        else:
            await _send_raw(
                writer, 200, job.result_json.encode("utf-8"),
                "application/json",
            )

    async def _handle_events(
        self, writer: asyncio.StreamWriter, job: Job, since: int
    ) -> None:
        headers = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(headers.encode("latin-1"))
        cursor = max(0, since)
        warned_gap = False
        while True:
            fresh, oldest = job.events_from(cursor)
            if not warned_gap and oldest > cursor and job.dropped_events:
                # The ring wrapped past this cursor: say so instead of
                # silently skipping events the client will never see.
                writer.write(
                    (
                        json.dumps(
                            {
                                "type": "gap",
                                "missing": oldest - cursor,
                                "resume_seq": oldest,
                            }
                        )
                        + "\n"
                    ).encode("utf-8")
                )
                warned_gap = True
            for event in fresh:
                writer.write((json.dumps(event) + "\n").encode("utf-8"))
            if fresh:
                cursor = fresh[-1]["seq"] + 1
            await writer.drain()
            if fresh and fresh[-1].get("type") == "status":
                return
            if job.done and not job.events_since(cursor):
                # Job finished before its terminal event landed; re-check
                # once more next tick rather than racing it.
                await asyncio.sleep(_STREAM_POLL_S)
                tail = job.events_since(cursor)
                if not tail:
                    return
                continue
            await asyncio.sleep(_STREAM_POLL_S)


def _wire_options(options: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-safe subset of job options that belongs in the ledger."""
    return {
        key: options[key]
        for key in ("jobs", "supervise", "backend", "telemetry", "sampling")
        if key in options and options[key] is not None
    }


def _since_param(query: str) -> int:
    """The ``since`` cursor from an ``/events`` query string (default 0)."""
    try:
        values = urllib.parse.parse_qs(query).get("since")
        return int(values[0]) if values else 0
    except (ValueError, TypeError):
        return 0


async def _send_raw(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    reason = {
        200: "OK", 202: "Accepted", 400: "Bad Request",
        401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
        409: "Conflict", 429: "Too Many Requests",
        500: "Internal Server Error", 503: "Service Unavailable",
    }.get(status, "OK")
    extras = "".join(
        f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    chaos = getattr(writer, "_repro_chaos", None)
    if chaos is not None:
        kind, slow_s = chaos
        if kind == "truncate":
            # Full Content-Length, half the body: the client sees an
            # IncompleteRead and must retry.
            writer.write(head + body[: len(body) // 2])
            await writer.drain()
            return
        if kind == "slow":
            # Slow-loris: dribble the body out so client socket
            # timeouts (not patience) decide when to give up.
            writer.write(head)
            await writer.drain()
            for start in range(0, len(body), 64):
                writer.write(body[start : start + 64])
                await writer.drain()
                await asyncio.sleep(slow_s)
            return
    writer.write(head + body)
    await writer.drain()


async def _send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Dict[str, Any],
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    await _send_raw(
        writer, status, json.dumps(payload).encode("utf-8"),
        "application/json", extra_headers=extra_headers,
    )


async def _serve_async(
    service: SweepService, host: str, port: int,
    ready: Optional["threading.Event"] = None,
    bound: Optional[List[Tuple[str, int]]] = None,
) -> None:
    server = await asyncio.start_server(service.handle, host, port)
    addresses = [sock.getsockname()[:2] for sock in server.sockets or []]
    if bound is not None:
        bound.extend(addresses)
    if ready is not None:
        ready.set()
    shown = ", ".join(f"http://{h}:{p}" for h, p in addresses)
    print(f"repro serve: listening on {shown}", flush=True)
    async with server:
        await server.serve_forever()


def serve(
    host: str = "127.0.0.1",
    port: int = 8712,
    *,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    store: bool = True,
    max_concurrent: int = 1,
    state_dir: Union[None, str, Path] = None,
    max_queued: int = DEFAULT_MAX_QUEUED,
    token: Optional[str] = None,
    chaos: Union[None, str, ServiceChaosConfig] = None,
) -> None:
    """Run the sweep service until interrupted (the ``repro serve`` body)."""
    service = SweepService(
        jobs=jobs,
        backend=backend,
        store=store,
        max_concurrent=max_concurrent,
        state_dir=state_dir,
        max_queued=max_queued,
        token=token,
        chaos=chaos,
    )
    try:
        asyncio.run(_serve_async(service, host, port))
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    finally:
        service.close()
