"""Simulation driving: system assembly, runners, engine, reporting."""

from repro.sim.charts import bar_chart, grouped_bar_chart
from repro.sim.config import MemoryTimingParams, RunConfig
from repro.sim.events import EventQueue
from repro.sim.engine import (
    RunRecord,
    RunSpec,
    SuiteResult,
    resolve_jobs,
    run_grid,
)
from repro.sim.reporting import (
    format_table,
    geomean,
    normalized_ipc,
    overhead,
    overhead_reduction,
    suite_normalized_rows,
)
from repro.sim.runner import (
    RunResult,
    SeededResult,
    TraceCache,
    default_trace_length,
    run_benchmark,
    run_benchmark_seeds,
    run_suite,
)
from repro.sim.store import ResultStore, default_store_root, run_key
from repro.sim.sweep import lpt_size_variants, recon_level_variants
from repro.sim.system import System, SystemResult

__all__ = [
    "EventQueue",
    "MemoryTimingParams",
    "ResultStore",
    "RunConfig",
    "RunRecord",
    "RunResult",
    "RunSpec",
    "SeededResult",
    "SuiteResult",
    "System",
    "SystemResult",
    "TraceCache",
    "bar_chart",
    "default_store_root",
    "default_trace_length",
    "format_table",
    "geomean",
    "grouped_bar_chart",
    "lpt_size_variants",
    "normalized_ipc",
    "overhead",
    "overhead_reduction",
    "recon_level_variants",
    "resolve_jobs",
    "run_benchmark",
    "run_benchmark_seeds",
    "run_grid",
    "run_key",
    "run_suite",
    "suite_normalized_rows",
]
