"""Simulation driving: system assembly, runners, engine, reporting."""

from repro.sim.backends import (
    BACKEND_NAMES,
    BackendHealth,
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    QueueBackend,
    TaskTimeout,
    ThreadBackend,
    WorkerDeath,
    resolve_backend,
)
from repro.sim.charts import bar_chart, grouped_bar_chart
from repro.sim.chaos import (
    ChaosConfig,
    ChaosFault,
    ServiceChaosConfig,
    parse_chaos,
    parse_service_chaos,
)
from repro.sim.ledger import JobLedger, JobSnapshot, durable_write
from repro.sim.config import MemoryTimingParams, RunConfig
from repro.sim.events import EventQueue
from repro.sim.engine import (
    RunRecord,
    RunSpec,
    SuiteResult,
    resolve_jobs,
    run_grid,
)
from repro.sim.reporting import (
    failure_rows,
    format_ipc,
    format_table,
    geomean,
    normalized_ipc,
    overhead,
    overhead_reduction,
    suite_normalized_rows,
)
from repro.sim.supervisor import (
    FaultPolicy,
    RunFailure,
    SuiteJournal,
    Supervisor,
    default_journal_path,
)
from repro.sim.runner import (
    RunResult,
    SeededResult,
    TraceCache,
    default_trace_length,
    run_benchmark,
    run_benchmark_seeds,
    run_suite,
)
from repro.sim.store import ResultStore, default_store_root, run_key
from repro.sim.sweep import lpt_size_variants, recon_level_variants
from repro.sim.system import System, SystemResult

__all__ = [
    "BACKEND_NAMES",
    "BackendHealth",
    "ChaosConfig",
    "ChaosFault",
    "EventQueue",
    "ExecutionBackend",
    "FaultPolicy",
    "InlineBackend",
    "JobLedger",
    "JobSnapshot",
    "ProcessBackend",
    "QueueBackend",
    "TaskTimeout",
    "ThreadBackend",
    "WorkerDeath",
    "MemoryTimingParams",
    "ResultStore",
    "RunConfig",
    "RunFailure",
    "RunRecord",
    "RunResult",
    "RunSpec",
    "SeededResult",
    "ServiceChaosConfig",
    "SuiteJournal",
    "SuiteResult",
    "Supervisor",
    "System",
    "SystemResult",
    "TraceCache",
    "bar_chart",
    "default_journal_path",
    "default_store_root",
    "default_trace_length",
    "durable_write",
    "failure_rows",
    "format_ipc",
    "format_table",
    "geomean",
    "grouped_bar_chart",
    "lpt_size_variants",
    "normalized_ipc",
    "overhead",
    "overhead_reduction",
    "parse_chaos",
    "parse_service_chaos",
    "recon_level_variants",
    "resolve_backend",
    "resolve_jobs",
    "run_benchmark",
    "run_benchmark_seeds",
    "run_grid",
    "run_key",
    "run_suite",
    "suite_normalized_rows",
]
