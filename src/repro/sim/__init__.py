"""Simulation driving: system assembly, runners, sweeps, reporting."""

from repro.sim.charts import bar_chart, grouped_bar_chart
from repro.sim.reporting import (
    format_table,
    geomean,
    normalized_ipc,
    overhead,
    overhead_reduction,
    suite_normalized_rows,
)
from repro.sim.runner import (
    RunResult,
    TraceCache,
    default_trace_length,
    run_benchmark,
    run_suite,
)
from repro.sim.sweep import lpt_size_variants, recon_level_variants
from repro.sim.system import System, SystemResult

__all__ = [
    "RunResult",
    "System",
    "bar_chart",
    "grouped_bar_chart",
    "SystemResult",
    "TraceCache",
    "default_trace_length",
    "format_table",
    "geomean",
    "lpt_size_variants",
    "normalized_ipc",
    "overhead",
    "overhead_reduction",
    "recon_level_variants",
    "run_benchmark",
    "run_suite",
    "suite_normalized_rows",
]
