"""Deterministic, seeded fault injection for the experiment engine.

The supervision layer (:mod:`repro.sim.supervisor`) promises that a
suite always completes with accurate per-cell failure records — worker
crashes, hangs, corrupted payloads, and memory exhaustion included.
This module exists to *prove* that promise: a :class:`ChaosConfig` on
:class:`~repro.sim.config.RunConfig` (CLI ``--chaos``) makes workers
misbehave on a deterministic subset of run keys, so tests and the CI
``chaos-smoke`` job can assert that every failure mode ends in a
complete suite, never a hung or dead runner.

Determinism is the point: the fault decision for a run is a pure
function of ``(chaos seed, run key, attempt number)`` — a SHA-256 hash
mapped to the unit interval and compared against the configured fault
probabilities.  Chaos seed X therefore always fails the same cells, on
any machine, in any worker, regardless of scheduling order; tests can
compute the expected casualty list with :meth:`ChaosConfig.decide`
before running anything.

Fault semantics differ between pool workers and the supervising
process (``jobs=1`` or degraded-inline execution), because a fault that
kills the parent would defeat the harness:

========  ============================  =================================
fault     in a pool worker              inline (parent process)
========  ============================  =================================
crash     ``os._exit`` (hard death,     raises :class:`ChaosFault`
          exercises BrokenProcessPool)
hang      sleeps ``hang_s`` before      raises :class:`ChaosFault`
          running (trips the timeout)   (inline runs are not preemptible)
corrupt   returns a garbage payload     returns a garbage payload
          instead of a result
oom       raises ``MemoryError``        raises ``MemoryError``
          (simulated allocator failure
          — no real memory is consumed)
========  ============================  =================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Any, Optional

__all__ = [
    "CORRUPT_PAYLOAD",
    "ChaosConfig",
    "ChaosFault",
    "ServiceChaosConfig",
    "inject",
    "mark_worker_process",
    "parse_chaos",
    "parse_service_chaos",
]

#: Exit status of a chaos-crashed worker (visible in pool diagnostics).
CRASH_EXIT_CODE = 23

#: The garbage a corrupt-fault worker returns in place of a RunResult.
CORRUPT_PAYLOAD: Any = {"chaos": "corrupt payload"}

#: Set in each pool worker by :func:`mark_worker_process` (the pool
#: initializer) so process-level faults know it is safe to fire.
_IN_WORKER = False


def mark_worker_process() -> None:
    """Mark this process as a pool worker (pool initializer hook)."""
    global _IN_WORKER
    _IN_WORKER = True


class ChaosFault(RuntimeError):
    """An injected fault, raised when process-level chaos runs inline."""

    def __init__(self, kind: str, key: str, attempt: int) -> None:
        super().__init__(
            f"chaos: injected {kind} fault (key={key[:12]}, attempt={attempt})"
        )
        self.kind = kind
        self.key = key
        self.attempt = attempt


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection plan for an experiment run.

    Attributes:
        seed: determinism seed; the fault decision for a run is a pure
            function of ``(seed, run key, attempt)``.
        crash: probability a worker dies hard (``os._exit``) mid-run.
        hang: probability a worker sleeps ``hang_s`` seconds before
            running (long enough to trip a per-run timeout).
        corrupt: probability a worker returns a garbage payload instead
            of a :class:`~repro.sim.runner.RunResult`.
        oom: probability a worker raises ``MemoryError`` (simulated
            allocator exhaustion — no real memory is consumed, so the
            harness is safe to run anywhere).
        hang_s: how long an injected hang sleeps.  Finite so that an
            un-supervised run (no timeout) still terminates eventually.
        faulty_attempts: inject only on attempt numbers below this
            bound; ``None`` faults every attempt (a *permanent* fault
            that exhausts retries), ``1`` faults only the first attempt
            (a *transient* fault that a retry recovers from).
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    oom: float = 0.0
    hang_s: float = 30.0
    faulty_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("crash", "hang", "corrupt", "oom"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"chaos {name} rate must be in [0, 1]")
        if self.crash + self.hang + self.corrupt + self.oom > 1.0 + 1e-9:
            raise ValueError("chaos fault rates must sum to at most 1")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")
        if self.faulty_attempts is not None and self.faulty_attempts <= 0:
            raise ValueError("faulty_attempts must be positive (or None)")

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault for ``(key, attempt)``: a kind name or ``None``.

        Deterministic: hashes ``(seed, key, attempt)`` to a uniform
        draw in ``[0, 1)`` and walks the cumulative fault probabilities
        in a fixed order (crash, hang, corrupt, oom).
        """
        if self.faulty_attempts is not None and attempt >= self.faulty_attempts:
            return None
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        edge = 0.0
        for kind in ("crash", "hang", "corrupt", "oom"):
            edge += getattr(self, kind)
            if draw < edge:
                return kind
        return None

    def active(self) -> bool:
        """Whether any fault can ever fire under this config."""
        return (self.crash + self.hang + self.corrupt + self.oom) > 0.0


def inject(
    chaos: Optional[ChaosConfig], key: str, attempt: int
) -> Optional[str]:
    """Fire the configured fault for ``(key, attempt)``, if any.

    Returns ``"corrupt"`` when the caller must substitute
    :data:`CORRUPT_PAYLOAD` for its result, ``None`` when the run should
    proceed normally.  Crash/oom faults do not return (process exit or
    raise); a hang fault sleeps ``hang_s`` in a worker and raises
    :class:`ChaosFault` inline (see the module docstring's table).
    """
    if chaos is None:
        return None
    kind = chaos.decide(key, attempt)
    if kind is None:
        return None
    if kind == "crash":
        if _IN_WORKER:
            os._exit(CRASH_EXIT_CODE)
        raise ChaosFault(kind, key, attempt)
    if kind == "hang":
        if _IN_WORKER:
            time.sleep(chaos.hang_s)
            return None
        raise ChaosFault(kind, key, attempt)
    if kind == "oom":
        raise MemoryError(
            f"chaos: simulated allocator exhaustion "
            f"(key={key[:12]}, attempt={attempt})"
        )
    return "corrupt"


@dataclasses.dataclass(frozen=True)
class ServiceChaosConfig:
    """Seeded fault injection for the sweep *service* layer.

    Where :class:`ChaosConfig` breaks simulation workers,
    ``ServiceChaosConfig`` breaks the HTTP service itself, so tests can
    prove the client retry loop and the crash-safe job ledger
    (:mod:`repro.sim.ledger`) hold up:

    * ``drop`` — close the connection without sending a response;
    * ``truncate`` — send the headers plus only half the body, then
      close (an ``IncompleteRead`` on the client);
    * ``slow`` — a slow-loris response: dribble the body out one chunk
      at a time, ``slow_s`` apart (trips client socket timeouts);
    * ``kill_after_cells`` — SIGKILL the whole service process after it
      completes its Nth suite cell (the restart/resume drill).

    Response faults are a pure function of ``(seed, request token)``
    via the same SHA-256-to-unit-interval draw as worker chaos, so a
    given seed always breaks the same requests.  Health endpoints are
    never chaosed — a drill must still be able to tell the service is
    up.
    """

    seed: int = 0
    drop: float = 0.0
    truncate: float = 0.0
    slow: float = 0.0
    slow_s: float = 0.5
    kill_after_cells: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "truncate", "slow"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"service chaos {name} rate must be in [0, 1]")
        if self.drop + self.truncate + self.slow > 1.0 + 1e-9:
            raise ValueError("service chaos fault rates must sum to at most 1")
        if self.slow_s <= 0:
            raise ValueError("slow_s must be positive")
        if self.kill_after_cells < 0:
            raise ValueError("kill_after_cells cannot be negative")

    def decide_response(self, token: str) -> Optional[str]:
        """The response fault for one request token, or ``None``.

        Deterministic: hashes ``(seed, token)`` to a uniform draw in
        ``[0, 1)`` and walks the cumulative fault probabilities in a
        fixed order (drop, truncate, slow).
        """
        digest = hashlib.sha256(
            f"{self.seed}:{token}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        edge = 0.0
        for kind in ("drop", "truncate", "slow"):
            edge += getattr(self, kind)
            if draw < edge:
                return kind
        return None

    def active(self) -> bool:
        """Whether any service fault can ever fire under this config."""
        return (
            self.drop + self.truncate + self.slow > 0.0
            or self.kill_after_cells > 0
        )


def parse_service_chaos(text: Optional[str]) -> Optional[ServiceChaosConfig]:
    """Parse a ``repro serve --chaos`` spec into a config (or ``None``).

    Same comma-separated ``name=value`` grammar as :func:`parse_chaos`;
    fields are ``seed``, ``drop``, ``truncate``, ``slow``, ``slow_s``,
    and ``kill_after_cells``, e.g.
    ``"seed=7,drop=0.3,kill_after_cells=2"``.
    """
    if text is None or not text.strip():
        return None
    fields = {
        "seed": int,
        "drop": float,
        "truncate": float,
        "slow": float,
        "slow_s": float,
        "kill_after_cells": int,
    }
    kwargs: dict = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(
                f"service chaos spec entries must be name=value, got {token!r}"
            )
        name, _, raw = token.partition("=")
        name = name.strip()
        if name not in fields:
            raise ValueError(
                f"unknown service chaos field {name!r}; "
                f"choose from {sorted(fields)}"
            )
        try:
            kwargs[name] = fields[name](raw.strip())
        except ValueError:
            raise ValueError(
                f"service chaos field {name!r} needs a "
                f"{fields[name].__name__}, got {raw.strip()!r}"
            ) from None
    return ServiceChaosConfig(**kwargs)


def parse_chaos(text: Optional[str]) -> Optional[ChaosConfig]:
    """Parse a CLI ``--chaos`` spec into a :class:`ChaosConfig`.

    The spec is a comma list of ``name=value`` pairs, e.g.
    ``"seed=7,crash=0.2,hang=0.1,corrupt=0.1,attempts=1"``; ``attempts``
    maps to :attr:`ChaosConfig.faulty_attempts` and ``hang_s`` sets the
    injected-hang duration.  ``None``/empty returns ``None`` (chaos
    off); unknown names or malformed values raise ``ValueError``.
    """
    if text is None or not text.strip():
        return None
    fields = {
        "seed": int,
        "crash": float,
        "hang": float,
        "corrupt": float,
        "oom": float,
        "hang_s": float,
        "attempts": int,
    }
    kwargs: dict = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(
                f"chaos spec entries must be name=value, got {token!r}"
            )
        name, _, raw = token.partition("=")
        name = name.strip()
        if name not in fields:
            raise ValueError(
                f"unknown chaos field {name!r}; "
                f"choose from {sorted(fields)}"
            )
        try:
            value = fields[name](raw.strip())
        except ValueError:
            raise ValueError(
                f"chaos field {name!r} needs a "
                f"{fields[name].__name__}, got {raw.strip()!r}"
            ) from None
        kwargs["faulty_attempts" if name == "attempts" else name] = value
    return ChaosConfig(**kwargs)
