"""Run configuration for the experiment entry points.

A :class:`RunConfig` bundles the knobs that used to be plumbed through
``run_benchmark`` / ``run_benchmark_seeds`` / ``run_suite`` as separate
keyword arguments (``params``, ``threads``, ``cache``, ``warmup_uops``).
The entry points now take ``config: RunConfig`` (keyword-only); the old
kwargs are still accepted for one release behind a ``DeprecationWarning``
shim (:func:`coerce_config`).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import TYPE_CHECKING, Any, Optional

from repro.common.params import MemoryTimingParams, SystemParams
from repro.sampling.config import SamplingConfig
from repro.sim.chaos import ChaosConfig
from repro.telemetry.events import TelemetryConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle (runner imports config)
    from repro.sim.runner import TraceCache

__all__ = ["MemoryTimingParams", "RunConfig", "UNSET", "coerce_config"]


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit ``None``."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<UNSET>"


#: Default value of the deprecated legacy kwargs on the public entry points.
UNSET: Any = _Unset()


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """How to run an experiment (everything except *what* to run).

    Attributes:
        params: system configuration; ``None`` means the Table-2 defaults
            sized for ``threads`` cores.
        threads: parallel workload threads (= simulated cores).
        warmup_uops: detailed-warm-up prefix excluded from reported stats;
            ``None`` means the default 40% of the trace.
        cache: trace cache shared across runs; ``None`` uses the
            process-global cache.  Excluded from equality/hashing — it is
            an execution detail, not part of the experiment identity.
        telemetry: event-tracing configuration; ``None`` (the default)
            disables telemetry entirely — the simulator runs with the
            null collector and bit-identical results.  Like ``cache``,
            telemetry observes a run without changing its outcome, so it
            is excluded from the result-store identity (runs with
            telemetry enabled bypass the store instead).
        chaos: fault-injection plan (CLI ``--chaos``); ``None`` (the
            default) injects nothing.  Chaos exists to exercise the
            engine's supervision layer (:mod:`repro.sim.supervisor`) —
            setting it routes grid execution through the supervisor.
            Like ``telemetry`` it is excluded from the result-store
            run key, but chaos runs never consult or populate the
            store anyway (a chaos sweep must not poison real results).
        sampling: statistical-sampling configuration
            (:class:`~repro.sampling.config.SamplingConfig`); ``None``
            (the default) runs exact detailed simulation, bit-identical
            to configurations that predate sampling.  Unlike
            ``telemetry``, sampling changes the produced numbers, so it
            *does* join the result-store run key — but only when set,
            keeping exact-mode keys stable.  Sampling and telemetry are
            mutually exclusive (sampled runs skip most of the trace, so
            an event stream would be misleadingly sparse).
    """

    params: Optional[SystemParams] = None
    threads: int = 1
    warmup_uops: Optional[int] = None
    cache: Optional["TraceCache"] = dataclasses.field(
        default=None, compare=False, repr=False
    )
    telemetry: Optional[TelemetryConfig] = None
    chaos: Optional[ChaosConfig] = None
    sampling: Optional[SamplingConfig] = None

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.warmup_uops is not None and self.warmup_uops < 0:
            raise ValueError("warmup_uops cannot be negative")
        if self.sampling is not None and self.telemetry is not None:
            raise ValueError(
                "sampling and telemetry cannot be combined: a sampled "
                "run detail-simulates only measurement units, so the "
                "event stream would cover a sliver of the trace"
            )

    def resolved_params(self) -> SystemParams:
        """The effective :class:`SystemParams` (defaults filled in)."""
        if self.params is not None:
            return self.params
        return SystemParams(num_cores=self.threads)

    def resolved_warmup(self, length: int) -> int:
        """The effective warm-up prefix for a trace of ``length`` uops."""
        if self.warmup_uops is not None:
            return self.warmup_uops
        return (length * 2) // 5

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (dataclasses.replace sugar)."""
        return dataclasses.replace(self, **changes)


def coerce_config(
    config: Optional[RunConfig],
    *,
    params: Any = UNSET,
    threads: Any = UNSET,
    cache: Any = UNSET,
    warmup_uops: Any = UNSET,
) -> RunConfig:
    """Merge the deprecated per-knob kwargs into a :class:`RunConfig`.

    Passing any legacy kwarg emits a :class:`DeprecationWarning`; passing
    both a legacy kwarg and ``config`` is an error (ambiguous intent).
    """
    legacy = {
        name: value
        for name, value in (
            ("params", params),
            ("threads", threads),
            ("cache", cache),
            ("warmup_uops", warmup_uops),
        )
        if value is not UNSET
    }
    if legacy:
        if config is not None:
            raise TypeError(
                "pass either config=RunConfig(...) or the legacy kwargs "
                f"({', '.join(sorted(legacy))}), not both"
            )
        passed = ", ".join(sorted(legacy))
        fields = ", ".join(f"{name}=..." for name in sorted(legacy))
        warnings.warn(
            f"the {passed} kwarg{'s are' if len(legacy) > 1 else ' is'} "
            f"deprecated; each maps to the RunConfig field of the same "
            f"name — pass config=RunConfig({fields}) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return RunConfig(**legacy)
    return config if config is not None else RunConfig()
