"""Fault-tolerant supervision around the parallel experiment engine.

The plain engine path (:func:`repro.sim.engine.execute_specs`) is
fail-fast: one worker crash, hang, or corrupted payload kills the whole
suite.  The :class:`Supervisor` wraps the same fan-out with the
guarantees a long sweep needs:

* **per-run wall-clock timeouts** — a run that exceeds its deadline is
  cancelled by the backend (pool teardown or a targeted worker kill),
  surfaces as a typed :class:`~repro.sim.backends.TaskTimeout`, is
  charged an attempt, and innocent in-flight runs are requeued without
  charge;
* **bounded retries** with exponential backoff and deterministic
  seeded jitter;
* **worker-death recovery** — a dead worker surfaces as a typed
  :class:`~repro.sim.backends.WorkerDeath`.  When the backend can
  attribute the crash with certainty (a task alone in a process pool,
  or a leased task in the queue backend) the run is charged an
  attempt; otherwise every co-flying spec becomes a *suspect* that is
  re-verified solo (one spec in flight at a time), so the actual
  crasher is identified and innocents are never charged;
* **graceful degradation** — after ``max_pool_restarts`` crash-driven
  backend restarts the remaining work runs inline in the parent,
  where a process-level chaos fault degrades to an exception;
* **checkpoint/resume** — a :class:`SuiteJournal` (JSON-lines file next
  to the result store) records every completed/failed run key, so an
  interrupted sweep restarts where it left off and previously-exhausted
  failures are replayed instead of re-run;
* **first-class failures** — a run that exhausts its retries becomes a
  :class:`RunFailure` (exception type, message, traceback, attempt
  count, worker pid, hang diagnostics) carried through
  :class:`~repro.sim.engine.SuiteResult`, the suite JSON artifact, and
  reporting, instead of an exception that destroys the suite.

The supervisor is **backend-agnostic**: it consumes the
:class:`~repro.sim.backends.ExecutionBackend` contract
(:mod:`repro.sim.backends`) and never touches ``ProcessPoolExecutor``
or ``BrokenProcessPool`` directly.  ``backend=`` selects the substrate
(``inline`` / ``threads`` / ``process`` / ``queue``); the default keeps
the historical behavior — inline for ``jobs=1``, a process pool above.

Supervision is observable: the supervisor owns a telemetry collector
restricted to the :data:`~repro.telemetry.events.CAT_FAULT` category and
bumps ``fault_*`` counters (retries, timeouts, worker crashes, corrupt
payloads, pool restarts, exhausted cells) in its metrics registry; the
backend's ``backend_*`` counters (steals, worker deaths, queue depth)
are folded in at the end of a sweep, and the combined snapshot rides on
``SuiteResult.fault_counters``.

Timeouts require a preemptible backend: inline/thread runs are not
preemptible, so their timeouts are recorded post-hoc but cannot
interrupt a genuinely hung simulation.  Run chaos/hang workloads with
``jobs >= 2`` (process) or the queue backend.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.sim.backends.base import (
    CorruptResultError,
    ExecutionBackend,
    TaskTimeout,
    WorkerDeath,
    error_envelope as _error_payload,
    parse_envelope as _parse_payload,
    resolve_backend,
    run_task as _supervised_execute,
)
from repro.sim.engine import (
    RunRecord,
    RunSpec,
    _progress_line,
    _record,
    resolve_jobs,
)
from repro.sim.runner import RunResult
from repro.sim.store import ResultStore
from repro.telemetry.events import CAT_FAULT, TelemetryCollector, TelemetryConfig

__all__ = [
    "CorruptResultError",
    "FaultPolicy",
    "RunFailure",
    "SuiteJournal",
    "Supervisor",
    "default_journal_path",
]


@dataclasses.dataclass(frozen=True)
class FaultPolicy:
    """How the supervisor reacts to failing runs.

    Attributes:
        timeout_s: per-run wall-clock budget; ``None`` disables
            timeouts.  Enforced by the backend's preemption mechanism
            (pool teardown, targeted worker kill), so it only cancels
            runs on preemptible backends — inline/thread runs are not
            preemptible.
        retries: additional attempts after the first failure (total
            attempts = ``retries + 1``).
        backoff_s: base delay before the first retry; doubles per
            attempt up to ``backoff_cap_s``.
        backoff_cap_s: upper bound on the backoff delay.
        jitter: random fraction added to each backoff (``0.25`` means
            up to +25%), drawn from a generator seeded with ``seed`` so
            scheduling is reproducible.
        seed: jitter RNG seed.
        max_pool_restarts: crash-driven backend respawns tolerated
            before degrading to inline execution (timeout-driven
            restarts are bounded by per-run retries and do not count).
        degrade_inline: whether to fall back to inline execution after
            ``max_pool_restarts`` is exceeded; when ``False`` the
            remaining runs fail with ``PoolExhaustedError`` records.
    """

    timeout_s: Optional[float] = None
    retries: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    max_pool_restarts: int = 5
    degrade_inline: bool = True

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries cannot be negative")
        if self.backoff_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.jitter < 0:
            raise ValueError("jitter cannot be negative")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts cannot be negative")

    def backoff_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        base = min(self.backoff_cap_s, self.backoff_s * (2 ** max(0, attempt - 1)))
        return base * (1.0 + self.jitter * rng.random())


@dataclasses.dataclass
class RunFailure:
    """A run that exhausted its attempts, as a first-class record.

    Carried through :class:`~repro.sim.engine.SuiteResult`, the suite
    JSON artifact, and reporting (``n/a`` rows) so a 12-cell sweep with
    one sick cell still produces a complete, resumable report.
    """

    bench: str
    scheme: SchemeKind
    seed: int
    key: Optional[str]
    error_type: str
    message: str
    traceback: str
    attempts: int
    worker_pid: Optional[int]
    wall_time_s: float
    #: Hang diagnostics when the failure was a SimulationHangError
    #: (cycle, ROB-head seqs, MSHR occupancy, event-queue depth).
    diagnostics: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (scheme as its string value)."""
        data = dataclasses.asdict(self)
        data["scheme"] = self.scheme.value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunFailure":
        """Rebuild a failure from :meth:`as_dict` output."""
        data = dict(data)
        data["scheme"] = SchemeKind(data["scheme"])
        return cls(**data)


def default_journal_path(store: Optional[ResultStore]) -> Path:
    """Where the checkpoint journal lives: next to the result store."""
    if store is not None:
        return Path(store.root) / "journal.jsonl"
    return Path("results") / "journal.jsonl"


class SuiteJournal:
    """Append-only JSON-lines checkpoint of completed/failed run keys.

    One line per outcome: ``{"key": ..., "status": "done", "record":
    {...}}`` or ``{"key": ..., "status": "failed", "failure": {...}}``.
    Appends are flushed and fsynced so a SIGKILL of the runner loses at
    most the entry being written; :meth:`load` tolerates a torn final
    line (and any malformed line) by skipping it.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Entries by run key (last write wins; torn lines skipped)."""
        entries: Dict[str, Dict[str, Any]] = {}
        try:
            text = self.path.read_text(errors="replace")
        except OSError:
            return entries
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail from a killed writer
            key = entry.get("key") if isinstance(entry, dict) else None
            if isinstance(key, str) and entry.get("status") in ("done", "failed"):
                entries[key] = entry
        return entries

    def record_done(self, key: str, record: RunRecord) -> None:
        """Checkpoint a completed run."""
        self._append({"key": key, "status": "done", "record": record.as_dict()})

    def record_failed(self, key: str, failure: RunFailure) -> None:
        """Checkpoint a run that exhausted its attempts."""
        self._append(
            {"key": key, "status": "failed", "failure": failure.as_dict()}
        )

    def clear(self) -> None:
        """Delete the journal file (a fresh, non-resumed sweep)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    def _append(self, entry: Dict[str, Any]) -> None:
        # One unbuffered O_APPEND write + fsync per checkpoint: a crash
        # can tear only the entry being written, never smear a partial
        # buffer flush across already-acknowledged lines.
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        existed = self.path.exists()
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        if not existed:
            from repro.sim.ledger import fsync_directory

            fsync_directory(self.path.parent)


def _validate_result(spec: RunSpec, result: Any) -> RunResult:
    """Check a worker payload is a sane result for ``spec`` or raise."""
    if not isinstance(result, RunResult):
        raise CorruptResultError(
            f"worker returned {type(result).__name__}, not a RunResult"
        )
    if not isinstance(result.stats, StatSet):
        raise CorruptResultError("result.stats is not a StatSet")
    if not isinstance(result.cycles, int) or result.cycles < 0:
        raise CorruptResultError(f"result.cycles invalid: {result.cycles!r}")
    if not result.per_core or not all(
        isinstance(core, StatSet) for core in result.per_core
    ):
        raise CorruptResultError("result.per_core is not a list of StatSets")
    if result.scheme != spec.scheme:
        raise CorruptResultError(
            f"result scheme {result.scheme} does not match spec {spec.scheme}"
        )
    if result.profile.name != spec.profile.name:
        raise CorruptResultError(
            f"result profile {result.profile.name!r} does not match "
            f"spec {spec.profile.name!r}"
        )
    return result


@dataclasses.dataclass
class _Pending:
    """Supervisor-side state of one not-yet-settled spec."""

    index: int
    spec: RunSpec
    key: Optional[str]
    attempts: int = 0
    eligible_at: float = 0.0
    solo: bool = False  # suspect after a worker death: verify alone
    last_error: Optional[Tuple[Any, ...]] = None


class Supervisor:
    """Executes specs with timeouts, retries, and worker recovery.

    The result of :meth:`execute` is ``(results, records, failures)``:
    ``results``/``records`` align with the spec list (``None`` holes for
    failed cells) and ``failures`` holds one :class:`RunFailure` per
    exhausted cell, in spec order.

    ``backend`` selects the execution substrate (a registry name or an
    :class:`~repro.sim.backends.ExecutionBackend` instance; default:
    inline for ``jobs=1``, process pool above).  ``observer``, when
    given, is called with each settled :class:`RunRecord` /
    :class:`RunFailure` as it lands — the service layer streams these.
    """

    def __init__(
        self,
        policy: Optional[FaultPolicy] = None,
        *,
        jobs: Optional[int] = None,
        store: Optional[ResultStore] = None,
        journal: Optional[SuiteJournal] = None,
        progress: bool = False,
        backend: Optional[Any] = None,
        observer: Optional[Any] = None,
    ) -> None:
        self.policy = policy if policy is not None else FaultPolicy()
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.journal = journal
        self.progress = progress
        self.backend = backend
        self.observer = observer
        self.collector = TelemetryCollector(
            TelemetryConfig(categories=frozenset({CAT_FAULT}))
        )
        self.metrics = self.collector.metrics
        self._rng = random.Random(self.policy.seed)
        self._done = 0
        self._total = 0

    # -- observability -------------------------------------------------

    @property
    def fault_counters(self) -> Dict[str, int]:
        """Snapshot of the ``fault_*`` / ``backend_*`` / store counters.

        The service layer (:mod:`repro.sim.service`) folds its own
        ``ledger_*`` / ``admission_*`` / ``breaker_*`` counters into the
        same namespace, so the prefix filter admits those too.
        """
        return {
            name: counter.value
            for name, counter in sorted(self.metrics.counters.items())
            if name.startswith(
                ("fault_", "backend_", "ledger_", "admission_", "breaker_")
            )
            or name == "store_corrupt_entries"
        }

    @property
    def fault_events(self) -> List[Any]:
        """The CAT_FAULT events emitted so far, oldest first."""
        return self.collector.events

    def _fault(self, kind: str, item: "_Pending", counter: str) -> None:
        """Count and emit one supervision fault event."""
        self.metrics.counter(counter).inc()
        self.collector.emit(
            CAT_FAULT, kind, seq=item.index, value=item.attempts
        )

    def _emit_progress(self, record: RunRecord) -> None:
        if self.progress:
            print(
                _progress_line(self._done, self._total, record),
                file=sys.stderr,
            )
        if self.observer is not None:
            self.observer(record)

    def _emit_failure(self, failure: RunFailure) -> None:
        if self.progress:
            print(
                f"[{self._done}/{self._total}] {failure.bench} "
                f"{failure.scheme.value}  FAILED "
                f"({failure.error_type} after {failure.attempts} attempts)",
                file=sys.stderr,
            )
        if self.observer is not None:
            self.observer(failure)

    # -- orchestration -------------------------------------------------

    def execute(
        self, specs: Sequence[RunSpec], *, resume: bool = False
    ) -> Tuple[
        List[Optional[RunResult]], List[Optional[RunRecord]], List[RunFailure]
    ]:
        """Run ``specs`` to a complete outcome (no exception escapes
        except ``KeyboardInterrupt``, which tears the backend down and
        re-raises with the journal and store already checkpointed).

        Store hits and (on ``resume``) journal replays settle first;
        the rest fan out across the configured backend.  Every spec
        ends as either a result+record or a failure.
        """
        total = len(specs)
        self._total = total
        self._done = 0
        results: List[Optional[RunResult]] = [None] * total
        records: List[Optional[RunRecord]] = [None] * total
        failures: Dict[int, RunFailure] = {}
        journal_entries: Dict[str, Dict[str, Any]] = {}
        if resume and self.journal is not None:
            journal_entries = self.journal.load()

        pending: List[_Pending] = []
        for index, spec in enumerate(specs):
            key: Optional[str] = None
            if spec.telemetry is None and (
                self.store is not None or self.journal is not None
            ):
                key = spec.key()
            entry = journal_entries.get(key) if key is not None else None
            if entry is not None and entry.get("status") == "failed":
                try:
                    failure = RunFailure.from_dict(entry["failure"])
                except (KeyError, TypeError, ValueError):
                    failure = None  # malformed checkpoint: re-run
                if failure is not None:
                    failures[index] = failure
                    self._done += 1
                    self._fault(
                        "replayed_failure",
                        _Pending(index, spec, key),
                        "fault_replayed_failures",
                    )
                    self._emit_failure(failure)
                    continue
            if (
                self.store is not None
                and key is not None
                and spec.chaos is None  # chaos sweeps must not hit the store
            ):
                cached = self.store.get(key)
                if cached is not None:
                    results[index] = cached
                    records[index] = _record(spec, cached, 0.0, from_store=True)
                    if self.journal is not None:
                        # Journal prefetch hits too, so the journal is a
                        # complete settled-cell record of this sweep.
                        self.journal.record_done(key, records[index])
                    self._done += 1
                    self._emit_progress(records[index])
                    continue
            pending.append(_Pending(index, spec, key))

        if pending:
            backend, owned = resolve_backend(
                self.backend,
                jobs=self.jobs,
                workers=min(self.jobs, len(pending)),
            )
            self._run_backend(backend, owned, pending, results, records, failures)

        for index, spec in enumerate(specs):
            # Backstop for the supervisor's core contract: every spec
            # settles as a result or a failure, never disappears.
            if results[index] is None and index not in failures:
                lost = _Pending(index, spec, None)
                lost.attempts = 1
                lost.last_error = (
                    "error",
                    "LostRunError",
                    "run was never settled by the supervisor",
                    "",
                    None,
                    0.0,
                    None,
                )
                failures[index] = self._failure_from(lost)
        if self.store is not None:
            self.metrics.counter("store_corrupt_entries").set(
                self.store.corrupt_entries
            )
        ordered = [failures[index] for index in sorted(failures)]
        return results, records, ordered

    # -- settling one outcome ------------------------------------------

    def _settle_success(
        self,
        item: _Pending,
        result: RunResult,
        wall: float,
        results: List[Optional[RunResult]],
        records: List[Optional[RunRecord]],
    ) -> None:
        if (
            self.store is not None
            and item.key is not None
            and item.spec.chaos is None
        ):
            self.store.put(item.key, result)
        results[item.index] = result
        record = _record(item.spec, result, wall, from_store=False)
        records[item.index] = record
        if self.journal is not None and item.key is not None:
            self.journal.record_done(item.key, record)
        self._done += 1
        self._emit_progress(record)

    def _charge_attempt(
        self,
        item: _Pending,
        error: Tuple[Any, ...],
        now: float,
        failures: Dict[int, RunFailure],
        *,
        sleep_inline: bool = False,
    ) -> bool:
        """Charge a failed attempt; True when the item should retry."""
        item.attempts += 1
        item.last_error = error
        if item.attempts <= self.policy.retries:
            delay = self.policy.backoff_for(item.attempts, self._rng)
            item.eligible_at = now + delay
            self._fault("retry", item, "fault_retries")
            if sleep_inline and delay > 0:
                time.sleep(delay)
            return True
        failure = self._failure_from(item)
        failures[item.index] = failure
        if self.journal is not None and item.key is not None:
            self.journal.record_failed(item.key, failure)
        self._done += 1
        self._fault("exhausted", item, "fault_exhausted")
        self._emit_failure(failure)
        return False

    def _failure_from(self, item: _Pending) -> RunFailure:
        error = item.last_error or (
            "error", "UnknownError", "no attempt recorded", "", None, 0.0, None
        )
        _, etype, message, tb, diagnostics, wall, pid = error
        return RunFailure(
            bench=item.spec.profile.name,
            scheme=item.spec.scheme,
            seed=item.spec.profile.seed,
            key=item.key,
            error_type=etype,
            message=message,
            traceback=tb,
            attempts=item.attempts,
            worker_pid=pid,
            wall_time_s=wall,
            diagnostics=diagnostics,
        )

    # -- backend execution ---------------------------------------------

    def _run_backend(
        self,
        backend: ExecutionBackend,
        owned: bool,
        pending: List[_Pending],
        results: List[Optional[RunResult]],
        records: List[Optional[RunRecord]],
        failures: Dict[int, RunFailure],
    ) -> None:
        """The backend-agnostic supervision loop.

        Scheduling state: ``ready`` (runnable, spec order), ``verify``
        (crash suspects, run strictly solo so a second death is certain
        attribution), ``waiting`` (backing off before a retry), and the
        ``inflight`` handle map.  All failure semantics flow from the
        two typed signals — :class:`WorkerDeath` and
        :class:`TaskTimeout` — plus the payload envelope.
        """
        policy = self.policy
        ready: Deque[_Pending] = collections.deque(
            sorted(pending, key=lambda item: item.index)
        )
        verify: Deque[_Pending] = collections.deque()  # suspects, run solo
        waiting: List[_Pending] = []  # backing off
        inflight: Dict[Any, _Pending] = {}
        last_restarts = 0

        def sync_restarts() -> int:
            nonlocal last_restarts
            health = backend.health()
            while last_restarts < health.restarts:
                last_restarts += 1
                self._metric_pool_restart()
            return health.crash_restarts

        try:
            backend.start()
            while ready or waiting or inflight or verify:
                now = time.monotonic()
                still_waiting: List[_Pending] = []
                for item in waiting:
                    if item.eligible_at <= now:
                        (verify if item.solo else ready).append(item)
                    else:
                        still_waiting.append(item)
                waiting = still_waiting

                if verify and not inflight:
                    # Serial verification: one suspect alone on the
                    # backend, so a death identifies the culprit with
                    # certainty.
                    suspect = verify.popleft()
                    handle = backend.submit(
                        suspect.spec, suspect.attempts, policy.timeout_s
                    )
                    inflight[handle] = suspect
                elif not verify:
                    while ready and len(inflight) < backend.capacity():
                        item = ready.popleft()
                        handle = backend.submit(
                            item.spec, item.attempts, policy.timeout_s
                        )
                        inflight[handle] = item

                if not inflight:
                    if waiting:
                        next_at = min(item.eligible_at for item in waiting)
                        delay = max(0.0, next_at - time.monotonic())
                        if delay:
                            time.sleep(delay)
                    continue

                timeout = None
                if waiting:
                    timeout = max(
                        0.0,
                        min(item.eligible_at for item in waiting)
                        - time.monotonic(),
                    )
                settled = backend.poll(timeout)

                now = time.monotonic()
                for handle in settled:
                    item = inflight.pop(handle)
                    try:
                        payload = handle.outcome()
                    except TaskTimeout:
                        self._fault("timeout", item, "fault_timeouts")
                        error = (
                            "error",
                            "TimeoutError",
                            f"run exceeded {policy.timeout_s:.3f}s "
                            f"wall-clock budget",
                            "",
                            None,
                            policy.timeout_s,
                            None,
                        )
                        if self._charge_attempt(item, error, now, failures):
                            waiting.append(item)
                        continue
                    except WorkerDeath as death:
                        if death.collateral:
                            # The backend killed this worker on purpose
                            # (cancelling someone else): innocent,
                            # requeue uncharged.
                            ready.appendleft(item)
                            continue
                        if death.certain:
                            self._fault(
                                "worker_crash", item, "fault_worker_crashes"
                            )
                            error = (
                                "error",
                                "WorkerCrashError",
                                "worker process died mid-run",
                                "",
                                None,
                                0.0,
                                death.pid,
                            )
                            if self._charge_attempt(item, error, now, failures):
                                waiting.append(item)
                        else:
                            item.solo = True
                            verify.append(item)
                        continue
                    try:
                        payload = _parse_payload(payload)
                        if payload[0] == "ok":
                            _, result, wall, _pid = payload
                            result = _validate_result(item.spec, result)
                            self._settle_success(
                                item, result, wall, results, records
                            )
                            continue
                        error = payload
                    except CorruptResultError as exc:
                        self._fault(
                            "corrupt_payload", item, "fault_corrupt_payloads"
                        )
                        error = _error_payload(exc, 0.0, None)
                    if (
                        not backend.preemptible
                        and policy.timeout_s is not None
                        and isinstance(error[5], (int, float))
                        and error[5] > policy.timeout_s
                    ):
                        # Non-preemptible backends cannot cancel a run;
                        # record the blown budget post-hoc.
                        self._fault("timeout", item, "fault_timeouts")
                    if self._charge_attempt(item, error, now, failures):
                        waiting.append(item)

                if (
                    sync_restarts() > policy.max_pool_restarts
                    and (ready or waiting or verify or inflight)
                ):
                    remaining = (
                        list(verify)
                        + list(inflight.values())
                        + list(ready)
                        + waiting
                    )
                    inflight.clear()
                    self._sync_backend_counters(backend)
                    backend.shutdown(wait=False)
                    self._degrade(remaining, results, records, failures)
                    return
            sync_restarts()
        except BaseException:
            # Ctrl-C (or a fatal error): every settled record has
            # already been journaled and stored, so tear the backend
            # down without waiting and leave a resumable sweep behind.
            self._sync_backend_counters(backend)
            if owned:
                backend.shutdown(wait=False)
            raise
        self._sync_backend_counters(backend)
        if owned:
            backend.shutdown()

    def _sync_backend_counters(self, backend: ExecutionBackend) -> None:
        """Fold the backend's ``backend_*`` counters into fault metrics."""
        try:
            health = backend.health()
        except Exception:  # pragma: no cover - introspection best-effort
            return
        for name, value in sorted(health.counters.items()):
            if name.startswith("backend_"):
                self.metrics.counter(name).set(value)

    def _metric_pool_restart(self) -> None:
        """Count one backend worker/pool teardown-respawn."""
        self.metrics.counter("fault_pool_restarts").inc()
        self.collector.emit(CAT_FAULT, "pool_restart")

    def _degrade(
        self,
        remaining: List[_Pending],
        results: List[Optional[RunResult]],
        records: List[Optional[RunRecord]],
        failures: Dict[int, RunFailure],
    ) -> None:
        """Workers keep dying: finish the sweep inline (or fail it)."""
        self.metrics.counter("fault_degraded").inc()
        self.collector.emit(CAT_FAULT, "degrade", value=len(remaining))
        if self.policy.degrade_inline:
            from repro.sim.backends.local import InlineBackend

            for item in remaining:
                item.solo = False  # inline cannot crash: no solo verify
            self._run_backend(
                InlineBackend(), True, remaining, results, records, failures
            )
            return
        for item in sorted(remaining, key=lambda it: it.index):
            item.attempts = max(item.attempts, self.policy.retries + 1)
            item.last_error = (
                "error",
                "PoolExhaustedError",
                "worker pool kept dying and inline degradation is disabled",
                "",
                None,
                0.0,
                None,
            )
            failure = self._failure_from(item)
            failures[item.index] = failure
            if self.journal is not None and item.key is not None:
                self.journal.record_failed(item.key, failure)
            self._done += 1
            self._emit_failure(failure)
