"""Reporting helpers: normalized metrics and plain-text tables.

The figure benches print the same *rows/series* the paper's figures plot;
these helpers compute the normalized quantities (IPC relative to the
unsafe baseline, overheads, overhead reductions) and render aligned text
tables.

The grid-shaped functions take any mapping from ``(benchmark, scheme)``
to :class:`~repro.sim.runner.RunResult` — in particular the
:class:`~repro.sim.engine.SuiteResult` returned by ``run_suite`` /
``run_grid``.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.common.types import SchemeKind
from repro.sim.runner import RunResult

__all__ = [
    "geomean",
    "normalized_ipc",
    "overhead",
    "overhead_reduction",
    "failure_rows",
    "format_ipc",
    "format_table",
    "records_rows",
    "suite_normalized_rows",
]


def format_ipc(result, digits: int = 3) -> str:
    """Render a run's IPC, with its ± CI half-width when estimated.

    ``result`` is anything exposing ``ipc`` and (optionally) a
    ``sampling`` estimate — a :class:`~repro.sim.runner.RunResult`, an
    :class:`~repro.api.RunRecord`, or a raw float.  Exact runs render as
    ``"0.812"``; sampled runs as ``"0.812±0.009"`` so a table never
    presents an estimate as an exact measurement.
    """
    if isinstance(result, (int, float)):
        return f"{result:.{digits}f}"
    ipc = result.ipc
    estimate = getattr(result, "sampling", None)
    if estimate is None:
        return f"{ipc:.{digits}f}"
    return f"{ipc:.{digits}f}±{estimate.ipc_ci:.{digits}f}"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean over the positive inputs (0.0 when none remain).

    Zero or negative values have no geometric mean; they typically mean
    a run produced no commits (IPC 0) or a baseline was missing.  Rather
    than aborting a whole suite table for one degenerate cell, they are
    skipped with a ``RuntimeWarning`` naming how many were dropped, and
    the mean is taken over the remaining values.
    """
    values = [v for v in values]
    if not values:
        return 0.0
    positives = [v for v in values if v > 0]
    if len(positives) != len(values):
        warnings.warn(
            f"geomean: skipped {len(values) - len(positives)} non-positive "
            f"value(s) of {len(values)}",
            RuntimeWarning,
            stacklevel=2,
        )
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def normalized_ipc(
    results: Mapping[Tuple[str, SchemeKind], RunResult],
    name: str,
    scheme: SchemeKind,
    baseline: SchemeKind = SchemeKind.UNSAFE,
) -> float:
    """IPC of (name, scheme) relative to (name, baseline)."""
    base = results[(name, baseline)].ipc
    if base == 0:
        return 0.0
    return results[(name, scheme)].ipc / base


def overhead(normalized: float) -> float:
    """Performance overhead of a scheme given its normalized IPC."""
    return 1.0 - normalized


def overhead_reduction(base_overhead: float, optimized_overhead: float) -> float:
    """How much of the base scheme's overhead the optimization removed.

    This is the paper's headline metric, e.g. "ReCon reduces the loss by
    45.1%": (base - optimized) / base.
    """
    if base_overhead <= 0:
        return 0.0
    return (base_overhead - optimized_overhead) / base_overhead


def suite_normalized_rows(
    results: Mapping[Tuple[str, SchemeKind], RunResult],
    names: Sequence[str],
    schemes: Sequence[SchemeKind],
    baseline: SchemeKind = SchemeKind.UNSAFE,
) -> List[List[str]]:
    """Rows of normalized IPC per benchmark plus a geomean row.

    A cell whose run (or baseline run) is missing — typically a
    supervised suite where that cell exhausted its retries and became a
    failure record — renders as ``n/a`` and is excluded from the
    geomean, so one sick cell degrades its own entry, not the table.
    """
    rows: List[List[str]] = []
    columns: Dict[SchemeKind, List[float]] = {s: [] for s in schemes}
    for name in names:
        row = [name]
        for scheme in schemes:
            if (
                results.get((name, scheme)) is None
                or results.get((name, baseline)) is None
            ):
                row.append("n/a")
                continue
            value = normalized_ipc(results, name, scheme, baseline)
            columns[scheme].append(value)
            row.append(f"{value:.3f}")
        rows.append(row)
    mean_row = ["geomean"]
    for scheme in schemes:
        positives = [v for v in columns[scheme] if v > 0]
        if positives:
            mean_row.append(f"{geomean(positives):.3f}")
        else:
            # No cell produced a usable ratio (e.g. every baseline run
            # committed nothing): a number here would be fiction.
            mean_row.append("n/a")
    rows.append(mean_row)
    return rows


def records_rows(records: Sequence) -> List[List[str]]:
    """Per-run observability rows (bench, scheme, source, time, rate).

    ``records`` is a sequence of :class:`~repro.sim.engine.RunRecord`
    (``SuiteResult.records``); pair with :func:`format_table`.  When any
    record is estimated (a sampled run), two extra columns report the
    unit count and the relative CI half-width; an all-exact suite keeps
    the historical five-column shape.
    """
    sampled = any(getattr(record, "estimated", False) for record in records)
    rows = []
    for record in records:
        row = [
            record.bench,
            record.scheme.value,
            "store" if record.from_store else "simulated",
            f"{record.wall_time_s:.2f}s",
            "-"
            if record.from_store
            else f"{record.uops_per_sec / 1000:.0f}k uops/s",
        ]
        if sampled:
            if getattr(record, "estimated", False):
                row.append(str(record.samples))
                row.append(
                    "±?" if record.ipc_ci is None else f"±{record.ipc_ci:.3f}"
                )
            else:
                row.extend(["-", "-"])
        rows.append(row)
    return rows


def failure_rows(failures: Sequence) -> List[List[str]]:
    """Rows describing failed cells (bench, scheme, error, attempts).

    ``failures`` is a sequence of
    :class:`~repro.sim.supervisor.RunFailure` (``SuiteResult.failures``);
    pair with :func:`format_table`.
    """
    rows = []
    for failure in failures:
        message = failure.message.splitlines()[0] if failure.message else ""
        if len(message) > 60:
            message = message[:57] + "..."
        rows.append(
            [
                failure.bench,
                failure.scheme.value,
                failure.error_type,
                str(failure.attempts),
                message,
            ]
        )
    return rows


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table."""
    table = [list(headers)] + [list(r) for r in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(table):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
