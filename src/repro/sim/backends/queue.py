"""File-backed work-stealing queue backend with detached workers.

Multi-host execution as a config change: the parent serializes tasks
into a shared **spool directory** and N detached worker processes
(:mod:`repro.sim.backends.queue_worker`, plain ``subprocess.Popen``
children that could equally run on another host sharing the spool via
NFS) lease them, heartbeat, and push results back — optionally through
the content-hash result store as well, so a fleet shares one memoized
result set.

Spool layout (every transition is an atomic ``os.rename`` on one
filesystem, so two workers can never own the same task and a crash
never tears a file in half)::

    spool/
      config.json                 # store root etc, written once at start
      tasks/<wid>/<task_id>.task  # pickled (spec, attempt), awaiting lease
      leases/<wid>--<task_id>.task# leased: owner is in the filename
      results/<task_id>.pkl       # pickled result envelope + worker meta
      workers/<wid>.hb            # heartbeat file, mtime = last beat
      stop                        # sentinel: workers drain and exit

Tasks are dealt round-robin into per-worker sub-queues; an idle worker
drains its own queue first and then **steals** from any other queue
(including those of dead workers, which is how orphaned work is
rescued).  Death attribution is *certain* and per-task: a lease names
its worker in the filename, so when ``Popen.poll`` reports a worker
dead, exactly the tasks it was leasing settle
:class:`~repro.sim.backends.base.WorkerDeath` — results already spooled
are honored first, which is what makes a chaos run lose zero records.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.sim.backends.base import (
    BackendHealth,
    ExecutionBackend,
    TaskHandle,
    TaskTimeout,
    WorkerDeath,
)

__all__ = ["QueueBackend"]

#: Seconds between parent-side spool scans while polling.
_SCAN_INTERVAL_S = 0.02


class _Worker:
    """Parent-side view of one detached worker process."""

    __slots__ = ("wid", "proc", "spawned_at")

    def __init__(self, wid: str, proc: subprocess.Popen, spawned_at: float):
        self.wid = wid
        self.proc = proc
        self.spawned_at = spawned_at


class QueueBackend(ExecutionBackend):
    """Work-stealing spool queue with detached worker processes."""

    name = "queue"
    preemptible = True

    def __init__(
        self,
        workers: int = 2,
        spool_dir: Optional[Path] = None,
        store_root: Optional[Path] = None,
        stale_heartbeat_s: float = 30.0,
    ) -> None:
        self.workers = max(1, int(workers))
        self._spool_arg = spool_dir
        self.store_root = store_root
        self.stale_heartbeat_s = stale_heartbeat_s
        self.spool: Optional[Path] = None
        self._own_spool = spool_dir is None
        self._fleet: List[_Worker] = []
        self._generation = 0
        self._seq = 0
        self._rr = 0  # round-robin dealer position
        #: task_id -> (handle, timeout_s)
        self._inflight: Dict[str, Any] = {}
        self.restarts = 0
        self.crash_restarts = 0
        self._completed = 0
        self._steals = 0
        self._worker_deaths = 0
        self._timeouts = 0
        self._lease_age_sum = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self.spool is not None:
            return
        if self._spool_arg is not None:
            self.spool = Path(self._spool_arg)
        else:
            self.spool = Path(tempfile.mkdtemp(prefix="repro-queue-"))
        for sub in ("tasks", "leases", "results", "workers"):
            (self.spool / sub).mkdir(parents=True, exist_ok=True)
        config = {
            "store_root": str(self.store_root) if self.store_root else None,
            "stale_heartbeat_s": self.stale_heartbeat_s,
        }
        (self.spool / "config.json").write_text(json.dumps(config))
        while len(self._fleet) < self.workers:
            self._fleet.append(self._spawn())

    def _spawn(self) -> _Worker:
        assert self.spool is not None
        self._generation += 1
        wid = f"w{self._generation:03d}"
        (self.spool / "tasks" / wid).mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        pkg_root = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root if not existing else pkg_root + os.pathsep + existing
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.sim.backends.queue_worker",
                str(self.spool),
                wid,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        return _Worker(wid, proc, time.monotonic())

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: Any,
        attempt: int = 0,
        timeout_s: Optional[float] = None,
    ) -> TaskHandle:
        self.start()
        assert self.spool is not None
        self._seq += 1
        task_id = f"t{self._seq:06d}a{attempt}"
        handle = TaskHandle(spec, attempt, token=task_id)
        if timeout_s is not None:
            handle.deadline = time.monotonic() + timeout_s
        # Deal round-robin into a live worker's sub-queue; idle workers
        # steal across sub-queues so placement only shapes locality.
        live = [w for w in self._fleet if w.proc.poll() is None]
        target = (live or self._fleet)[self._rr % max(1, len(live or self._fleet))]
        self._rr += 1
        queue_dir = self.spool / "tasks" / target.wid
        queue_dir.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps((spec, attempt), protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=str(queue_dir), suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.rename(tmp, queue_dir / f"{task_id}.task")
        self._inflight[task_id] = (handle, timeout_s)
        return handle

    # -- settlement ----------------------------------------------------

    def _settle_results(self, settled: List[TaskHandle]) -> None:
        """Honor every result envelope already spooled by a worker."""
        assert self.spool is not None
        results_dir = self.spool / "results"
        for path in sorted(results_dir.glob("*.pkl")):
            task_id = path.stem
            entry = self._inflight.pop(task_id, None)
            try:
                meta = pickle.loads(path.read_bytes())
            except Exception:
                meta = None
            try:
                path.unlink()
            except OSError:
                pass
            if entry is None:
                continue  # duplicate/orphan result for a settled task
            handle, _timeout_s = entry
            if meta is None:
                handle.settle_error(
                    WorkerDeath("result envelope unreadable", certain=True)
                )
            else:
                if meta.get("stolen"):
                    self._steals += 1
                self._lease_age_sum += float(meta.get("lease_age_s", 0.0))
                handle.settle_payload(meta.get("payload"))
                self._completed += 1
            settled.append(handle)

    def _lease_owners(self) -> Dict[str, str]:
        """task_id -> wid for every currently leased task."""
        assert self.spool is not None
        owners: Dict[str, str] = {}
        for path in (self.spool / "leases").glob("*.task"):
            wid, sep, rest = path.name.partition("--")
            if sep:
                owners[rest[: -len(".task")]] = wid
        return owners

    def _reap_dead_workers(self, settled: List[TaskHandle]) -> None:
        """Settle leases held by dead workers; respawn replacements."""
        assert self.spool is not None
        dead = [w for w in self._fleet if w.proc.poll() is not None]
        if not dead:
            return
        # A worker may die *after* spooling its result: honor those
        # results first so a crash-on-exit never loses a finished run.
        self._settle_results(settled)
        owners = self._lease_owners()
        for worker in dead:
            self._fleet.remove(worker)
            for task_id, wid in owners.items():
                if wid != worker.wid:
                    continue
                lease = self.spool / "leases" / f"{wid}--{task_id}.task"
                try:
                    lease.unlink()
                except OSError:
                    pass
                entry = self._inflight.pop(task_id, None)
                if entry is None:
                    continue
                handle, _timeout_s = entry
                self._worker_deaths += 1
                handle.settle_error(
                    WorkerDeath(
                        f"queue worker {worker.wid} died mid-lease",
                        certain=True,  # the lease names exactly one task
                        worker_id=worker.wid,
                        pid=worker.proc.pid,
                    )
                )
                settled.append(handle)
            self.crash_restarts += 1
            self.restarts += 1
            self._fleet.append(self._spawn())
        # Unleased tasks queued on a dead worker's sub-queue stay put:
        # live workers steal from every sub-queue, so they are rescued
        # without parent intervention.

    def _kill_worker(self, wid: str) -> None:
        for worker in list(self._fleet):
            if worker.wid != wid:
                continue
            self._fleet.remove(worker)
            try:
                worker.proc.terminate()
                worker.proc.wait(timeout=5.0)
            except Exception:
                try:
                    worker.proc.kill()
                except Exception:
                    pass
        self._fleet.append(self._spawn())

    def _expire_deadlines(self, settled: List[TaskHandle]) -> None:
        """Per-task preemption: kill only the worker leasing the task."""
        assert self.spool is not None
        now = time.monotonic()
        expired = [
            (task_id, handle, timeout_s)
            for task_id, (handle, timeout_s) in list(self._inflight.items())
            if handle.deadline is not None and handle.deadline <= now
        ]
        if not expired:
            return
        owners = self._lease_owners()
        for task_id, handle, timeout_s in expired:
            owner = owners.get(task_id)
            if owner is not None:
                # Leased and over budget: the worker is presumed hung on
                # this task.  Kill it; other tasks are untouched.
                lease = self.spool / "leases" / f"{owner}--{task_id}.task"
                try:
                    lease.unlink()
                except OSError:
                    pass
                self._kill_worker(owner)
                self.restarts += 1
            else:
                # Still queued: revoke the task file; a worker that
                # leased it in the meantime is handled as above on the
                # next scan.
                removed = False
                for queue_dir in (self.spool / "tasks").iterdir():
                    try:
                        (queue_dir / f"{task_id}.task").unlink()
                        removed = True
                        break
                    except OSError:
                        continue
                if not removed and task_id in self._lease_owners():
                    continue  # raced a lease: settle on the next scan
            self._inflight.pop(task_id, None)
            self._timeouts += 1
            handle.settle_error(TaskTimeout(timeout_s or 0.0))
            settled.append(handle)

    def poll(self, timeout: Optional[float] = None) -> List[TaskHandle]:
        if not self._inflight:
            return []
        deadline = None if timeout is None else time.monotonic() + timeout
        settled: List[TaskHandle] = []
        while True:
            self._settle_results(settled)
            self._reap_dead_workers(settled)
            self._expire_deadlines(settled)
            if settled:
                return settled
            if not self._inflight:
                return settled
            if deadline is not None and time.monotonic() >= deadline:
                return settled
            time.sleep(_SCAN_INTERVAL_S)

    # -- introspection -------------------------------------------------

    def capacity(self) -> int:
        return self.workers

    def _queue_depth(self) -> int:
        if self.spool is None:
            return 0
        return sum(
            1 for _ in (self.spool / "tasks").glob("*/*.task")
        )

    def health(self) -> BackendHealth:
        alive = 0
        now = time.time()
        for worker in self._fleet:
            if worker.proc.poll() is not None:
                continue
            hb = (
                self.spool / "workers" / f"{worker.wid}.hb"
                if self.spool is not None
                else None
            )
            try:
                fresh = hb is not None and (
                    now - hb.stat().st_mtime
                ) <= self.stale_heartbeat_s
            except OSError:
                fresh = True  # spawned, first beat pending
            if fresh:
                alive += 1
        return BackendHealth(
            name=self.name,
            workers=self.workers,
            alive_workers=alive,
            inflight=len(self._inflight),
            queue_depth=self._queue_depth(),
            restarts=self.restarts,
            crash_restarts=self.crash_restarts,
            counters={
                "backend_tasks_completed": self._completed,
                "backend_steals": self._steals,
                "backend_worker_deaths": self._worker_deaths,
                "backend_task_timeouts": self._timeouts,
                "backend_worker_restarts": self.restarts,
                "backend_lease_age_ms": int(self._lease_age_sum * 1000),
            },
        )

    def shutdown(self, wait: bool = True) -> None:
        if self.spool is None:
            return
        try:
            (self.spool / "stop").write_text("stop")
        except OSError:
            pass
        grace = time.monotonic() + (2.0 if wait else 0.0)
        for worker in self._fleet:
            remaining = max(0.0, grace - time.monotonic())
            try:
                worker.proc.wait(timeout=remaining)
            except Exception:
                try:
                    worker.proc.terminate()
                    worker.proc.wait(timeout=2.0)
                except Exception:
                    try:
                        worker.proc.kill()
                    except Exception:
                        pass
        self._fleet.clear()
        if self._own_spool:
            shutil.rmtree(self.spool, ignore_errors=True)
        self.spool = None
        self._inflight.clear()
