"""The process-pool backend: the historical execution substrate.

Wraps a ``ProcessPoolExecutor`` behind the
:class:`~repro.sim.backends.base.ExecutionBackend` contract and owns
everything that used to live inside the supervisor's pool loop:

* ``BrokenProcessPool`` translation — a future that dies with a broken
  pool settles as :class:`WorkerDeath`; it is *certain* only when the
  task was alone in flight (that is how the supervisor's solo
  verification attributes crashes), otherwise every in-flight task is a
  suspect and settles ``WorkerDeath(certain=False)``;
* per-task deadlines — the pool offers no per-task kill, so an expired
  budget tears the whole pool down: expired tasks settle
  :class:`TaskTimeout` and innocent victims are resubmitted on the
  fresh pool internally, never surfaced to the caller;
* respawn accounting — ``crash_restarts`` counts crash-driven respawns
  (the supervisor's degrade budget), ``restarts`` counts all of them.

Workers are marked with :func:`repro.sim.chaos.mark_worker_process` so
process-level chaos faults (``crash``) take the worker down for real.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple

from repro.sim import chaos as chaos_mod
from repro.sim.backends.base import (
    BackendHealth,
    ExecutionBackend,
    TaskHandle,
    TaskTimeout,
    WorkerDeath,
    run_task,
)

__all__ = ["ProcessBackend"]


class ProcessBackend(ExecutionBackend):
    """``ProcessPoolExecutor`` behind the backend seam."""

    name = "process"
    preemptible = True

    def __init__(self, workers: int = 2) -> None:
        self.workers = max(1, int(workers))
        self._pool: Optional[ProcessPoolExecutor] = None
        #: future -> (handle, timeout_s) for every unsettled submission.
        self._inflight: Dict[Any, Tuple[TaskHandle, Optional[float]]] = {}
        self.restarts = 0
        self.crash_restarts = 0
        self._completed = 0
        self._worker_deaths = 0
        self._timeouts = 0

    # -- pool lifecycle ------------------------------------------------

    def start(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=chaos_mod.mark_worker_process,
            )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Terminate every worker and tear the pool down without joining
        hung processes indefinitely."""
        procs = list((getattr(pool, "_processes", None) or {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck in kernel
                try:
                    proc.kill()
                except Exception:
                    pass

    def _respawn(self) -> None:
        if self._pool is not None:
            self._kill_pool(self._pool)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=chaos_mod.mark_worker_process,
        )

    # -- submission ----------------------------------------------------

    def _submit_handle(
        self, handle: TaskHandle, timeout_s: Optional[float]
    ) -> None:
        assert self._pool is not None
        if timeout_s is not None:
            handle.deadline = time.monotonic() + timeout_s
        try:
            future = self._pool.submit(
                run_task, handle.spec, handle.attempt
            )
        except (BrokenProcessPool, RuntimeError):
            # The pool died between polls: respawn (a crash restart, the
            # caller sees it in health()) and retry once on fresh workers.
            self.crash_restarts += 1
            self.restarts += 1
            self._respawn()
            future = self._pool.submit(run_task, handle.spec, handle.attempt)
        self._inflight[future] = (handle, timeout_s)

    def submit(
        self,
        spec: Any,
        attempt: int = 0,
        timeout_s: Optional[float] = None,
    ) -> TaskHandle:
        self.start()
        handle = TaskHandle(spec, attempt)
        self._submit_handle(handle, timeout_s)
        return handle

    # -- settlement ----------------------------------------------------

    def poll(self, timeout: Optional[float] = None) -> List[TaskHandle]:
        if not self._inflight:
            return []
        now = time.monotonic()
        marks = [
            handle.deadline
            for handle, _ in self._inflight.values()
            if handle.deadline is not None
        ]
        wait_s = timeout
        if marks:
            to_deadline = max(0.0, min(marks) - now)
            wait_s = to_deadline if wait_s is None else min(wait_s, to_deadline)
        alone = len(self._inflight) == 1
        done, _ = futures_wait(
            set(self._inflight), timeout=wait_s, return_when=FIRST_COMPLETED
        )

        settled: List[TaskHandle] = []
        broken = False
        for future in done:
            handle, _timeout_s = self._inflight.pop(future)
            try:
                payload = future.result()
            except (BrokenProcessPool, OSError):
                broken = True
                self._worker_deaths += 1
                handle.settle_error(
                    WorkerDeath(
                        "worker process died mid-run",
                        # Alone in the pool -> this task provably
                        # crashed its worker.
                        certain=alone,
                    )
                )
                settled.append(handle)
                continue
            handle.settle_payload(payload)
            self._completed += 1
            settled.append(handle)

        if broken:
            # Everything else rode the broken pool down: suspects, to be
            # re-verified solo by the caller.
            for future, (handle, _timeout_s) in list(self._inflight.items()):
                handle.settle_error(
                    WorkerDeath("worker pool broke mid-run", certain=False)
                )
                settled.append(handle)
            self._inflight.clear()
            self.crash_restarts += 1
            self.restarts += 1
            self._respawn()
            return settled

        # Expired deadlines: no per-task kill exists, so cancel by
        # restarting the pool; innocent victims resubmit internally.
        now = time.monotonic()
        expired = [
            (future, handle, timeout_s)
            for future, (handle, timeout_s) in self._inflight.items()
            if handle.deadline is not None and handle.deadline <= now
        ]
        if expired:
            expired_futures = {future for future, _, _ in expired}
            victims = [
                (handle, timeout_s)
                for future, (handle, timeout_s) in self._inflight.items()
                if future not in expired_futures
            ]
            self._inflight.clear()
            self.restarts += 1
            self._respawn()
            for _future, handle, timeout_s in expired:
                self._timeouts += 1
                handle.settle_error(TaskTimeout(timeout_s or 0.0))
                settled.append(handle)
            for handle, timeout_s in victims:
                self._submit_handle(handle, timeout_s)
        return settled

    # -- introspection -------------------------------------------------

    def capacity(self) -> int:
        return self.workers

    def health(self) -> BackendHealth:
        return BackendHealth(
            name=self.name,
            workers=self.workers,
            alive_workers=self.workers if self._pool is not None else 0,
            inflight=len(self._inflight),
            queue_depth=0,
            restarts=self.restarts,
            crash_restarts=self.crash_restarts,
            counters={
                "backend_tasks_completed": self._completed,
                "backend_worker_deaths": self._worker_deaths,
                "backend_task_timeouts": self._timeouts,
                "backend_pool_restarts": self.restarts,
            },
        )

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            if wait and not self._inflight:
                self._pool.shutdown(wait=True)
            else:
                self._kill_pool(self._pool)
            self._pool = None
        self._inflight.clear()
