"""Pluggable execution backends (see :mod:`repro.sim.backends.base`).

Four substrates behind one contract:

============  =====================================================
``inline``    synchronous, deterministic; the debug/degrade substrate
``threads``   ``ThreadPoolExecutor``; shared memory, GIL-bound
``process``   ``ProcessPoolExecutor``; the historical default
``queue``     file-backed work-stealing spool + detached workers;
              multi-host capable
============  =====================================================

Select with ``--backend``, the ``REPRO_BACKEND`` environment variable,
or :func:`resolve_backend`.
"""

from repro.sim.backends.base import (
    BACKEND_ENV,
    BACKEND_NAMES,
    BackendHealth,
    CorruptResultError,
    ExecutionBackend,
    TaskFailedError,
    TaskHandle,
    TaskTimeout,
    WorkerDeath,
    default_backend_name,
    parse_envelope,
    resolve_backend,
    run_task,
)
from repro.sim.backends.local import InlineBackend, ThreadBackend
from repro.sim.backends.process import ProcessBackend
from repro.sim.backends.queue import QueueBackend

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BackendHealth",
    "CorruptResultError",
    "ExecutionBackend",
    "InlineBackend",
    "ProcessBackend",
    "QueueBackend",
    "TaskFailedError",
    "TaskHandle",
    "TaskTimeout",
    "ThreadBackend",
    "WorkerDeath",
    "default_backend_name",
    "parse_envelope",
    "resolve_backend",
    "run_task",
]
