"""In-process backends: deterministic inline and a thread pool.

``inline`` runs every task synchronously in the submitting process —
the deterministic debug substrate, and what the supervisor degrades to
when worker pools keep dying.  ``threads`` fans tasks across a
``ThreadPoolExecutor``: no pickling, shared memory, but the GIL caps
speedup for the pure-Python simulator, so it is mainly useful for
I/O-bound store traffic and as a seam exerciser.

Neither backend can lose a worker (``WorkerDeath`` never settles here)
and neither is preemptible — an expired budget is recorded post-hoc by
the supervisor, never enforced mid-run.
"""

from __future__ import annotations

import collections
import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.sim.backends.base import (
    BackendHealth,
    ExecutionBackend,
    TaskHandle,
    run_task,
)

__all__ = ["InlineBackend", "ThreadBackend"]


class InlineBackend(ExecutionBackend):
    """Synchronous execution in the calling process.

    ``submit`` runs the task to completion before returning, so handles
    are always settled by the time ``poll`` sees them.  Owns a
    :class:`~repro.sim.runner.TraceCache` cleared between grid cells
    (same memory discipline as the historical ``jobs=1`` path) unless a
    caller-provided cache is passed in.
    """

    name = "inline"
    preemptible = False

    def __init__(self, cache: Any = None, reraise: Tuple[type, ...] = (KeyboardInterrupt, SystemExit)) -> None:
        self._cache = cache
        self._own_cache = cache is None
        self._reraise = reraise
        self._settled: Deque[TaskHandle] = collections.deque()
        self._current_cell: Optional[Tuple[Any, ...]] = None
        self._completed = 0

    def start(self) -> None:
        if self._own_cache and self._cache is None:
            from repro.sim.runner import TraceCache

            self._cache = TraceCache()

    def submit(
        self,
        spec: Any,
        attempt: int = 0,
        timeout_s: Optional[float] = None,
    ) -> TaskHandle:
        self.start()
        handle = TaskHandle(spec, attempt)
        cell = spec.trace_key
        if self._own_cache and self._current_cell not in (None, cell):
            self._cache.clear()
        self._current_cell = cell
        payload = run_task(
            spec, attempt, cache=self._cache, reraise=self._reraise
        )
        handle.settle_payload(payload)
        self._completed += 1
        self._settled.append(handle)
        return handle

    def poll(self, timeout: Optional[float] = None) -> List[TaskHandle]:
        settled = list(self._settled)
        self._settled.clear()
        return settled

    def capacity(self) -> int:
        return 1

    def health(self) -> BackendHealth:
        return BackendHealth(
            name=self.name,
            workers=1,
            alive_workers=1,
            inflight=0,
            queue_depth=0,
            restarts=0,
            crash_restarts=0,
            counters={"backend_tasks_completed": self._completed},
        )

    def shutdown(self, wait: bool = True) -> None:
        if self._own_cache and self._cache is not None:
            self._cache.clear()
            self._cache = None
        self._settled.clear()
        self._current_cell = None


class ThreadBackend(ExecutionBackend):
    """A ``ThreadPoolExecutor`` substrate (shared memory, no pickling).

    Each worker thread keeps its own :class:`TraceCache` (thread-local)
    so concurrent cells do not thrash one shared LRU.
    """

    name = "threads"
    preemptible = False

    def __init__(self, workers: int = 2) -> None:
        self.workers = max(1, int(workers))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._inflight: Dict[Any, TaskHandle] = {}
        self._local = threading.local()
        self._completed = 0

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-backend",
            )

    def _task(self, spec: Any, attempt: int) -> Any:
        cache = getattr(self._local, "cache", None)
        if cache is None:
            from repro.sim.runner import TraceCache

            cache = self._local.cache = TraceCache()
        return run_task(spec, attempt, cache=cache)

    def submit(
        self,
        spec: Any,
        attempt: int = 0,
        timeout_s: Optional[float] = None,
    ) -> TaskHandle:
        self.start()
        assert self._pool is not None
        handle = TaskHandle(spec, attempt)
        future = self._pool.submit(self._task, spec, attempt)
        self._inflight[future] = handle
        return handle

    def poll(self, timeout: Optional[float] = None) -> List[TaskHandle]:
        if not self._inflight:
            return []
        done, _ = futures_wait(
            set(self._inflight), timeout=timeout, return_when=FIRST_COMPLETED
        )
        settled: List[TaskHandle] = []
        for future in done:
            handle = self._inflight.pop(future)
            # run_task contains every exception in its envelope, so the
            # future itself only raises for interpreter-level failures.
            handle.settle_payload(future.result())
            self._completed += 1
            settled.append(handle)
        return settled

    def capacity(self) -> int:
        return self.workers

    def health(self) -> BackendHealth:
        return BackendHealth(
            name=self.name,
            workers=self.workers,
            alive_workers=self.workers if self._pool is not None else 0,
            inflight=len(self._inflight),
            queue_depth=0,
            restarts=0,
            crash_restarts=0,
            counters={"backend_tasks_completed": self._completed},
        )

    def shutdown(self, wait: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None
        self._inflight.clear()
