"""The ``ExecutionBackend`` seam: how specs become results.

Every execution substrate — inline, a thread pool, a process pool, a
file-backed work-stealing queue — implements the same small contract:

* :meth:`ExecutionBackend.submit` accepts a
  :class:`~repro.sim.engine.RunSpec` (plus an attempt number and an
  optional per-task wall-clock budget) and returns a :class:`TaskHandle`;
* :meth:`ExecutionBackend.poll` blocks until at least one handle settles
  and returns the newly settled handles;
* every submitted handle settles **exactly once** — with a payload
  envelope, a :class:`WorkerDeath`, or a :class:`TaskTimeout`.

The payload envelope is the same wire format on every backend (it is
what pool workers have always shipped): ``("ok", RunResult, wall_s,
pid)`` on success or ``("error", type_name, message, traceback,
diagnostics, wall_s, pid)`` on a contained failure.  Chaos faults
(:mod:`repro.sim.chaos`) fire inside :func:`run_task`, so every backend
is exercised by the same fault harness.

Consumers — the fail-fast engine (:func:`repro.sim.engine.execute_specs`)
and the fault-tolerant supervisor (:class:`repro.sim.supervisor.Supervisor`)
— are written against this contract only.  They never import
``concurrent.futures`` types: a worker crash is a :class:`WorkerDeath`,
an expired budget is a :class:`TaskTimeout`, regardless of whether the
substrate is a ``ProcessPoolExecutor`` or a spool directory shared by
detached workers on another host.

Backend selection: :func:`resolve_backend` maps a name (``inline`` /
``threads`` / ``process`` / ``queue``), the ``REPRO_BACKEND``
environment variable, or the historical ``jobs`` count onto a concrete
backend.  ``jobs == 1`` keeps the deterministic inline path and
``jobs > 1`` keeps the process pool, so existing invocations are
bit-identical.
"""

from __future__ import annotations

import abc
import dataclasses
import os
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import SimulationHangError
from repro.sim import chaos as chaos_mod
from repro.sim.config import RunConfig

__all__ = [
    "BACKEND_ENV",
    "BACKEND_NAMES",
    "BackendHealth",
    "CorruptResultError",
    "ExecutionBackend",
    "TaskFailedError",
    "TaskHandle",
    "TaskTimeout",
    "WorkerDeath",
    "default_backend_name",
    "error_envelope",
    "execute_run",
    "parse_envelope",
    "resolve_backend",
    "run_task",
]

#: Environment variable naming the default execution backend.
BACKEND_ENV = "REPRO_BACKEND"

#: The built-in backend names, in documentation order.
BACKEND_NAMES = ("inline", "threads", "process", "queue")


class WorkerDeath(RuntimeError):
    """The worker executing a task died before settling it.

    Attributes:
        certain: ``True`` when the backend *knows* this task crashed its
            worker (it ran alone, or the backend has per-task worker
            attribution).  ``False`` marks a suspect that shared a dying
            substrate with other tasks and deserves solo re-verification
            before being charged an attempt.
        collateral: ``True`` when the backend itself killed the worker
            deliberately (e.g. to cancel a *different*, expired task) —
            the task is innocent and should be requeued uncharged.
        worker_id: backend-specific worker identity, when known.
        pid: OS pid of the dead worker, when known.
    """

    def __init__(
        self,
        message: str = "worker process died mid-run",
        *,
        certain: bool = False,
        collateral: bool = False,
        worker_id: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.certain = certain
        self.collateral = collateral
        self.worker_id = worker_id
        self.pid = pid


class TaskTimeout(RuntimeError):
    """A task exceeded its wall-clock budget and was cancelled."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(
            f"run exceeded {timeout_s:.3f}s wall-clock budget"
        )
        self.timeout_s = timeout_s


class CorruptResultError(RuntimeError):
    """A worker returned a payload that does not validate as a result."""


class TaskFailedError(RuntimeError):
    """A fail-fast task reported an error envelope.

    Raised by the plain engine path (no supervision) when a backend task
    settles with an ``("error", ...)`` envelope; carries the structured
    fields so callers can still attribute the failure.
    """

    def __init__(
        self, error_type: str, message: str, traceback_text: str = ""
    ) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message
        self.traceback_text = traceback_text


# ---------------------------------------------------------------------------
# the task payload envelope (identical on every backend)
# ---------------------------------------------------------------------------


def execute_run(spec: Any, cache: Any = None) -> Any:
    """Run one spec to a :class:`~repro.sim.runner.RunResult`.

    This is the single simulation entry point every backend funnels
    through — inline, thread, pool worker, or detached queue worker —
    so cross-backend parity is parity of scheduling, never of physics.
    """
    from repro.sim.runner import run_benchmark

    return run_benchmark(
        spec.profile,
        spec.scheme,
        spec.length,
        config=RunConfig(
            params=spec.params,
            threads=spec.threads,
            warmup_uops=spec.warmup_uops,
            cache=cache,
            telemetry=spec.telemetry,
            sampling=getattr(spec, "sampling", None),
        ),
    )


def error_envelope(
    exc: BaseException, wall: float, pid: Optional[int]
) -> Tuple[Any, ...]:
    """The structured error envelope a failed attempt reports."""
    diagnostics = None
    if isinstance(exc, SimulationHangError):
        diagnostics = exc.diagnostics()
    return (
        "error",
        type(exc).__name__,
        str(exc),
        traceback.format_exc(),
        diagnostics,
        wall,
        pid,
    )


def run_task(
    spec: Any,
    attempt: int = 0,
    cache: Any = None,
    reraise: Tuple[type, ...] = (),
) -> Any:
    """The universal task body: chaos injection + run + envelope.

    Exceptions never propagate (except the ``reraise`` types — inline
    backends pass ``KeyboardInterrupt`` so a Ctrl-C is not swallowed
    into a failure record): the task reports either ``("ok", result,
    wall_s, pid)`` or ``("error", type, message, traceback,
    diagnostics, wall_s, pid)``.  Injected chaos may instead kill the
    process (crash), sleep past the deadline (hang), or substitute a
    garbage payload (corrupt).
    """
    start = time.perf_counter()
    pid = os.getpid()
    try:
        key = spec.key() if spec.chaos is not None else ""
        action = chaos_mod.inject(spec.chaos, key, attempt)
        if action == "corrupt":
            return chaos_mod.CORRUPT_PAYLOAD
        result = execute_run(spec, cache=cache)
        return ("ok", result, time.perf_counter() - start, pid)
    except reraise:
        raise
    except BaseException as exc:  # noqa: BLE001 - structured error envelope
        return error_envelope(exc, time.perf_counter() - start, pid)


def parse_envelope(payload: Any) -> Tuple[Any, ...]:
    """Validate a task payload envelope (corrupt payloads raise)."""
    if isinstance(payload, tuple) and payload:
        if payload[0] == "ok" and len(payload) == 4:
            return payload
        if payload[0] == "error" and len(payload) == 7:
            return payload
    raise CorruptResultError(
        f"worker returned malformed payload: {type(payload).__name__}"
    )


# ---------------------------------------------------------------------------
# handles and health
# ---------------------------------------------------------------------------


class TaskHandle:
    """One submitted task: settles exactly once with payload or signal."""

    __slots__ = (
        "spec",
        "attempt",
        "token",
        "deadline",
        "submitted_at",
        "_payload",
        "_error",
        "_settled",
    )

    def __init__(
        self,
        spec: Any,
        attempt: int = 0,
        token: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.attempt = attempt
        self.token = token
        #: ``time.monotonic()`` budget expiry, or ``None`` (no budget).
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        self._payload: Any = None
        self._error: Optional[BaseException] = None
        self._settled = False

    @property
    def done(self) -> bool:
        return self._settled

    def settle_payload(self, payload: Any) -> None:
        """Settle with a payload envelope (idempotence is an error)."""
        if self._settled:
            raise RuntimeError("task handle already settled")
        self._payload = payload
        self._settled = True

    def settle_error(self, error: BaseException) -> None:
        """Settle with a typed signal (WorkerDeath / TaskTimeout)."""
        if self._settled:
            raise RuntimeError("task handle already settled")
        self._error = error
        self._settled = True

    def outcome(self) -> Any:
        """The payload envelope, or raise the typed signal."""
        if not self._settled:
            raise RuntimeError("task handle is not settled yet")
        if self._error is not None:
            raise self._error
        return self._payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "settled" if self._settled else "pending"
        return f"<TaskHandle {self.token or id(self):} {state}>"


@dataclasses.dataclass
class BackendHealth:
    """Introspectable backend state (served by ``/v1/health`` too)."""

    name: str
    #: Configured worker slots.
    workers: int
    #: Workers currently believed alive (== ``workers`` when healthy).
    alive_workers: int
    #: Tasks submitted but not yet settled.
    inflight: int
    #: Tasks queued behind the workers (0 for executor-style backends).
    queue_depth: int
    #: Total worker/pool respawns (crash- and cancel-driven).
    restarts: int
    #: Crash-driven respawns only (counts against the degrade budget).
    crash_restarts: int
    #: Backend-specific counters (``backend_*`` namespace).
    counters: Dict[str, int] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """The health snapshot as a flat, JSON-serializable dict."""
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# the backend contract
# ---------------------------------------------------------------------------


class ExecutionBackend(abc.ABC):
    """Abstract execution substrate for :class:`~repro.sim.engine.RunSpec` tasks.

    Lifecycle: :meth:`start` before the first submit, :meth:`shutdown`
    when done (``with backend:`` does both).  Between them the caller
    submits up to :meth:`capacity` concurrent tasks and drains
    :meth:`poll`.
    """

    #: Registry name (``inline`` / ``threads`` / ``process`` / ``queue``).
    name: str = "?"
    #: Whether an expired per-task budget can actually cancel the task.
    #: Non-preemptible backends (inline, threads) record timeouts
    #: post-hoc but cannot interrupt a hung simulation.
    preemptible: bool = False

    def start(self) -> None:
        """Allocate workers; idempotent."""

    @abc.abstractmethod
    def submit(
        self,
        spec: Any,
        attempt: int = 0,
        timeout_s: Optional[float] = None,
    ) -> TaskHandle:
        """Accept one task; returns its (unsettled) handle."""

    @abc.abstractmethod
    def poll(self, timeout: Optional[float] = None) -> List[TaskHandle]:
        """Newly settled handles; blocks up to ``timeout`` for the first.

        Returns ``[]`` when nothing is in flight, or when ``timeout``
        expires first.  ``timeout=None`` blocks until a settlement.
        """

    @abc.abstractmethod
    def capacity(self) -> int:
        """How many tasks may usefully be in flight at once."""

    @abc.abstractmethod
    def health(self) -> BackendHealth:
        """A snapshot of worker liveness, queue depth, and counters."""

    def shutdown(self, wait: bool = True) -> None:
        """Release workers; safe to call twice."""

    # -- context manager sugar -----------------------------------------
    def __enter__(self) -> "ExecutionBackend":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------


def default_backend_name(jobs: int) -> str:
    """The historical default: inline for one job, a process pool above."""
    return "inline" if jobs == 1 else "process"


def resolve_backend(
    backend: Any = None,
    *,
    jobs: Optional[int] = None,
    workers: Optional[int] = None,
    **kwargs: Any,
) -> Tuple[ExecutionBackend, bool]:
    """Map a backend argument onto a started-able backend instance.

    ``backend`` may be an :class:`ExecutionBackend` instance (returned
    as-is, caller keeps ownership), a registry name, or ``None`` — in
    which case the ``REPRO_BACKEND`` environment variable is consulted,
    then the historical ``jobs``-based default.  Returns ``(backend,
    owned)`` where ``owned`` tells the caller whether it must call
    :meth:`ExecutionBackend.shutdown`.
    """
    if isinstance(backend, ExecutionBackend):
        return backend, False
    name = backend
    if name is None:
        name = os.environ.get(BACKEND_ENV) or None
    from repro.sim.engine import resolve_jobs

    jobs = resolve_jobs(jobs)
    if name is None:
        name = default_backend_name(jobs)
    if not isinstance(name, str):
        raise ValueError(
            f"backend must be a name or an ExecutionBackend, got {name!r}"
        )
    name = name.strip().lower()
    workers = workers if workers is not None else jobs
    workers = max(1, workers)
    if name == "inline":
        from repro.sim.backends.local import InlineBackend

        return InlineBackend(**kwargs), True
    if name == "threads":
        from repro.sim.backends.local import ThreadBackend

        return ThreadBackend(workers=workers, **kwargs), True
    if name == "process":
        from repro.sim.backends.process import ProcessBackend

        return ProcessBackend(workers=workers, **kwargs), True
    if name == "queue":
        from repro.sim.backends.queue import QueueBackend

        return QueueBackend(workers=workers, **kwargs), True
    raise ValueError(
        f"unknown execution backend {name!r}; "
        f"choose from {', '.join(BACKEND_NAMES)}"
    )
