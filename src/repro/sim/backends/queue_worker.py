"""Detached worker for the queue backend (``python -m`` entry point).

Runs as ``python -m repro.sim.backends.queue_worker <spool> <wid>``: a
plain subprocess with no pipe back to the parent — every interaction
goes through the spool directory, which is what lets a fleet of these
run on any host that can see the filesystem.

Loop: heartbeat, honor the ``stop`` sentinel, lease one task (own
sub-queue first, then steal from any other — including sub-queues of
dead workers, which is how orphaned work is rescued), run it through
the universal :func:`~repro.sim.backends.base.run_task` envelope, spool
the result atomically, release the lease.  Ok results are additionally
pushed through the content-hash result store when the spool config
names one, so a fleet shares one memoized result set.

The worker marks itself with
:func:`~repro.sim.chaos.mark_worker_process`, so an injected ``crash``
fault takes the *process* down (exit code 23) exactly like a pool
worker — the lease it leaves behind is the parent's certain crash
attribution.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Optional, Tuple

HEARTBEAT_INTERVAL_S = 1.0
IDLE_SLEEP_S = 0.02


def _beat(spool: Path, wid: str) -> None:
    hb = spool / "workers" / f"{wid}.hb"
    try:
        with open(hb, "w") as fh:
            fh.write(f"{time.time():.3f}\n")
    except OSError:
        pass


def _lease_one(
    spool: Path, wid: str
) -> Optional[Tuple[str, Path, bool]]:
    """Claim one task file via atomic rename; own queue first."""
    tasks = spool / "tasks"
    try:
        dirs = sorted(d for d in tasks.iterdir() if d.is_dir())
    except OSError:
        return None
    dirs.sort(key=lambda d: d.name != wid)  # stable: own sub-queue first
    for queue_dir in dirs:
        for path in sorted(queue_dir.glob("*.task")):
            task_id = path.stem
            lease = spool / "leases" / f"{wid}--{task_id}.task"
            try:
                os.rename(path, lease)
            except OSError:
                continue  # lost the race to another worker
            return task_id, lease, queue_dir.name != wid
    return None


def _spool_result(spool: Path, task_id: str, meta: dict) -> None:
    results = spool / "results"
    blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    fd, tmp = tempfile.mkstemp(dir=str(results), suffix=".tmp")
    with os.fdopen(fd, "wb") as fh:
        fh.write(blob)
    os.rename(tmp, results / f"{task_id}.pkl")


def main(argv: Any = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        print(
            "usage: python -m repro.sim.backends.queue_worker SPOOL WID",
            file=sys.stderr,
        )
        return 2
    spool, wid = Path(argv[0]), argv[1]

    from repro.sim.backends.base import run_task
    from repro.sim.chaos import mark_worker_process
    from repro.sim.runner import TraceCache

    mark_worker_process()
    store = None
    try:
        config = json.loads((spool / "config.json").read_text())
    except (OSError, ValueError):
        config = {}
    if config.get("store_root"):
        from repro.sim.store import ResultStore

        store = ResultStore(Path(config["store_root"]))

    cache = TraceCache()
    current_cell = None
    last_beat = 0.0
    while True:
        now = time.time()
        if now - last_beat >= HEARTBEAT_INTERVAL_S:
            _beat(spool, wid)
            last_beat = now
        if (spool / "stop").exists():
            return 0
        leased = _lease_one(spool, wid)
        if leased is None:
            time.sleep(IDLE_SLEEP_S)
            continue
        task_id, lease, stolen = leased
        lease_start = time.monotonic()
        payload: Any = None
        try:
            spec, attempt = pickle.loads(lease.read_bytes())
        except Exception:
            # Unreadable task blob: spool a malformed payload; the
            # supervisor's envelope parser turns it into a corrupt-
            # payload failure with the task still attributed.
            spec = None
        if spec is not None:
            if current_cell not in (None, spec.trace_key):
                cache.clear()
            current_cell = spec.trace_key
            payload = run_task(spec, attempt, cache=cache)
            if (
                store is not None
                and isinstance(payload, tuple)
                and payload
                and payload[0] == "ok"
                and spec.telemetry is None
                and spec.chaos is None
            ):
                try:
                    store.put(spec.key(), payload[1])
                except Exception:
                    pass  # the spooled envelope is the source of truth
        _spool_result(
            spool,
            task_id,
            {
                "payload": payload,
                "wid": wid,
                "pid": os.getpid(),
                "stolen": stolen,
                "lease_age_s": time.monotonic() - lease_start,
            },
        )
        try:
            lease.unlink()
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(main())
