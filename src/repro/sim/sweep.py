"""Parameter-sweep helpers for the sensitivity figures.

Builds the :class:`~repro.common.params.SystemParams` variants that the
paper sweeps: reveal-bit cache levels (Fig. 10) and load-pair-table sizes
(Fig. 11).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.common.params import SystemParams
from repro.common.types import CacheLevel

__all__ = ["recon_level_variants", "lpt_size_variants"]


def recon_level_variants(
    base: SystemParams = SystemParams(),
) -> "List[Tuple[str, SystemParams]]":
    """(label, params) for ReCon applied at L1 / L1+L2 / all levels."""
    return [
        (
            "L1",
            dataclasses.replace(base, recon_levels=(CacheLevel.L1,)),
        ),
        (
            "L1+L2",
            dataclasses.replace(
                base, recon_levels=(CacheLevel.L1, CacheLevel.L2)
            ),
        ),
        ("all-levels", dataclasses.replace(base, recon_levels=None)),
    ]


def lpt_size_variants(
    base: SystemParams = SystemParams(),
    divisors: "Tuple[int, ...]" = (1, 4, 16, 64),
) -> "List[Tuple[str, SystemParams]]":
    """(label, params) for LPT sizes of #physregs / divisor (Fig. 11)."""
    variants = []
    for divisor in divisors:
        entries = max(1, base.core.phys_regs // divisor)
        label = "LPT" if divisor == 1 else f"LPT/{divisor}"
        variants.append(
            (label, dataclasses.replace(base, lpt_entries=entries))
        )
    return variants
