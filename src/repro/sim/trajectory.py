"""Bench-trajectory aggregation: one summary point per CI run.

The CI benchmark jobs each emit a standalone artifact —
``results/BENCH_hotpath.json`` (engine throughput cells),
``results/BENCH_gadgets.json`` (red-team verdict matrix), and
``results/BENCH_sampling.json`` (sampled-vs-exact accuracy).  Those files
answer "how fast / how safe is this commit", but not "which commit made
it slower": each run overwrites the last.  This module folds every
``BENCH_*.json`` in a results directory into a single **trajectory
point** — suite throughput, verdict counts, git sha, timestamp — and
appends it to ``results/BENCH_trajectory.json``, so downloading one
artifact shows the whole perf/safety history at a glance.

The trajectory file is a version-tagged envelope::

    {"version": 1,
     "points": [{"sha": "...", "timestamp": ...,
                 "hotpath": {...}, "gadgets": {...},
                 "sources": ["BENCH_hotpath.json", ...]}, ...]}

Re-aggregating the same sha replaces its point instead of appending, so
a re-run CI job never duplicates history.  ``scripts/aggregate_bench.py``
is the CLI wrapper the workflow invokes.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "TRAJECTORY_NAME",
    "aggregate_point",
    "load_trajectory",
    "update_trajectory",
]

TRAJECTORY_NAME = "BENCH_trajectory.json"

_TRAJECTORY_VERSION = 1


def resolve_sha(repo_root: Optional[Path] = None) -> Optional[str]:
    """The commit being measured: ``GITHUB_SHA``, else ``git rev-parse``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _geomean(values: List[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    product = 1.0
    for value in positive:
        product *= value
    return product ** (1.0 / len(positive))


def _summarize_hotpath(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Throughput per cell plus suite-level aggregates."""
    cells = payload.get("cells", {})
    summary_cells = {
        name: {
            key: cell.get(key)
            for key in (
                "legacy_uops_per_sec",
                "vector_uops_per_sec",
                "speedup",
            )
            if key in cell
        }
        for name, cell in cells.items()
        if isinstance(cell, dict)
    }
    vector = [
        c["vector_uops_per_sec"]
        for c in summary_cells.values()
        if isinstance(c.get("vector_uops_per_sec"), (int, float))
    ]
    speedups = [
        c["speedup"]
        for c in summary_cells.values()
        if isinstance(c.get("speedup"), (int, float))
    ]
    return {
        "length": payload.get("length"),
        "cells": summary_cells,
        "mean_vector_uops_per_sec": (
            round(sum(vector) / len(vector)) if vector else 0
        ),
        "geomean_speedup": round(_geomean(speedups), 3) if speedups else 0.0,
    }


def _summarize_sampling(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Sampled-vs-exact accuracy and speedup over the sampling bench cells.

    Reads ``BENCH_sampling.json`` (see ``benchmarks/bench_sampling.py``):
    prefers the bench's own ``summary`` block, recomputing the counts
    from ``cells`` when a partial artifact carries cells but no summary.
    """
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        summary = {}
    cells = payload.get("cells", {})
    if not isinstance(cells, dict):
        cells = {}
    within = [
        bool(cell.get("within_ci"))
        for cell in cells.values()
        if isinstance(cell, dict)
    ]
    cuts = [
        cell["cut"]
        for cell in cells.values()
        if isinstance(cell, dict)
        and isinstance(cell.get("cut"), (int, float))
    ]
    return {
        "length": payload.get("length"),
        "spec": payload.get("sampling"),
        "cells": summary.get("cells", len(within)),
        "within_ci": summary.get("within_ci", sum(within)),
        "min_cut": summary.get(
            "min_cut", round(min(cuts), 2) if cuts else 0.0
        ),
        "geomean_cut": summary.get(
            "geomean_cut", round(_geomean(list(cuts)), 2) if cuts else 0.0
        ),
    }


def _summarize_gadgets(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Verdict counts over the red-team matrix cells."""
    cells = payload.get("cells", [])
    verdicts: Dict[str, int] = {}
    ok = 0
    for cell in cells:
        if not isinstance(cell, dict):
            continue
        verdict = str(cell.get("verdict", "unknown"))
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        if cell.get("ok"):
            ok += 1
    return {"cells": len(cells), "ok": ok, "verdicts": verdicts}


def aggregate_point(
    results_dir: Path,
    *,
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """One trajectory point from every ``BENCH_*.json`` in ``results_dir``.

    Unreadable or non-JSON bench files are skipped (listed under
    ``"skipped"``) rather than failing the aggregation — a torn artifact
    should not erase the rest of the point.  A missing or empty results
    directory yields a stub point (``sources: []``) so the trajectory
    file always exists downstream.
    """
    results_dir = Path(results_dir)
    point: Dict[str, Any] = {
        "sha": sha if sha is not None else resolve_sha(results_dir.parent),
        "timestamp": timestamp if timestamp is not None else time.time(),
        "sources": [],
        "skipped": [],
    }
    paths = (
        sorted(results_dir.glob("BENCH_*.json"))
        if results_dir.is_dir()
        else []
    )
    for path in paths:
        if path.name == TRAJECTORY_NAME:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            point["skipped"].append(path.name)
            continue
        point["sources"].append(path.name)
        if path.name == "BENCH_hotpath.json":
            point["hotpath"] = _summarize_hotpath(payload)
        elif path.name == "BENCH_gadgets.json":
            point["gadgets"] = _summarize_gadgets(payload)
        elif path.name == "BENCH_sampling.json":
            point["sampling"] = _summarize_sampling(payload)
        else:  # future bench artifacts ride along un-summarized
            point.setdefault("extra", {})[path.name] = {
                "keys": sorted(payload)[:16]
                if isinstance(payload, dict)
                else type(payload).__name__
            }
    if not point["skipped"]:
        del point["skipped"]
    return point


def load_trajectory(path: Path) -> Dict[str, Any]:
    """The trajectory envelope at ``path``; a fresh one when absent/torn."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return {"version": _TRAJECTORY_VERSION, "points": []}
    if not isinstance(payload, dict) or not isinstance(
        payload.get("points"), list
    ):
        return {"version": _TRAJECTORY_VERSION, "points": []}
    payload.setdefault("version", _TRAJECTORY_VERSION)
    return payload


def update_trajectory(
    results_dir: Path,
    out_path: Optional[Path] = None,
    *,
    sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Path:
    """Append (or replace, same sha) this run's point; returns the path."""
    results_dir = Path(results_dir)
    out_path = (
        Path(out_path) if out_path is not None else results_dir / TRAJECTORY_NAME
    )
    point = aggregate_point(results_dir, sha=sha, timestamp=timestamp)
    trajectory = load_trajectory(out_path)
    points = [
        existing
        for existing in trajectory["points"]
        if point["sha"] is None or existing.get("sha") != point["sha"]
    ]
    points.append(point)
    trajectory["points"] = points
    # Torn-proof: fsync'd temp + atomic rename (plus directory fsync),
    # so a crash mid-aggregation never truncates the accumulated
    # history the next CI run appends to.
    from repro.sim.ledger import durable_write

    out_path.parent.mkdir(parents=True, exist_ok=True)
    durable_write(
        out_path, json.dumps(trajectory, indent=1, sort_keys=True) + "\n"
    )
    return out_path
