"""ASCII chart rendering.

The paper's figures are bar charts; the benches print their numeric
series, and this module renders them as terminal bar charts so a
reproduction run *looks* like the figure it regenerates — without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_PARTIAL = (" ", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, scale: float, width: int) -> str:
    """Render ``value`` (0..scale) as a bar of at most ``width`` cells."""
    if scale <= 0:
        return ""
    cells = max(0.0, value / scale) * width
    whole = int(cells)
    frac = cells - whole
    bar = _FULL * min(whole, width)
    if whole < width:
        eighths = int(round(frac * 8))
        if eighths >= 8:
            bar += _FULL
        elif eighths > 0:
            bar += _PARTIAL[eighths]
    return bar


def bar_chart(
    series: Mapping[str, float],
    width: int = 46,
    max_value: Optional[float] = None,
    fmt: str = "{:.3f}",
    reference: Optional[float] = None,
) -> str:
    """One horizontal bar per entry, labels left, values right.

    ``reference`` draws a vertical tick at that value (e.g. 1.0 for
    normalized-IPC charts).
    """
    if not series:
        return "(empty chart)"
    scale = max_value if max_value is not None else max(series.values())
    if scale <= 0:
        scale = 1.0
    label_w = max(len(label) for label in series)
    ref_col = None
    if reference is not None and 0 < reference <= scale:
        ref_col = min(width - 1, int(round(reference / scale * width)))
    lines = []
    for label, value in series.items():
        bar = _bar(value, scale, width)
        row = list(bar.ljust(width))
        if ref_col is not None and 0 <= ref_col < width and row[ref_col] == " ":
            row[ref_col] = "|"
        lines.append(
            f"{label.ljust(label_w)}  {''.join(row)}  {fmt.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Mapping[str, float]]],
    width: int = 40,
    max_value: Optional[float] = None,
    fmt: str = "{:.3f}",
    reference: Optional[float] = None,
) -> str:
    """Bar chart with one sub-bar per series within each group.

    ``groups`` is a sequence of (group label, {series label: value}).
    """
    if not groups:
        return "(empty chart)"
    scale = max_value
    if scale is None:
        scale = max(
            (v for _, series in groups for v in series.values()), default=1.0
        )
    if scale <= 0:
        scale = 1.0
    series_w = max(
        (len(name) for _, series in groups for name in series), default=0
    )
    blocks = []
    for group, series in groups:
        lines = [f"{group}"]
        lines.append(
            bar_chart(
                {name.ljust(series_w): value for name, value in series.items()},
                width=width,
                max_value=scale,
                fmt=fmt,
                reference=reference,
            )
        )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
