"""Persistent on-disk result store.

Completed runs are memoized under a content hash of everything that
determines their outcome — ``(profile, scheme, length, threads, seed,
SystemParams, code-schema version)`` — so repeated bench invocations are
near-instant and interrupted sweeps resume where they stopped.

Layout: one JSON file per run at ``<root>/<hash[:2]>/<hash>.json``,
written atomically (tmp file + rename) so a crash mid-write never leaves
a truncated entry behind.  Very large sweeps (the queue backend's
detached workers write results concurrently) can deepen the prefix
fan-out with ``ResultStore(root, shard_depth=2)`` or the
``REPRO_STORE_SHARDS`` environment variable — entries then land at
``<root>/<hash[:2]>/<hash[2:4]>/<hash>.json`` and so on, keeping any
single directory small.  Reads fall back across shard depths, so a
store written at one depth stays readable at another.  A *corrupt* entry — present on disk but
unparseable or schema-invalid — is never silently swallowed: it is
quarantined in place (renamed to ``<entry>.json.corrupt`` so it stops
matching future lookups but remains inspectable), a ``RuntimeWarning``
names the quarantined file, and :attr:`ResultStore.corrupt_entries`
counts the damage.  The lookup then proceeds as a miss, so the run is
simply recomputed.

The store location defaults to ``results/.store`` (relative to the
current directory); override it with the ``REPRO_STORE`` environment
variable, or disable persistence entirely with ``REPRO_STORE=off``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, Optional

from repro.common.params import SystemParams
from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.sim.runner import RunResult
from repro.telemetry.events import TelemetryResult
from repro.workloads.profile import BenchmarkProfile

__all__ = [
    "SCHEMA_VERSION",
    "STORE_ENV",
    "STORE_SHARDS_ENV",
    "ResultStore",
    "default_shard_depth",
    "default_store_root",
    "result_from_dict",
    "result_to_dict",
    "run_key",
]

#: Bump whenever the simulator's semantics change in a way that makes old
#: stored results stale — every existing key is invalidated at once.
SCHEMA_VERSION = 1

#: Environment variable naming the store directory ("off" disables it).
STORE_ENV = "REPRO_STORE"

#: Environment variable setting the default key-prefix shard depth.
STORE_SHARDS_ENV = "REPRO_STORE_SHARDS"

_DISABLED_VALUES = ("", "0", "off", "none", "disabled")

_MAX_SHARD_DEPTH = 4


def default_shard_depth() -> int:
    """The shard depth from ``REPRO_STORE_SHARDS``, clamped to [1, 4]."""
    value = os.environ.get(STORE_SHARDS_ENV)
    if value is None:
        return 1
    try:
        depth = int(value)
    except ValueError:
        raise ValueError(
            f"{STORE_SHARDS_ENV} must be an integer in [1, {_MAX_SHARD_DEPTH}], "
            f"got {value!r}"
        ) from None
    return max(1, min(_MAX_SHARD_DEPTH, depth))


def default_store_root() -> Optional[Path]:
    """The store directory, or ``None`` if persistence is disabled."""
    value = os.environ.get(STORE_ENV)
    if value is None:
        return Path("results") / ".store"
    if value.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(value)


def _jsonable(value: Any) -> Any:
    """Canonical JSON-safe form of params/profile field values."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def run_key(
    profile: BenchmarkProfile,
    scheme: SchemeKind,
    length: int,
    threads: int,
    params: SystemParams,
    warmup_uops: int,
    sampling: Any = None,
) -> str:
    """Content hash identifying one run's full configuration.

    ``sampling`` joins the payload only when set: exact-mode keys are
    byte-for-byte what they were before sampled simulation existed, so
    stores populated by older versions keep hitting.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "profile": _jsonable(profile),
        "scheme": scheme.value,
        "length": length,
        "threads": threads,
        "seed": profile.seed,
        "params": _jsonable(params),
        "warmup_uops": warmup_uops,
    }
    if sampling is not None:
        payload["sampling"] = _jsonable(sampling)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """JSON-safe dict encoding of a :class:`RunResult`.

    When the run traced, the telemetry *metrics* (counters, gauges,
    histograms) ride along under ``"metrics"``; the raw event list does
    not — it is unbounded and belongs in the exporters' trace files.
    """
    data = {
        "profile": _jsonable(result.profile),
        "scheme": result.scheme.value,
        "cycles": result.cycles,
        "stats": result.stats.as_dict(),
        "per_core": [core.as_dict() for core in result.per_core],
    }
    if result.telemetry is not None:
        data["metrics"] = result.telemetry.metrics
    sampling = getattr(result, "sampling", None)
    if sampling is not None:
        data["sampling"] = sampling.as_dict()
    return data


def result_from_dict(data: Dict[str, Any]) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output.

    A stored ``"metrics"`` block comes back as a light
    :class:`~repro.telemetry.events.TelemetryResult` carrying the metric
    values only (no events — those live in the exported trace files).
    """
    profile_data = dict(data["profile"])
    profile_data["kernel_weights"] = dict(profile_data["kernel_weights"])
    telemetry = None
    if "metrics" in data:
        telemetry = TelemetryResult.from_metrics_dict(data["metrics"])
    sampling = None
    if "sampling" in data:
        from repro.sampling.estimator import SampledEstimate

        sampling = SampledEstimate.from_dict(data["sampling"])
    return RunResult(
        profile=BenchmarkProfile(**profile_data),
        scheme=SchemeKind(data["scheme"]),
        cycles=int(data["cycles"]),
        stats=StatSet(**data["stats"]),
        per_core=[StatSet(**core) for core in data["per_core"]],
        telemetry=telemetry,
        sampling=sampling,
    )


class ResultStore:
    """File-backed memo of completed runs, keyed by :func:`run_key`."""

    def __init__(self, root: Path, shard_depth: Optional[int] = None) -> None:
        self.root = Path(root)
        if shard_depth is None:
            shard_depth = default_shard_depth()
        if not 1 <= shard_depth <= _MAX_SHARD_DEPTH:
            raise ValueError(
                f"shard_depth must be in [1, {_MAX_SHARD_DEPTH}], "
                f"got {shard_depth}"
            )
        #: Key-prefix directory levels under :attr:`root` (2 hex chars each).
        self.shard_depth = shard_depth
        self.hits = 0
        self.misses = 0
        #: Entries found damaged and quarantined (renamed ``*.corrupt``).
        self.corrupt_entries = 0

    def _path_at(self, key: str, depth: int) -> Path:
        path = self.root
        for level in range(depth):
            path = path / key[2 * level : 2 * level + 2]
        return path / f"{key}.json"

    def _path(self, key: str) -> Path:
        return self._path_at(key, self.shard_depth)

    def _read(self, key: str) -> "Optional[tuple[Path, str]]":
        """Entry text at the configured depth, else any other depth."""
        depths = [self.shard_depth] + [
            d for d in range(1, _MAX_SHARD_DEPTH + 1) if d != self.shard_depth
        ]
        for depth in depths:
            path = self._path_at(key, depth)
            try:
                return path, path.read_text()
            except OSError:
                continue
        return None

    def get(self, key: str) -> Optional[RunResult]:
        """The stored result for ``key``, or ``None`` (counts hit/miss).

        A missing entry is a plain miss.  An entry that exists but does
        not decode is quarantined (renamed to ``*.json.corrupt``), a
        ``RuntimeWarning`` is emitted, :attr:`corrupt_entries` is
        bumped, and the lookup counts as a miss.
        """
        found = self._read(key)
        if found is None:
            self.misses += 1
            return None
        path, text = found
        try:
            result = result_from_dict(json.loads(text))
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a damaged entry aside so it stops matching lookups."""
        self.corrupt_entries += 1
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
            where = f"quarantined as {quarantined}"
        except OSError:
            where = "could not be quarantined"
        warnings.warn(
            f"result store entry {path} is corrupt "
            f"({type(exc).__name__}: {exc}); {where}",
            RuntimeWarning,
            stacklevel=3,
        )

    def put(self, key: str, result: RunResult) -> None:
        """Persist ``result`` under ``key`` (atomic write)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result_to_dict(result))
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # content-hash blob entries
    # ------------------------------------------------------------------
    def _entry_path(self, kind: str, key: str) -> Path:
        if not kind or any(ch in kind for ch in "/\\."):
            raise ValueError(f"bad entry kind {kind!r}")
        # Blobs live under a dot-directory so run-entry enumeration
        # (__len__, clear) keeps metering simulated runs only.
        return self.root / ".blobs" / kind / key[:2] / f"{key}.json"

    def get_entry(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """A JSON blob stored by :meth:`put_entry`, or ``None``.

        Blob entries are auxiliary content-hash artifacts (e.g. warm
        memory images shared across schemes) living beside run results
        under ``<root>/<kind>/``.  Corrupt blobs are quarantined like
        run entries; lookups do not count toward :attr:`hits`/
        :attr:`misses` (those meter simulated-run savings).
        """
        path = self._entry_path(kind, key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
        except ValueError as exc:
            self._quarantine(path, exc)
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, TypeError("blob entry is not an object"))
            return None
        return payload

    def put_entry(self, kind: str, key: str, payload: Dict[str, Any]) -> None:
        """Persist a JSON blob under ``(kind, key)`` (atomic write)."""
        path = self._entry_path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _entries(self):
        """Every stored entry at any shard depth (skips tmp/corrupt files)."""
        return (
            entry
            for entry in self.root.rglob("*.json")
            if not entry.name.startswith(".")
            and not any(
                part.startswith(".")
                for part in entry.relative_to(self.root).parts[:-1]
            )
        )

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self._entries())

    def clear(self) -> None:
        """Delete every stored entry (the directory itself survives)."""
        if not self.root.is_dir():
            return
        for entry in self._entries():
            try:
                entry.unlink()
            except OSError:
                pass
