"""Command-line interface.

Commands are grouped by what they do::

    python -m repro list                          # available benchmarks
    python -m repro run one spec2017/mcf          # one benchmark, all schemes
    python -m repro run suite spec2017            # whole suite table
    python -m repro run replay mcf.trace          # run a saved trace file
    python -m repro run leakage spec2017/gcc      # Clueless analysis
    python -m repro sweep lpt spec2017/mcf        # LPT size sensitivity
    python -m repro sweep levels spec2017/omnetpp # Fig. 10-style sweep
    python -m repro telemetry summarize trace.json  # summarize a trace
    python -m repro save-trace spec2017/mcf mcf.trace   # export a trace
    python -m repro redteam matrix                # gadget x scheme verdicts
    python -m repro redteam audit                 # metadata AUC audit
    python -m repro serve                         # HTTP sweep service

The pre-grouping spellings (``run <benchmark>``, ``suite``, ``replay``,
``leakage``, ``sweep-lpt``, ``sweep-levels``, ``telemetry <trace>``)
still work as hidden aliases for one release: they are rewritten onto
the grouped tree and emit a :class:`DeprecationWarning` naming the
replacement.

Common options: ``--length`` (trace micro-ops), ``--schemes`` (comma
list), ``--threads`` (parallel workloads), ``--seed`` (override profile
seed), ``--jobs`` (worker processes; also the ``REPRO_JOBS`` environment
variable), ``--backend`` (execution substrate: ``inline`` / ``threads``
/ ``process`` / ``queue``; also the ``REPRO_BACKEND`` environment
variable — see ``docs/backends.md``), ``--no-store`` (skip the
persistent result store), ``--sampling SPEC`` (statistically sampled
simulation on ``run one``/``run suite`` and the sweeps — see
``docs/sampling.md``; estimated IPCs print as ``value±ci``).

``serve`` runs the async sweep service (:mod:`repro.sim.service`):
clients POST suites to ``/v1/suites``, poll ``/v1/jobs/<id>``, stream
NDJSON progress from ``/v1/jobs/<id>/events``, and fetch the finished
``SuiteResult`` JSON from ``/v1/jobs/<id>/result``.

Observability options on ``run one``/``run suite`` (see
``docs/observability.md``):
``--trace PATH`` collects the telemetry event stream and writes a Chrome
trace-event JSON (plus a Konata pipeline view and leakage CSV per grid
cell next to it), ``--trace-filter CATS`` restricts collection to a
comma list of event categories, and ``--metrics-out PATH`` writes the
metrics registry (counters/gauges/histograms) as JSON.  Telemetry runs
bypass the result store — a memoized result has no event stream.

Grid commands (``run``, ``suite``) fan out across worker processes and
memoize completed runs in the on-disk result store (``results/.store``
by default; move it with ``REPRO_STORE=<dir>`` or disable it with
``REPRO_STORE=off``), so a repeated invocation is served from disk.
``suite`` also writes the full structured result (per-run wall times,
store hit counts, every counter) to ``results/suite_<name>.json``.

Robustness options on ``run one``/``run suite`` (see
``docs/robustness.md``):
``--timeout SECONDS`` bounds each run's wall-clock time, ``--retries N``
re-attempts failing runs with backoff, ``--resume`` continues an
interrupted sweep from its checkpoint journal, and ``--chaos SPEC``
injects deterministic faults (worker crashes, hangs, corrupt payloads,
simulated OOM) to exercise the supervision layer.  Any of these routes
execution through the fault-tolerant supervisor: cells that exhaust
their retries are reported as failure rows instead of aborting the
command.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import warnings
from pathlib import Path
from typing import List, Optional, Sequence

import json

from repro.analysis import Clueless
from repro.common import SchemeKind
from repro.sampling import parse_sampling
from repro.sim import (
    BACKEND_NAMES,
    FaultPolicy,
    RunConfig,
    SuiteJournal,
    default_journal_path,
    failure_rows,
    format_ipc,
    format_table,
    parse_chaos,
    resolve_jobs,
    run_suite,
)
from repro.sim.runner import TraceCache, default_trace_length, run_benchmark
from repro.sim.store import ResultStore, default_store_root
from repro.sim.sweep import lpt_size_variants, recon_level_variants
from repro.telemetry import (
    TelemetryConfig,
    leakage_csv,
    metrics_summary_rows,
    metrics_to_json,
    parse_filter,
    to_chrome_trace,
    to_konata,
    trace_summary_rows,
    validate_chrome_trace,
)
from repro.workloads import all_benchmarks, build_trace, get_benchmark

__all__ = ["main"]

_DEFAULT_SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.NDA_RECON,
    SchemeKind.STT,
    SchemeKind.STT_RECON,
)


def _parse_schemes(text: str) -> List[SchemeKind]:
    table = {scheme.value: scheme for scheme in SchemeKind}
    schemes = []
    for token in text.split(","):
        token = token.strip()
        if token not in table:
            raise SystemExit(
                f"unknown scheme {token!r}; choose from {sorted(table)}"
            )
        schemes.append(table[token])
    return schemes


def _resolve(label: str):
    if "/" not in label:
        raise SystemExit("benchmark must be <suite>/<name>, e.g. spec2017/mcf")
    suite, name = label.split("/", 1)
    try:
        return get_benchmark(suite, name)
    except KeyError as exc:
        raise SystemExit(str(exc))


def _apply_seed(profile, seed):
    if seed is None:
        return profile
    return dataclasses.replace(profile, seed=seed)


def _store_from_args(args: argparse.Namespace) -> Optional[ResultStore]:
    """The persistent result store, honouring --no-store and REPRO_STORE."""
    if getattr(args, "no_store", False):
        return None
    root = default_store_root()
    if root is None:
        return None
    return ResultStore(root)


def _telemetry_from_args(args: argparse.Namespace) -> Optional[TelemetryConfig]:
    """Build the run's TelemetryConfig from --trace/--trace-filter/--metrics-out."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics_out", None)):
        return None
    try:
        categories = parse_filter(getattr(args, "trace_filter", None))
    except ValueError as exc:
        raise SystemExit(str(exc))
    return TelemetryConfig(categories=categories, timeline_interval=1000)


def _chaos_from_args(args: argparse.Namespace):
    """Parse --chaos into a ChaosConfig (None when chaos is off)."""
    try:
        return parse_chaos(getattr(args, "chaos", None))
    except ValueError as exc:
        raise SystemExit(str(exc))


def _sampling_from_args(args: argparse.Namespace):
    """Parse --sampling into a SamplingConfig (None = exact mode)."""
    try:
        return parse_sampling(getattr(args, "sampling", None))
    except ValueError as exc:
        raise SystemExit(str(exc))


def _run_config(**kwargs) -> RunConfig:
    """Build a RunConfig, mapping invalid knob combinations to exit 2."""
    try:
        return RunConfig(**kwargs)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _supervision_from_args(args: argparse.Namespace, store, chaos):
    """Build the supervisor knobs from --timeout/--retries/--resume.

    Returns ``(policy, journal, resume)``; all ``None``/``False`` when
    no robustness flag is set, which keeps the plain fail-fast engine
    path in charge.
    """
    timeout = getattr(args, "timeout", None)
    retries = getattr(args, "retries", None)
    resume = bool(getattr(args, "resume", False))
    supervised = (
        timeout is not None or retries is not None or resume or chaos is not None
    )
    if not supervised:
        return None, None, False
    policy = FaultPolicy(
        timeout_s=timeout,
        retries=retries if retries is not None else FaultPolicy.retries,
    )
    journal = SuiteJournal(default_journal_path(store))
    if not resume:
        journal.clear()  # a fresh sweep must not inherit old checkpoints
    return policy, journal, resume


def _report_failures(suite, chaos) -> int:
    """Print the failure table; the command's exit code.

    Failures are expected output under ``--chaos`` (the harness proves
    the suite completes *despite* them), so chaos runs exit 0; a real
    sweep with failed cells exits 1 so scripts notice.
    """
    if suite.failures:
        print(
            "\n"
            + format_table(
                ["bench", "scheme", "error", "attempts", "message"],
                failure_rows(suite.failures),
            ),
            file=sys.stderr,
        )
    if suite.fault_counters:
        counters = "  ".join(
            f"{name}={value}"
            for name, value in sorted(suite.fault_counters.items())
            if value
        )
        if counters:
            print(f"faults: {counters}", file=sys.stderr)
    if suite.failures and chaos is None:
        return 1
    return 0


def _export_telemetry(args: argparse.Namespace, cells) -> None:
    """Write the trace/metrics files for traced grid cells.

    ``cells`` is ``[(label, RunResult), ...]`` in spec order; cells whose
    results carry no telemetry (e.g. deserialized ones) are skipped.
    The merged Chrome trace is validated before it is written, so a bad
    payload fails the command instead of producing a corrupt file.
    """
    cells = [
        (label, result)
        for label, result in cells
        if result is not None and result.telemetry is not None
    ]
    if not cells:
        return
    written = []
    trace_path = getattr(args, "trace", None)
    if trace_path:
        combined = {"traceEvents": [], "displayTimeUnit": "ns"}
        for pid, (label, result) in enumerate(cells):
            payload = to_chrome_trace(
                result.telemetry.events, pid=pid, label=label
            )
            combined["traceEvents"].extend(payload["traceEvents"])
        validate_chrome_trace(combined)
        trace_path = Path(trace_path)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(json.dumps(combined))
        written.append(trace_path)
        for label, result in cells:
            stem = label.replace("/", "_").replace("+", "")
            konata_path = Path(f"{trace_path}.{stem}.kanata")
            konata_path.write_text(to_konata(result.telemetry.events))
            written.append(konata_path)
            if result.telemetry.timeline is not None:
                csv_path = Path(f"{trace_path}.{stem}.leakage.csv")
                csv_path.write_text(leakage_csv(result.telemetry.timeline))
                written.append(csv_path)
    metrics_path = getattr(args, "metrics_out", None)
    if metrics_path:
        metrics_path = Path(metrics_path)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            metrics_to_json(
                {label: result.telemetry.metrics for label, result in cells}
            )
        )
        written.append(metrics_path)
    for path in written:
        print(f"telemetry -> {path}", file=sys.stderr)


def cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [p.label, ", ".join(sorted(p.kernel_weights))]
        for p in all_benchmarks()
    ]
    print(format_table(["benchmark", "kernels"], rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    profile = _apply_seed(_resolve(args.benchmark), args.seed)
    schemes = _parse_schemes(args.schemes)
    store = _store_from_args(args)
    chaos = _chaos_from_args(args)
    policy, journal, resume = _supervision_from_args(args, store, chaos)
    suite = run_suite(
        [profile],
        schemes,
        args.length,
        config=_run_config(
            threads=args.threads,
            telemetry=_telemetry_from_args(args),
            chaos=chaos,
            sampling=_sampling_from_args(args),
        ),
        jobs=args.jobs,
        store=store,
        policy=policy,
        journal=journal,
        resume=resume,
        backend=args.backend,
    )
    _export_telemetry(
        args,
        [
            (f"{profile.name}/{scheme.value}", suite.get(profile.name, scheme))
            for scheme in schemes
        ],
    )
    baseline = suite.get(profile.name, SchemeKind.UNSAFE)
    rows = []
    for scheme in schemes:
        result = suite.get(profile.name, scheme)
        if result is None:  # this cell exhausted its retries
            rows.append([scheme.value, "n/a", "n/a", "n/a", "-", "-", "-"])
            continue
        stats = result.stats
        norm = result.ipc / baseline.ipc if baseline else float("nan")
        rows.append(
            [
                scheme.value,
                f"{result.cycles}",
                format_ipc(result),
                f"{norm:.3f}" if baseline else "n/a",
                str(stats.tainted_loads),
                str(stats.load_pairs_detected),
                str(stats.reveal_hits),
            ]
        )
    print(f"{profile.label}  length={args.length}  threads={args.threads}\n")
    print(
        format_table(
            ["scheme", "cycles", "IPC", "vs unsafe", "tainted", "pairs", "hits"],
            rows,
        )
    )
    print(f"\n{suite.summary()}", file=sys.stderr)
    return _report_failures(suite, chaos)


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.workloads import parsec_suite, spec2006_suite, spec2017_suite

    suites = {
        "spec2017": (spec2017_suite, 1),
        "spec2006": (spec2006_suite, 1),
        "parsec": (parsec_suite, 4),
    }
    if args.suite not in suites:
        raise SystemExit(f"unknown suite {args.suite!r}; choose from {sorted(suites)}")
    factory, threads = suites[args.suite]
    schemes = _parse_schemes(args.schemes)
    profiles = factory()
    store = _store_from_args(args)
    chaos = _chaos_from_args(args)
    policy, journal, resume = _supervision_from_args(args, store, chaos)
    suite = run_suite(
        profiles,
        schemes,
        args.length,
        config=_run_config(
            threads=threads,
            telemetry=_telemetry_from_args(args),
            chaos=chaos,
            sampling=_sampling_from_args(args),
        ),
        jobs=args.jobs,
        store=store,
        progress=True,
        policy=policy,
        journal=journal,
        resume=resume,
        backend=args.backend,
    )
    _export_telemetry(
        args,
        [
            (f"{profile.name}/{scheme.value}", suite.get(profile.name, scheme))
            for profile in profiles
            for scheme in schemes
        ],
    )
    rows = []
    for profile in profiles:
        base = suite.get(profile.name, SchemeKind.UNSAFE)
        row = [profile.name]
        for scheme in schemes:
            result = suite.get(profile.name, scheme)
            if result is None:  # this cell exhausted its retries
                row.append("n/a")
            elif scheme is SchemeKind.UNSAFE or base is None:
                row.append(format_ipc(result, digits=2))
            else:
                row.append(f"{result.ipc / base.ipc:.3f}")
        rows.append(row)
    headers = ["benchmark"] + [
        "IPC" if s is SchemeKind.UNSAFE else s.value for s in schemes
    ]
    print(format_table(headers, rows))
    out = suite.save(Path("results") / f"suite_{args.suite}.json")
    print(f"\n{suite.summary()}  ->  {out}", file=sys.stderr)
    return _report_failures(suite, chaos)


def cmd_leakage(args: argparse.Namespace) -> int:
    profile = _apply_seed(_resolve(args.benchmark), args.seed)
    report = Clueless().run(build_trace(profile, args.length).trace())
    rows = [
        ["footprint (words)", str(report.footprint_words)],
        ["DIFT leaked", f"{report.dift_leaked_words} ({report.dift_fraction:.1%})"],
        [
            "load-pair leaked",
            f"{report.pair_leaked_words} ({report.pair_fraction:.1%})",
        ],
        ["pairs / DIFT", f"{report.pair_coverage:.1%}"],
        ["peak DIFT leaked", str(report.dift_peak_words)],
    ]
    print(f"{profile.label}  length={args.length}\n")
    print(format_table(["metric", "value"], rows))
    return 0


def _run_sweep(args, variants) -> int:
    profile = _apply_seed(_resolve(args.benchmark), args.seed)
    cache = TraceCache()
    # Under --sampling every variant shares the same trace (and so the
    # same functional warm images) — the scheme/param sweep only re-runs
    # the short detailed measurement units.
    sampling = _sampling_from_args(args)
    unsafe = run_benchmark(
        profile,
        SchemeKind.UNSAFE,
        args.length,
        config=_run_config(cache=cache, sampling=sampling),
    )
    rows = []
    for label, params in variants:
        result = run_benchmark(
            profile,
            SchemeKind.STT_RECON,
            args.length,
            config=_run_config(params=params, cache=cache, sampling=sampling),
        )
        rows.append(
            [
                label,
                f"{result.ipc / unsafe.ipc:.3f}",
                str(result.stats.reveal_hits),
                str(result.stats.lpt_conflicts),
            ]
        )
    print(f"{profile.label}  STT+ReCon  length={args.length}\n")
    print(
        format_table(["variant", "vs unsafe", "reveal hits", "LPT conflicts"], rows)
    )
    return 0


def cmd_save_trace(args: argparse.Namespace) -> int:
    from repro.isa import save_trace

    profile = _apply_seed(_resolve(args.benchmark), args.seed)
    trace = build_trace(profile, args.length).trace()
    save_trace(trace, args.path)
    print(f"wrote {len(trace)} micro-ops to {args.path}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.common import StatSet, SystemParams
    from repro.isa import load_trace
    from repro.sim import System

    try:
        trace = load_trace(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load trace: {exc}")
    schemes = _parse_schemes(args.schemes)
    rows = []
    baseline_ipc = None
    for scheme in schemes:
        result = System(SystemParams(), [trace], scheme).run()
        ipc = result.ipc
        if baseline_ipc is None:
            baseline_ipc = ipc
        stats = result.aggregate
        rows.append(
            [
                scheme.value,
                str(result.cycles),
                f"{ipc:.3f}",
                f"{ipc / baseline_ipc:.3f}",
                str(stats.tainted_loads),
                str(stats.load_pairs_detected),
            ]
        )
    print(f"replay of {args.path}: {len(trace)} micro-ops\n")
    print(
        format_table(
            ["scheme", "cycles", "IPC", "vs first", "tainted", "pairs"], rows
        )
    )
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Summarize a Chrome trace-event JSON written by ``--trace``."""
    try:
        payload = json.loads(Path(args.path).read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load trace: {exc}")
    try:
        validate_chrome_trace(payload)
    except ValueError as exc:
        raise SystemExit(f"invalid trace: {exc}")
    rows = trace_summary_rows(payload)
    total = sum(int(row[2]) for row in rows)
    print(f"{args.path}: {total} events, {len(rows)} kinds\n")
    print(format_table(["category", "kind", "count", "first", "last"], rows))
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        try:
            metrics = json.loads(Path(metrics_path).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load metrics: {exc}")
        hist_rows = metrics_summary_rows(metrics)
        print(f"\n{metrics_path}: {len(hist_rows)} histograms\n")
        print(
            format_table(
                ["histogram", "samples", "mean", "p50", "p99"], hist_rows
            )
        )
    return 0


def cmd_redteam_matrix(args: argparse.Namespace) -> int:
    """Run the gadget x scheme matrix and assert every verdict."""
    from repro.redteam import run_matrix
    from repro.workloads.gadgets import MATRIX_SCHEMES, gadget_catalog

    gadgets = (
        [token.strip() for token in args.gadgets.split(",") if token.strip()]
        if args.gadgets
        else [case.name for case in gadget_catalog()]
    )
    schemes = (
        _parse_schemes(args.schemes) if args.schemes else list(MATRIX_SCHEMES)
    )
    try:
        result = run_matrix(gadgets=gadgets, schemes=schemes, jobs=args.jobs)
    except KeyError as exc:
        raise SystemExit(str(exc))

    headers = ["gadget"] + [scheme.value for scheme in schemes]
    rows = []
    for gadget in gadgets:
        row = [gadget]
        for scheme in schemes:
            cell = result.cell(gadget, scheme)
            if cell is None:
                row.append("n/a")
            else:
                row.append(
                    cell.verdict.value if cell.ok else f"{cell.verdict.value}!"
                )
        rows.append(row)
    print(format_table(headers, rows))
    print(
        f"\n{len(result.cells)} cells, {len(result.mismatches)} mismatches, "
        f"{len(result.failed_cells)} failed  [{result.wall_time_s:.1f}s]",
        file=sys.stderr,
    )

    exit_code = 0
    for cell in result.mismatches:
        print(
            f"verdict mismatch: {cell.gadget}/{cell.scheme.value} "
            f"expected {cell.expected.value}, got {cell.verdict.value}",
            file=sys.stderr,
        )
        exit_code = 1
    if result.failed_cells:
        exit_code = 1

    if args.expected:
        try:
            baseline = json.loads(Path(args.expected).read_text())
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load expected matrix: {exc}")
        baseline = baseline.get("verdicts", baseline)
        for gadget, row in result.verdict_map().items():
            for scheme_value, verdict in row.items():
                want = baseline.get(gadget, {}).get(scheme_value)
                if want is not None and want != verdict:
                    print(
                        f"regression vs {args.expected}: {gadget}/{scheme_value} "
                        f"was {want}, now {verdict}",
                        file=sys.stderr,
                    )
                    exit_code = 1

    if not args.no_audit:
        from repro.redteam import audit_all

        for audit in audit_all(trials=args.trials):
            status = "ok" if audit.ok else "OUT OF BAND"
            print(
                f"audit {audit.scheme.value}: worst AUC "
                f"{audit.worst_auc:.3f} ({audit.worst_feature}) {status}",
                file=sys.stderr,
            )
            if not audit.ok:
                exit_code = 1

    if args.out:
        out = Path(args.out)
        result.save(out)
        print(f"matrix -> {out}", file=sys.stderr)
    return exit_code


def cmd_redteam_audit(args: argparse.Namespace) -> int:
    """Audit protection metadata for secret-dependence (AUC must be ~0.5)."""
    from repro.redteam import PROTECTED_SCHEMES, audit_scheme, control_audit

    schemes = (
        _parse_schemes(args.schemes) if args.schemes else list(PROTECTED_SCHEMES)
    )
    rows = []
    exit_code = 0
    for scheme in schemes:
        try:
            audit = audit_scheme(scheme, args.gadget, trials=args.trials)
        except (KeyError, ValueError) as exc:
            raise SystemExit(str(exc))
        rows.append(
            [
                scheme.value,
                f"{audit.worst_auc:.3f}",
                audit.worst_feature,
                "ok" if audit.ok else "OUT OF BAND",
            ]
        )
        if not audit.ok:
            exit_code = 1
    control = control_audit(trials=args.trials)
    rows.append(
        [
            "unsafe (control)",
            f"{control.worst_auc:.3f}",
            control.worst_feature,
            "channel found" if not control.ok else "CONTROL FAILED",
        ]
    )
    if control.ok:  # the control must detect the planted channel
        exit_code = 1
    print(format_table(["scheme", "worst AUC", "feature", "status"], rows))
    return exit_code


def cmd_sweep_lpt(args: argparse.Namespace) -> int:
    return _run_sweep(args, lpt_size_variants())


def cmd_sweep_levels(args: argparse.Namespace) -> int:
    return _run_sweep(args, recon_level_variants())


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.sim.chaos import parse_service_chaos
    from repro.sim.service import serve

    state_dir = args.state_dir
    if state_dir is not None and state_dir.lower() in ("off", "none", ""):
        state_dir = None
    token = args.token
    if token is None:
        token = os.environ.get("REPRO_SERVE_TOKEN") or None
    chaos_spec = args.chaos
    if chaos_spec is None:
        chaos_spec = os.environ.get("REPRO_SERVE_CHAOS")
    serve(
        args.host,
        args.port,
        jobs=args.jobs,
        backend=args.backend,
        store=not args.no_store,
        max_concurrent=args.max_concurrent,
        state_dir=state_dir,
        max_queued=args.max_queued,
        token=token,
        chaos=parse_service_chaos(chaos_spec),
    )
    return 0


def _parent_parsers():
    """The shared option groups, as ``parents=`` parsers.

    Each parser carries one concern; subcommands compose exactly the
    groups they honour, so ``--help`` never advertises a flag a command
    would silently ignore.
    """
    workload = argparse.ArgumentParser(add_help=False)
    workload.add_argument(
        "--length",
        type=int,
        default=default_trace_length(12_000),
        help="trace length in micro-ops",
    )
    workload.add_argument("--seed", type=int, default=None, help="override seed")

    schemes = argparse.ArgumentParser(add_help=False)
    schemes.add_argument(
        "--schemes",
        default=",".join(s.value for s in _DEFAULT_SCHEMES),
        help="comma-separated scheme list",
    )

    execution = argparse.ArgumentParser(add_help=False)
    execution.add_argument("--threads", type=int, default=1)
    execution.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all cores)",
    )
    execution.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="execution substrate (default: $REPRO_BACKEND, else inline "
        "for --jobs 1 and process otherwise; see docs/backends.md)",
    )
    execution.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the persistent result store",
    )

    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="collect telemetry and write a Chrome trace-event JSON "
        "(plus Konata and leakage-CSV views) to PATH",
    )
    telemetry.add_argument(
        "--trace-filter",
        default=None,
        metavar="CATS",
        help="comma list of event categories to collect "
        "(pipeline,cache,coherence,recon,security,shadow,mem_txn,fault,backend; "
        "default all)",
    )
    telemetry.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the telemetry metrics registry as JSON to PATH",
    )

    sampling = argparse.ArgumentParser(add_help=False)
    sampling.add_argument(
        "--sampling",
        default=None,
        metavar="SPEC",
        help="statistically sampled simulation: 'on' for defaults or a "
        "spec like 'ci=0.02,conf=0.95,min=4,max=8,unit=250' "
        "(fields: ci,conf,min,max,unit,warm,warmup,bias,memoize; "
        "default: exact simulation)",
    )

    robustness = argparse.ArgumentParser(add_help=False)
    robustness.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock budget; an expired run is cancelled "
        "and retried (requires --jobs >= 2 to preempt)",
    )
    robustness.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts for a failing run before it is reported "
        "as a failure (default 2 when supervision is active)",
    )
    robustness.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep from its checkpoint "
        "journal (kept next to the result store)",
    )
    robustness.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "'seed=7,crash=0.2,hang=0.1,corrupt=0.1,attempts=1' "
        "(fields: seed,crash,hang,corrupt,oom,hang_s,attempts)",
    )

    return workload, schemes, execution, telemetry, sampling, robustness


def build_parser() -> argparse.ArgumentParser:
    """The grouped command tree (``run`` / ``sweep`` / ``telemetry``)."""
    (
        workload,
        schemes,
        execution,
        telemetry,
        sampling,
        robustness,
    ) = _parent_parsers()
    grid_parents = [workload, schemes, execution, telemetry, sampling, robustness]

    parser = argparse.ArgumentParser(
        prog="repro", description="ReCon (MICRO 2023) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks").set_defaults(func=cmd_list)

    p_run = sub.add_parser(
        "run", help="run simulations (one / suite / replay / leakage)"
    )
    run_sub = p_run.add_subparsers(dest="run_command", required=True)

    p_one = run_sub.add_parser(
        "one", help="run one benchmark under schemes", parents=grid_parents
    )
    p_one.add_argument("benchmark", help="suite/name, e.g. spec2017/mcf")
    p_one.set_defaults(func=cmd_run)

    p_suite = run_sub.add_parser(
        "suite", help="run a whole suite", parents=grid_parents
    )
    p_suite.add_argument("suite", help="spec2017 | spec2006 | parsec")
    p_suite.set_defaults(func=cmd_suite)

    p_replay = run_sub.add_parser(
        "replay", help="run a saved trace file", parents=[schemes]
    )
    p_replay.add_argument("path", help="trace file from save-trace")
    p_replay.set_defaults(func=cmd_replay)

    p_leak = run_sub.add_parser(
        "leakage",
        help="Clueless leakage analysis",
        parents=[workload, schemes],
    )
    p_leak.add_argument("benchmark", help="suite/name, e.g. spec2017/mcf")
    p_leak.set_defaults(func=cmd_leakage)

    p_sweep = sub.add_parser(
        "sweep", help="sensitivity sweeps (lpt / levels)"
    )
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    p_lpt = sweep_sub.add_parser(
        "lpt",
        help="LPT size sensitivity",
        parents=[workload, schemes, sampling],
    )
    p_lpt.add_argument("benchmark", help="suite/name, e.g. spec2017/mcf")
    p_lpt.set_defaults(func=cmd_sweep_lpt)

    p_lvl = sweep_sub.add_parser(
        "levels",
        help="ReCon cache-level sweep",
        parents=[workload, schemes, sampling],
    )
    p_lvl.add_argument("benchmark", help="suite/name, e.g. spec2017/mcf")
    p_lvl.set_defaults(func=cmd_sweep_levels)

    p_tel = sub.add_parser(
        "telemetry", help="inspect collected telemetry (summarize)"
    )
    tel_sub = p_tel.add_subparsers(dest="telemetry_command", required=True)

    p_sum = tel_sub.add_parser(
        "summarize", help="summarize a Chrome trace written by --trace"
    )
    p_sum.add_argument("path", help="trace JSON file from --trace")
    p_sum.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="also summarize a metrics JSON from --metrics-out "
        "(histograms incl. MSHR occupancy and NoC queue depth)",
    )
    p_sum.set_defaults(func=cmd_telemetry)

    p_red = sub.add_parser(
        "redteam", help="adversarial leakage harness (matrix / audit)"
    )
    red_sub = p_red.add_subparsers(dest="redteam_command", required=True)

    p_matrix = red_sub.add_parser(
        "matrix", help="run the gadget x scheme verdict matrix"
    )
    p_matrix.add_argument(
        "--gadgets",
        default=None,
        help="comma list of gadget names (default: whole catalog)",
    )
    p_matrix.add_argument(
        "--schemes",
        default=None,
        help="comma list of schemes (default: the matrix columns)",
    )
    p_matrix.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all cores)",
    )
    p_matrix.add_argument(
        "--out",
        default=str(Path("results") / "BENCH_gadgets.json"),
        metavar="PATH",
        help="write the verdict-matrix JSON artifact (default: %(default)s)",
    )
    p_matrix.add_argument(
        "--expected",
        default=None,
        metavar="PATH",
        help="committed verdict matrix to diff against; any changed "
        "verdict fails the command",
    )
    p_matrix.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the metadata AUC audit after the matrix",
    )
    p_matrix.add_argument(
        "--trials",
        type=int,
        default=4,
        help="matched trial pairs per audited scheme (default: %(default)s)",
    )
    p_matrix.set_defaults(func=cmd_redteam_matrix)

    p_audit = red_sub.add_parser(
        "audit", help="metadata AUC audit of the protected schemes"
    )
    p_audit.add_argument(
        "--schemes",
        default=None,
        help="comma list of schemes (default: all protected schemes)",
    )
    p_audit.add_argument(
        "--gadget",
        default="v1_bounds_bypass",
        help="secret-tunable gadget to audit with (default: %(default)s)",
    )
    p_audit.add_argument(
        "--trials",
        type=int,
        default=6,
        help="matched trial pairs per scheme (default: %(default)s)",
    )
    p_audit.set_defaults(func=cmd_redteam_audit)

    p_save = sub.add_parser(
        "save-trace", help="export a workload trace file", parents=[workload]
    )
    p_save.add_argument("benchmark", help="suite/name, e.g. spec2017/mcf")
    p_save.add_argument("path", help="output trace file")
    p_save.set_defaults(func=cmd_save_trace)

    p_serve = sub.add_parser(
        "serve",
        help="HTTP sweep service: submit suites, poll jobs, stream progress",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8712)
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="default worker processes per job (default: $REPRO_JOBS or 1; "
        "0 = all cores)",
    )
    p_serve.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help="default execution substrate for submitted jobs "
        "(default: $REPRO_BACKEND, else jobs-based; see docs/backends.md)",
    )
    p_serve.add_argument(
        "--no-store",
        action="store_true",
        help="do not read or write the persistent result store",
    )
    p_serve.add_argument(
        "--max-concurrent",
        type=int,
        default=1,
        help="worker threads interleaving suite cells (default 1)",
    )
    p_serve.add_argument(
        "--state-dir",
        default="results/.serve",
        help="crash-safe job ledger directory; submitted jobs survive a "
        "service restart ('off' disables durability; default "
        "results/.serve)",
    )
    p_serve.add_argument(
        "--max-queued",
        type=int,
        default=8,
        help="open (queued+running) jobs admitted before submits get "
        "429 + Retry-After (default 8)",
    )
    p_serve.add_argument(
        "--token",
        default=None,
        help="static bearer token required on every request except the "
        "health probes (default: $REPRO_SERVE_TOKEN; unset = no auth)",
    )
    p_serve.add_argument(
        "--chaos",
        default=None,
        help="service-layer fault injection spec, e.g. "
        "'seed=7,drop=0.3,kill_after_cells=2' "
        "(default: $REPRO_SERVE_CHAOS; see docs/robustness.md)",
    )
    p_serve.set_defaults(func=cmd_serve)

    return parser


#: Retired top-level commands and their grouped replacements.
_ALIASES = {
    "suite": ("run", "suite"),
    "replay": ("run", "replay"),
    "leakage": ("run", "leakage"),
    "sweep-lpt": ("sweep", "lpt"),
    "sweep-levels": ("sweep", "levels"),
}

#: ``run``'s subcommands; anything else after ``run`` is a benchmark label.
_RUN_SUBCOMMANDS = frozenset({"one", "suite", "replay", "leakage"})


def _warn_alias(old: str, new: str) -> None:
    warnings.warn(
        f"'repro {old}' is deprecated; use 'repro {new}'",
        DeprecationWarning,
        stacklevel=3,
    )


def _rewrite_legacy_argv(argv: List[str]) -> List[str]:
    """Map pre-grouping invocations onto the grouped command tree.

    Rewrites emit a :class:`DeprecationWarning` naming the replacement;
    already-grouped invocations pass through untouched.
    """
    if not argv:
        return argv
    head = argv[0]
    if head in _ALIASES:
        new = _ALIASES[head]
        _warn_alias(head, " ".join(new))
        return list(new) + argv[1:]
    follower = argv[1] if len(argv) > 1 else None
    bare = follower is not None and not follower.startswith("-")
    if head == "run" and bare and follower not in _RUN_SUBCOMMANDS:
        _warn_alias("run <benchmark>", "run one <benchmark>")
        return ["run", "one"] + argv[1:]
    if head == "telemetry" and bare and follower != "summarize":
        _warn_alias("telemetry <trace>", "telemetry summarize <trace>")
        return ["telemetry", "summarize"] + argv[1:]
    return argv


def main(argv: Sequence[str] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    argv = list(sys.argv[1:] if argv is None else argv)
    args = parser.parse_args(_rewrite_legacy_argv(argv))
    if hasattr(args, "jobs"):
        try:
            resolve_jobs(args.jobs)
        except ValueError as exc:
            sys.exit(str(exc))
    return args.func(args)
