"""Telemetry exporters: Chrome trace JSON, Konata, CSV, metrics JSON.

Three consumers, three formats:

* :func:`to_chrome_trace` renders events as Chrome trace-event JSON —
  load the file in ``chrome://tracing`` or https://ui.perfetto.dev to
  scrub through a run cycle by cycle.  ``ts`` is the simulated cycle
  (one "microsecond" per cycle), ``pid`` distinguishes runs/cells,
  ``tid`` distinguishes event categories.  :func:`validate_chrome_trace`
  checks a payload against the subset of the spec we emit (CI gates on
  it).
* :func:`to_konata` renders the per-uop pipeline view consumed by the
  Konata pipeline visualizer (https://github.com/shioyadan/Konata):
  every dispatched micro-op becomes a row with Ds/Is/Ex stage spans and
  its retire/flush point.
* :func:`leakage_csv` renders a
  :class:`~repro.analysis.timeline.LeakageTimeline` as CSV for
  spreadsheet/matplotlib post-processing.

:func:`metrics_to_json` dumps a metrics registry snapshot, and
:func:`trace_summary_rows` condenses a Chrome trace back into the table
the ``repro telemetry`` subcommand prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CONTENTION_HISTOGRAMS",
    "leakage_csv",
    "metrics_summary_rows",
    "metrics_to_json",
    "to_chrome_trace",
    "to_konata",
    "trace_summary_rows",
    "validate_chrome_trace",
]

#: Chrome trace-event phases this exporter produces.
_PHASES = ("X", "i", "M")

#: Events rendered as durations (ph=X) instead of instants; the event's
#: ``value`` is the duration in cycles ending at ``event.cycle``.
_DURATION_KINDS = {"delay_end"}


def to_chrome_trace(
    events: Iterable[Any],
    pid: int = 0,
    label: Optional[str] = None,
) -> Dict[str, Any]:
    """Render events as a Chrome trace-event JSON payload.

    ``pid`` namespaces this event stream (one per run/grid cell when
    merging several); ``label`` becomes the process name shown in the
    viewer.  Returns the payload dict — ``json.dump`` it yourself.
    """
    trace_events: List[Dict[str, Any]] = []
    if label is not None:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for event in events:
        entry: Dict[str, Any] = {
            "name": event.kind,
            "cat": event.category,
            "pid": pid,
            "tid": _category_tid(event.category),
            "args": {
                "core": event.core,
                "seq": event.seq,
                "addr": event.addr,
                "value": event.value,
            },
        }
        if event.kind in _DURATION_KINDS and event.value > 0:
            entry["ph"] = "X"
            entry["ts"] = event.cycle - event.value
            entry["dur"] = event.value
        else:
            entry["ph"] = "i"
            entry["ts"] = event.cycle
            entry["s"] = "t"
        trace_events.append(entry)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"generator": "repro.telemetry", "time_unit": "cycle"},
    }


#: Stable category -> tid mapping so viewer rows keep their order.
_TID_ORDER = ("pipeline", "cache", "coherence", "recon", "security", "shadow")


def _category_tid(category: str) -> int:
    try:
        return 1 + _TID_ORDER.index(category)
    except ValueError:
        return 1 + len(_TID_ORDER)


def validate_chrome_trace(payload: Any) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid trace we emit.

    Checks the JSON-object layout of the trace-event format: a
    ``traceEvents`` list whose entries carry ``name``/``ph``/``pid``/
    ``tid``, a non-negative ``ts`` for non-metadata events, and a
    non-negative ``dur`` for complete (``X``) events.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must contain a traceEvents list")
    for index, entry in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{where} is not an object")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            raise ValueError(f"{where} lacks a name")
        phase = entry.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"{where} has unsupported phase {phase!r}")
        for field in ("pid", "tid"):
            if not isinstance(entry.get(field), int):
                raise ValueError(f"{where} lacks an integer {field}")
        if phase != "M":
            ts = entry.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where} lacks a non-negative ts")
        if phase == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} (X) lacks a non-negative dur")


# ----------------------------------------------------------------------
# Konata pipeline view
# ----------------------------------------------------------------------

#: Pipeline event kind -> (stage entered, stage left) for the Konata view.
_KONATA_STAGES = {
    "dispatch": ("Ds", None),
    "issue": ("Is", "Ds"),
    "complete": ("Ex", "Is"),
}


def to_konata(events: Iterable[Any]) -> str:
    """Render pipeline events as a Konata (Kanata 0004) pipeline log.

    Only ``pipeline``-category events contribute; each dispatched
    micro-op becomes one row whose stages are Ds (dispatched, waiting to
    issue), Is (issued, executing), and Ex (completed, waiting to
    commit), closed by a retire (commit) or flush (squash) record.
    Events for micro-ops whose dispatch fell out of the ring buffer are
    skipped — a partial window still renders.
    """
    steps: List[Tuple[int, int, int, str]] = []  # (cycle, order, seq, op)
    known: Dict[int, int] = {}  # seq -> uid
    labels: Dict[int, str] = {}
    order = 0
    for event in events:
        if event.category != "pipeline" or event.seq < 0:
            continue
        if event.kind == "dispatch":
            if event.seq not in known:
                known[event.seq] = len(known)
                labels[event.seq] = (
                    f"#{event.seq} core{event.core} pc={event.addr:#x}"
                )
                steps.append((event.cycle, order, event.seq, "dispatch"))
                order += 1
        elif event.kind in ("issue", "complete", "commit", "squash"):
            if event.seq in known:
                steps.append((event.cycle, order, event.seq, event.kind))
                order += 1
    steps.sort(key=lambda s: (s[0], s[1]))

    lines = ["Kanata\t0004"]
    current: Optional[int] = None
    retired = 0
    for cycle, _, seq, op in steps:
        if current is None:
            lines.append(f"C=\t{cycle}")
            current = cycle
        elif cycle > current:
            lines.append(f"C\t{cycle - current}")
            current = cycle
        uid = known[seq]
        if op == "dispatch":
            lines.append(f"I\t{uid}\t{seq}\t0")
            lines.append(f"L\t{uid}\t0\t{labels[seq]}")
            lines.append(f"S\t{uid}\t0\tDs")
        elif op in ("issue", "complete"):
            stage, prev = _KONATA_STAGES[op]
            if prev is not None:
                lines.append(f"E\t{uid}\t0\t{prev}")
            lines.append(f"S\t{uid}\t0\t{stage}")
        elif op == "commit":
            lines.append(f"E\t{uid}\t0\tEx")
            lines.append(f"R\t{uid}\t{retired}\t0")
            retired += 1
        else:  # squash
            lines.append(f"R\t{uid}\t{retired}\t1")
            retired += 1
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# leakage timeline CSV + metrics JSON
# ----------------------------------------------------------------------


def leakage_csv(timeline: Any) -> str:
    """Render a :class:`LeakageTimeline` as a three-column CSV."""
    lines = ["uops,dift_leaked_words,pair_leaked_words"]
    for index, dift, pairs in timeline.samples:
        lines.append(f"{index},{dift},{pairs}")
    return "\n".join(lines) + "\n"


def metrics_to_json(metrics: Any, indent: Optional[int] = 2) -> str:
    """Serialize a metrics snapshot (registry or its ``as_dict``) to JSON."""
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    return json.dumps(metrics, indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# trace summary (the `repro telemetry` subcommand)
# ----------------------------------------------------------------------


#: Histograms the `repro telemetry` summary always reports, even when
#: empty — the contention instruments of the memory transaction engine.
CONTENTION_HISTOGRAMS: Tuple[str, ...] = ("mshr_occupancy", "noc_queue_depth")


def _histogram_quantile(bounds: List[float], counts: List[int], q: float) -> float:
    """Upper-bound quantile over a serialized histogram dict."""
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= target and count:
            return bounds[min(index, len(bounds) - 1)]
    return bounds[-1]


def metrics_summary_rows(metrics: Any) -> List[List[str]]:
    """Condense a metrics dump into per-histogram summary rows.

    Accepts a :class:`~repro.telemetry.metrics.MetricsRegistry`, its
    ``as_dict()`` / JSON form, or the per-cell ``{label: snapshot}``
    mapping the CLI's ``--metrics-out`` writes (cell labels are then
    prefixed onto histogram names).  Returns
    ``[histogram, samples, mean, p50, p99]`` rows for every histogram
    with observations, plus the :data:`CONTENTION_HISTOGRAMS`
    unconditionally (an all-zero MSHR-occupancy row is itself a signal:
    the run was contention-free).  Pair with
    :func:`repro.sim.reporting.format_table`.
    """
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    if "histograms" in metrics or "counters" in metrics:
        cells = [("", metrics)]
    else:  # --metrics-out nests one snapshot per grid cell
        cells = [
            (f"{label}: ", snapshot)
            for label, snapshot in sorted(metrics.items())
            if isinstance(snapshot, dict)
        ]
    rows = []
    for prefix, snapshot in cells:
        histograms: Dict[str, Any] = snapshot.get("histograms", {})
        for name in sorted(histograms):
            data = histograms[name]
            total = int(data.get("total", 0))
            if total == 0 and name not in CONTENTION_HISTOGRAMS:
                continue
            bounds = [float(b) for b in data.get("bounds", [0.0])]
            counts = [int(c) for c in data.get("counts", [])]
            mean = float(data.get("mean", 0.0))
            rows.append(
                [
                    prefix + name,
                    str(total),
                    f"{mean:.2f}",
                    f"{_histogram_quantile(bounds, counts, 0.5):.0f}",
                    f"{_histogram_quantile(bounds, counts, 0.99):.0f}",
                ]
            )
    return rows


def trace_summary_rows(payload: Dict[str, Any]) -> List[List[str]]:
    """Condense a Chrome trace payload into per-kind summary rows.

    Returns ``[category, kind, count, first-cycle, last-cycle]`` rows
    sorted by descending count — pair with
    :func:`repro.sim.reporting.format_table`.
    """
    buckets: Dict[Tuple[str, str], List[float]] = {}
    for entry in payload.get("traceEvents", []):
        if entry.get("ph") == "M":
            continue
        key = (entry.get("cat", "?"), entry.get("name", "?"))
        buckets.setdefault(key, []).append(float(entry.get("ts", 0)))
    rows = []
    for (category, kind), stamps in sorted(
        buckets.items(), key=lambda item: (-len(item[1]), item[0])
    ):
        rows.append(
            [
                category,
                kind,
                str(len(stamps)),
                f"{min(stamps):.0f}",
                f"{max(stamps):.0f}",
            ]
        )
    return rows
