"""The structured event bus.

Every instrumented component holds a reference to a *sink* — either a
live :class:`TelemetryCollector` or the shared :data:`NULL_TELEMETRY`
null object.  An emission site is written as::

    if self.telemetry.enabled:
        self.telemetry.emit(CAT_PIPELINE, "commit", core=..., seq=...)

so the disabled path costs exactly one attribute check and a falsy
branch; no event object is ever constructed.  Components never need to
know the current cycle: the core advances :attr:`TelemetryCollector.now`
once per simulated cycle and every event emitted from within that cycle
(hierarchy calls, policy callbacks, LPT lookups) is stamped with it.

Collected events land in a bounded ring buffer (oldest dropped first)
after per-category filtering and 1-in-N sampling; *sinks* registered
with :meth:`TelemetryCollector.add_sink` see every matching event
**before** sampling, which is how streaming consumers such as the
event-bus leakage timeline (:class:`repro.analysis.timeline.TimelineSink`)
stay exact while the ring buffer stays small.

Event taxonomy (see ``docs/observability.md`` for the full table):

========== ================================================================
category   kinds
========== ================================================================
pipeline   dispatch, issue, complete, commit, squash, defer, mem_violation
cache      l1_hit, l1_miss, l2_hit, l2_miss, llc_hit, llc_miss, evict
coherence  mesi, merge, invalidate
recon      reveal, conceal, reveal_hit, reveal_miss, reveal_dropped,
           lpt_pair, lpt_conflict
security   delay_start, delay_end, nda_defer, stt_taint, observe (one per
           real cache access by a load; ``value`` bit 0 = L1 hit at
           access time, bit 1 = issued under a speculation shadow)
shadow     enter, exit
mem_txn    read_req, write_req, invisible_req, reveal_req (one per
           completed packet; ``value`` is the end-to-end latency)
fault      retry, timeout, worker_crash, corrupt_payload, pool_restart,
           exhausted, degrade, replayed_failure (engine supervision;
           ``seq`` is the spec index, ``value`` the attempt count)
backend    submit, settle, steal, worker_death, worker_respawn (execution
           backends; emitted in the parent process — ``seq`` is a task
           sequence number; counters: queue depth, lease age, steals,
           worker liveness)
redteam    verdict, verdict_mismatch, audit (red-team harness; emitted
           in the parent process like ``fault`` — ``seq`` is the matrix
           cell index, ``value`` 1 = as expected / in band)
========== ================================================================
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Any, Deque, Dict, FrozenSet, List, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "ALL_CATEGORIES",
    "CAT_BACKEND",
    "CAT_CACHE",
    "CAT_COHERENCE",
    "CAT_FAULT",
    "CAT_MEM_TXN",
    "CAT_PIPELINE",
    "CAT_RECON",
    "CAT_REDTEAM",
    "CAT_SECURITY",
    "CAT_SHADOW",
    "Event",
    "NULL_TELEMETRY",
    "TelemetryCollector",
    "TelemetryConfig",
    "TelemetryResult",
    "parse_filter",
]

#: Pipeline-stage events (dispatch/issue/complete/commit/squash/defer).
CAT_PIPELINE = "pipeline"
#: Cache array activity (hits, misses, evictions) per level.
CAT_CACHE = "cache"
#: Coherence-protocol activity (MESI grants, merges, invalidations).
CAT_COHERENCE = "coherence"
#: ReCon activity (reveal/conceal, LPT hits and conflicts).
CAT_RECON = "recon"
#: Security-scheme decisions (delays, deferrals, taints).
CAT_SECURITY = "security"
#: Speculation shadows (enter at dispatch, exit at resolution).
CAT_SHADOW = "shadow"
#: Memory transactions (one event per completed packet, value=latency).
CAT_MEM_TXN = "mem_txn"
#: Engine supervision faults (retries, timeouts, crashes, pool restarts).
#: Emitted by the suite supervisor in the parent process, not by the
#: simulated system — cycle is always 0, ``seq`` is the spec index.
CAT_FAULT = "fault"
#: Red-team harness verdicts and audits (:mod:`repro.redteam`).  Like
#: ``fault``, emitted in the parent process: ``seq`` is the matrix cell
#: index and ``value`` records whether the cell matched expectations.
CAT_REDTEAM = "redteam"
#: Execution-backend activity (:mod:`repro.sim.backends`): submissions,
#: settlements, work steals, worker deaths/respawns.  Like ``fault``,
#: emitted in the parent process; the counters carry queue depth, lease
#: age, steal count, and worker liveness.
CAT_BACKEND = "backend"

#: Every category the instrumented components emit.
ALL_CATEGORIES: FrozenSet[str] = frozenset(
    {
        CAT_PIPELINE,
        CAT_CACHE,
        CAT_COHERENCE,
        CAT_RECON,
        CAT_SECURITY,
        CAT_SHADOW,
        CAT_MEM_TXN,
        CAT_FAULT,
        CAT_REDTEAM,
        CAT_BACKEND,
    }
)


def parse_filter(text: Optional[str]) -> Optional[FrozenSet[str]]:
    """Parse a ``--trace-filter`` comma list into a category set.

    ``None``/empty/``"all"`` mean "no filtering"; unknown category names
    raise ``ValueError`` so typos fail loudly.
    """
    if text is None:
        return None
    tokens = [t.strip() for t in text.split(",") if t.strip()]
    if not tokens or tokens == ["all"]:
        return None
    unknown = sorted(set(tokens) - ALL_CATEGORIES)
    if unknown:
        raise ValueError(
            f"unknown event categories {unknown}; "
            f"choose from {sorted(ALL_CATEGORIES)}"
        )
    return frozenset(tokens)


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """Knobs bounding what (and how much) telemetry is collected.

    Attributes:
        sample_rate: keep every Nth matching event in the ring buffer
            (1 = keep all).  Sinks always see every matching event.
        categories: event categories to collect; ``None`` means all.
        ring_buffer: maximum retained events; older events are dropped
            first, which bounds memory on long runs.
        timeline_interval: when set, a leakage-timeline sink rides the
            commit-event stream, sampling every N committed micro-ops.
    """

    sample_rate: int = 1
    categories: Optional[FrozenSet[str]] = None
    ring_buffer: int = 65_536
    timeline_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        if self.ring_buffer <= 0:
            raise ValueError("ring_buffer must be positive")
        if self.timeline_interval is not None and self.timeline_interval <= 0:
            raise ValueError("timeline_interval must be positive")
        if self.categories is not None:
            object.__setattr__(self, "categories", frozenset(self.categories))
            unknown = sorted(set(self.categories) - ALL_CATEGORIES)
            if unknown:
                raise ValueError(f"unknown event categories {unknown}")


class Event:
    """One structured telemetry record.

    ``seq``/``addr`` are -1 when not applicable; ``value`` carries the
    kind-specific payload (delay cycles, access latency, occupancy,
    MESI state ordinal...).  ``uop`` is a transient reference for
    streaming sinks (the leakage timeline needs the committed micro-op);
    it is stripped before events leave the run, so serialized telemetry
    stays compact.
    """

    __slots__ = ("cycle", "category", "kind", "core", "seq", "addr", "value", "uop")

    def __init__(
        self,
        cycle: int,
        category: str,
        kind: str,
        core: int = 0,
        seq: int = -1,
        addr: int = -1,
        value: int = 0,
        uop: Any = None,
    ) -> None:
        self.cycle = cycle
        self.category = category
        self.kind = kind
        self.core = core
        self.seq = seq
        self.addr = addr
        self.value = value
        self.uop = uop

    def as_dict(self) -> Dict[str, int]:
        """JSON-safe dict form (the transient ``uop`` is dropped)."""
        return {
            "cycle": self.cycle,
            "category": self.category,
            "kind": self.kind,
            "core": self.core,
            "seq": self.seq,
            "addr": self.addr,
            "value": self.value,
        }

    def __reduce__(self):
        """Pickle without the transient ``uop`` reference."""
        return (
            Event,
            (
                self.cycle,
                self.category,
                self.kind,
                self.core,
                self.seq,
                self.addr,
                self.value,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Event {self.category}/{self.kind} @{self.cycle}"
            f" core={self.core} seq={self.seq}>"
        )


@dataclasses.dataclass
class TelemetryResult:
    """Everything one run's telemetry produced, in a picklable form.

    ``events`` is the (possibly sampled and ring-bounded) event list in
    emission order; ``metrics`` is the registry snapshot whose counter
    values equal the run's :class:`~repro.common.stats.StatSet` fields;
    ``timeline`` is the event-bus leakage timeline when one was enabled.
    """

    events: List[Event] = dataclasses.field(default_factory=list)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    timeline: Optional[Any] = None
    dropped_events: int = 0
    emitted_events: int = 0

    @classmethod
    def from_metrics_dict(cls, metrics: Dict[str, Any]) -> "TelemetryResult":
        """A light result carrying only a stored metrics snapshot.

        Used when rebuilding results from serialized form: the event
        list and timeline are not persisted (they live in the exported
        trace files), so only the metric values come back.
        """
        return cls(metrics=dict(metrics))


class _NullTelemetry:
    """The disabled sink: emission sites check ``enabled`` and move on.

    It still accepts :meth:`emit` / :meth:`observe` calls (as no-ops) so
    a component that forgets the ``enabled`` guard stays correct — the
    guard is a performance idiom, not a safety requirement.
    """

    __slots__ = ()

    enabled = False
    now = 0

    def emit(self, *args: Any, **kwargs: Any) -> None:
        """Ignore an event emission (disabled sink)."""

    def observe(self, *args: Any, **kwargs: Any) -> None:
        """Ignore a histogram observation (disabled sink)."""


#: Shared null-object sink every instrumented component defaults to.
NULL_TELEMETRY = _NullTelemetry()


class TelemetryCollector:
    """A live event bus + metrics registry for one simulated system.

    Not thread-safe; in multi-process runs each worker owns its own
    collector and results are merged deterministically in spec order by
    the experiment engine.
    """

    enabled = True

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        #: Current simulated cycle; the core advances this every step so
        #: cycle-less components (LPT, LSQ, policies) emit correctly.
        self.now = 0
        self.metrics = MetricsRegistry.with_default_instruments()
        self.dropped_events = 0
        self.emitted_events = 0
        self._sample_rate = self.config.sample_rate
        self._categories = self.config.categories
        self._sample_tick = 0
        self._events: Deque[Event] = collections.deque(
            maxlen=self.config.ring_buffer
        )
        self._sinks: List[Any] = []

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(
        self,
        category: str,
        kind: str,
        core: int = 0,
        seq: int = -1,
        addr: int = -1,
        value: int = 0,
        uop: Any = None,
    ) -> None:
        """Record one event (category filter, sinks, sampling, ring)."""
        if self._categories is not None and category not in self._categories:
            return
        self.emitted_events += 1
        event = Event(self.now, category, kind, core, seq, addr, value, uop)
        for sink in self._sinks:
            sink.on_event(event)
        self._sample_tick += 1
        if self._sample_tick >= self._sample_rate:
            self._sample_tick = 0
            if len(self._events) == self._events.maxlen:
                self.dropped_events += 1
            self._events.append(event)

    def observe(self, histogram: str, value: float) -> None:
        """Record ``value`` into the named default histogram."""
        self.metrics.histogram(histogram).observe(value)

    def add_sink(self, sink: Any) -> None:
        """Attach a streaming consumer (an object with ``on_event``)."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        return list(self._events)

    def finalize(self, stats: Any = None) -> TelemetryResult:
        """Snapshot the run's telemetry (optionally back-filling stats).

        ``stats`` is the run's final :class:`~repro.common.stats.StatSet`;
        when given, every stat field is copied into a same-named metrics
        counter so exported metric values equal the reported counters.
        """
        if stats is not None:
            self.metrics.backfill_statset(stats)
        timeline = None
        for sink in self._sinks:
            result = getattr(sink, "timeline", None)
            if callable(result):
                timeline = result()
        events = list(self._events)
        for event in events:
            event.uop = None  # strip transient references before shipping
        return TelemetryResult(
            events=events,
            metrics=self.metrics.as_dict(),
            timeline=timeline,
            dropped_events=self.dropped_events,
            emitted_events=self.emitted_events,
        )
