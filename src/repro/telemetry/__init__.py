"""Structured telemetry: event tracing, metrics, and trace exporters.

The simulator's end-of-run :class:`~repro.common.stats.StatSet` answers
"how many" — this package answers "which, when, and why".  It has three
parts:

* :mod:`repro.telemetry.events` — a low-overhead structured event bus.
  Pipeline stages, the memory hierarchy, and the security schemes emit
  typed :class:`Event` records into a :class:`TelemetryCollector`; when
  telemetry is disabled (the default) every emission site degrades to a
  single attribute check against the shared :data:`NULL_TELEMETRY`
  null-object sink, so the hot path stays unchanged.
* :mod:`repro.telemetry.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms (delay-cycle distribution, LPT occupancy,
  reveal latency, per-set cache pressure) that supersets the flat
  :class:`~repro.common.stats.StatSet` and is back-filled from it at the
  end of a run, so metric values always equal the stats counters.
* :mod:`repro.telemetry.export` — exporters: Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto), a Konata-style per-uop pipeline
  view, a leakage-timeline CSV, and a metrics JSON dump.

Enable collection through :class:`TelemetryConfig` on
:class:`~repro.sim.config.RunConfig`, or the CLI's ``--trace`` /
``--trace-filter`` / ``--metrics-out`` flags.
"""

from repro.telemetry.events import (
    ALL_CATEGORIES,
    CAT_CACHE,
    CAT_COHERENCE,
    CAT_FAULT,
    CAT_MEM_TXN,
    CAT_PIPELINE,
    CAT_RECON,
    CAT_REDTEAM,
    CAT_SECURITY,
    CAT_SHADOW,
    Event,
    NULL_TELEMETRY,
    TelemetryCollector,
    TelemetryConfig,
    TelemetryResult,
    parse_filter,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.export import (
    leakage_csv,
    metrics_summary_rows,
    metrics_to_json,
    to_chrome_trace,
    to_konata,
    trace_summary_rows,
    validate_chrome_trace,
)

__all__ = [
    "ALL_CATEGORIES",
    "CAT_CACHE",
    "CAT_COHERENCE",
    "CAT_FAULT",
    "CAT_MEM_TXN",
    "CAT_PIPELINE",
    "CAT_RECON",
    "CAT_REDTEAM",
    "CAT_SECURITY",
    "CAT_SHADOW",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "TelemetryCollector",
    "TelemetryConfig",
    "TelemetryResult",
    "leakage_csv",
    "metrics_summary_rows",
    "metrics_to_json",
    "parse_filter",
    "to_chrome_trace",
    "to_konata",
    "trace_summary_rows",
    "validate_chrome_trace",
]
