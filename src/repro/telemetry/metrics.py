"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The flat :class:`~repro.common.stats.StatSet` is the simulator's source
of truth for "how many"; this registry supersets it with instruments a
flat bag cannot hold — distributions (delay cycles, access latencies,
table occupancies) and point-in-time gauges.  At the end of a run the
registry is back-filled from the final ``StatSet``
(:meth:`MetricsRegistry.backfill_statset`), so every exported counter
value equals the corresponding stats field by construction.

Instruments are deliberately tiny — plain Python attributes, no locks,
no label sets — because they sit on the simulator's hot path when
telemetry is enabled and must cost nothing when it is not (emission
sites are guarded by the null-object check in
:mod:`repro.telemetry.events`).
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_HISTOGRAMS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (used by the StatSet back-fill)."""
        self.value = value


class Gauge:
    """A point-in-time value that also remembers its extremes."""

    __slots__ = ("name", "value", "min", "max", "_seen")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = 0.0
        self.max = 0.0
        self._seen = False

    def set(self, value: float) -> None:
        """Record the current value (tracking min/max)."""
        self.value = value
        if not self._seen:
            self.min = self.max = value
            self._seen = True
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value


class Histogram:
    """A fixed-bucket histogram with an implicit overflow bucket.

    ``bounds`` are inclusive upper edges; an observation lands in the
    first bucket whose bound is >= the value, or in the overflow bucket.
    Fixed buckets keep observation O(log n) with zero allocation, which
    is what a per-load hot path needs.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ValueError("histogram bounds must be sorted ascending")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(ordered)
        self.counts: List[int] = [0] * (len(ordered) + 1)  # + overflow
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        if self.total == 0:
            return 0.0
        return self.sum / self.total

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (upper bound of the hit bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target and count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]  # overflow: clamp to last edge
        return self.bounds[-1]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding (bounds, per-bucket counts, total, sum)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
        }


def _power_buckets(limit: int) -> List[float]:
    """0, 1, 2, 4, ... power-of-two bucket edges up to ``limit``."""
    bounds: List[float] = [0.0]
    edge = 1
    while edge <= limit:
        bounds.append(float(edge))
        edge *= 2
    return bounds


#: Name -> bucket bounds of the histograms the collector pre-registers.
DEFAULT_HISTOGRAMS: Dict[str, Tuple[float, ...]] = {
    # Cycles a load (or store) waited at issue because of the scheme.
    "delay_cycles": tuple(_power_buckets(4096)),
    # End-to-end latency of demand loads, by access.
    "load_latency": tuple(_power_buckets(1024)),
    # Latency of loads that found their word revealed (defense lifted).
    "reveal_latency": tuple(_power_buckets(1024)),
    # Active LPT entries observed at each load commit.
    "lpt_occupancy": tuple(float(x) for x in (0, 8, 16, 32, 64, 128, 256, 512)),
    # Resident lines in the L1 set a fill lands in (pressure proxy).
    "l1_set_pressure": tuple(float(x) for x in range(0, 17)),
    # Outstanding MSHR entries of the requesting core, sampled per
    # memory transaction.
    "mshr_occupancy": tuple(float(x) for x in (0, 1, 2, 4, 8, 16, 32, 64)),
    # Interconnect messages queued for a link slot, sampled per
    # memory transaction (always 0 with unbounded links).
    "noc_queue_depth": tuple(float(x) for x in (0, 1, 2, 4, 8, 16, 32, 64)),
}


@dataclasses.dataclass
class MetricsRegistry:
    """A named bag of instruments with lazy creation.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    or create it, so emission sites never need registration ceremony.
    """

    counters: Dict[str, Counter] = dataclasses.field(default_factory=dict)
    gauges: Dict[str, Gauge] = dataclasses.field(default_factory=dict)
    histograms: Dict[str, Histogram] = dataclasses.field(default_factory=dict)

    @classmethod
    def with_default_instruments(cls) -> "MetricsRegistry":
        """A registry pre-seeded with the standard histograms."""
        registry = cls()
        for name, bounds in DEFAULT_HISTOGRAMS.items():
            registry.histogram(name, bounds)
        return registry

    def counter(self, name: str) -> Counter:
        """The named counter (created on first use)."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created on first use)."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram (created on first use).

        ``bounds`` is required on first creation unless the name is one
        of the :data:`DEFAULT_HISTOGRAMS`.
        """
        instrument = self.histograms.get(name)
        if instrument is None:
            if bounds is None:
                bounds = DEFAULT_HISTOGRAMS.get(name)
            if bounds is None:
                raise KeyError(
                    f"histogram {name!r} has no default buckets; pass bounds"
                )
            instrument = self.histograms[name] = Histogram(name, bounds)
        return instrument

    def backfill_statset(self, stats: Any) -> None:
        """Copy every field of a ``StatSet`` into a same-named counter.

        Run after the simulation finishes: whatever the components
        counted live, the exported counters end up exactly equal to the
        authoritative stats (the acceptance invariant of the metrics
        dump).  Works with any object exposing ``as_dict()``.
        """
        for name, value in stats.as_dict().items():
            self.counter(name).set(int(value))

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every instrument."""
        return {
            "counters": {
                name: instrument.value
                for name, instrument in sorted(self.counters.items())
            },
            "gauges": {
                name: {
                    "value": instrument.value,
                    "min": instrument.min,
                    "max": instrument.max,
                }
                for name, instrument in sorted(self.gauges.items())
            },
            "histograms": {
                name: instrument.as_dict()
                for name, instrument in sorted(self.histograms.items())
            },
        }
