"""SPT-lite: continuous leakage tracking in the core (paper §2.3).

Speculative Privacy Tracking (Choudhary et al., MICRO 2021) proposed the
security definition ReCon builds on, and realizes it with a global,
continuous taint-tracking mechanism spanning non-speculative and
speculative execution.  This module reproduces the *leakage-reuse* side
of SPT as a policy ablation:

* a DIFT engine is fed the committed (architectural) instruction stream,
  so the policy knows at all times which memory words have leaked their
  contents through *any* dependence chain — not just direct load pairs;
* a speculative load to such a word is handled as public (untainted for
  STT, immediately propagated for NDA), which is SPT's forward untaint.

Differences from full SPT, kept for scope (documented in DESIGN.md):

* no *backward* untaint: values already tainted in flight stay tainted
  until their root reaches visibility;
* no register protection for pre-speculation secrets (the paper's ReCon
  evaluation also excludes it, §1/§3.1);
* the leak map is unbounded, while SPT mirrors the L1 (our variant is
  therefore an idealized-storage SPT — an upper bound together with the
  oracle policies in :mod:`repro.security.oracle`).
"""

from __future__ import annotations

from repro.analysis.dift import DiftEngine
from repro.common.stats import StatSet
from repro.common.types import word_addr
from repro.isa.microop import MicroOp
from repro.security.nda import NdaPolicy
from repro.security.stt import SttPolicy

__all__ = ["SptSttPolicy", "SptNdaPolicy"]


class _SptMixin:
    """Commit-time DIFT feeding the public-word check."""

    def __init__(self, stats: StatSet, arch_regs: int = 32) -> None:  # type: ignore[override]
        # use_recon stays False: pure SPT uses no LPT and no cache reveal
        # bits; its knowledge comes entirely from the commit-time DIFT.
        super().__init__(stats, use_recon=False)  # type: ignore[call-arg]
        self._dift = DiftEngine(arch_regs)

    def on_commit(self, uop: MicroOp) -> None:
        self._dift.step(uop)

    def word_is_public(self, addr: int) -> bool:
        return word_addr(addr) in self._dift.leaked

    @property
    def leaked_words(self) -> int:
        return len(self._dift.leaked)


class SptSttPolicy(_SptMixin, SttPolicy):
    """STT whose untaint source is SPT-style continuous DIFT."""

    name = "stt+spt"


class SptNdaPolicy(_SptMixin, NdaPolicy):
    """NDA whose propagation release is SPT-style continuous DIFT."""

    name = "nda+spt"
