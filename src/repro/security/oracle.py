"""Oracle-optimized policies (ablation only — not implementable hardware).

These wrap NDA/STT with perfect knowledge of non-speculative leakage: a
speculative load to any word that global DIFT says has already leaked is
treated as revealed, regardless of what the LPT detected or what the
caches still remember.  They bound from above what *any*
leakage-reuse optimization (ReCon, SPT untainting, ...) could recover.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from repro.common.stats import StatSet
from repro.security.nda import NdaPolicy
from repro.security.stt import SttPolicy

__all__ = ["OracleSttPolicy", "OracleNdaPolicy"]


class _OracleMixin:
    """Overrides the reveal decision with the precomputed oracle set."""

    def __init__(
        self, stats: StatSet, oracle_revealed: Set[int]
    ) -> None:  # type: ignore[override]
        super().__init__(stats, use_recon=True)  # type: ignore[call-arg]
        self._oracle = oracle_revealed

    def on_load_value(
        self,
        seq: int,
        speculative: bool,
        revealed: bool,
        forwarded_taint: FrozenSet[int],
    ) -> Tuple[bool, FrozenSet[int]]:
        oracle_says = revealed or (seq in self._oracle)
        return super().on_load_value(  # type: ignore[misc]
            seq, speculative, oracle_says, forwarded_taint
        )


class OracleSttPolicy(_OracleMixin, SttPolicy):
    """STT with perfect non-speculative-leakage knowledge."""

    name = "stt+oracle"


class OracleNdaPolicy(_OracleMixin, NdaPolicy):
    """NDA with perfect non-speculative-leakage knowledge."""

    name = "nda+oracle"
