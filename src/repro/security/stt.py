"""Speculative Taint Tracking (Yu et al., MICRO 2019; paper §2.2).

The output of a speculative load is tainted with the load itself as root.
Taint flows through register dataflow; *transmitters* — loads and store
address generation (explicit channels) and branch resolution (implicit
channels) — may not proceed while an operand is effectively tainted.
A root becomes safe (automatic untaint of everything derived from it)
when its load reaches the visibility point.

With ReCon (§5.4), a speculative load to a revealed word does not taint
its destination, so its dependents execute freely.
"""

from __future__ import annotations

import heapq
from typing import FrozenSet, List, Set, Tuple

from repro.common.stats import StatSet
from repro.security.policy import SecurityPolicy
from repro.telemetry.events import CAT_SECURITY

__all__ = ["SttPolicy"]


class SttPolicy(SecurityPolicy):
    """STT with Spectre-style shadows, optionally optimized by ReCon."""

    name = "stt"

    def __init__(self, stats: StatSet, use_recon: bool = False) -> None:
        super().__init__(stats, use_recon)
        self._unsafe_roots: Set[int] = set()
        self._root_heap: List[int] = []

    # -- issue gates ----------------------------------------------------
    def load_issue_blocked(self, operand_taint: FrozenSet[int]) -> bool:
        return self.effectively_tainted(operand_taint)

    def store_issue_blocked(self, operand_taint: FrozenSet[int]) -> bool:
        return self.effectively_tainted(operand_taint)

    def branch_resolution_blocked(self, operand_taint: FrozenSet[int]) -> bool:
        return self.effectively_tainted(operand_taint)

    # -- dataflow -------------------------------------------------------
    def on_load_value(
        self,
        seq: int,
        speculative: bool,
        revealed: bool,
        forwarded_taint: FrozenSet[int],
    ) -> Tuple[bool, FrozenSet[int]]:
        if speculative and not revealed:
            self.stats.tainted_loads += 1
            self._unsafe_roots.add(seq)
            heapq.heappush(self._root_heap, seq)
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_SECURITY,
                    "stt_taint",
                    core=self.telemetry_core,
                    seq=seq,
                )
            return True, forwarded_taint | {seq}
        # Safe (or revealed) loads still propagate forwarded taint: data
        # forwarded from a store may derive from an unsafe speculative load.
        return True, forwarded_taint

    def propagate_taint(self, operand_taint: FrozenSet[int]) -> FrozenSet[int]:
        return operand_taint

    # -- time -----------------------------------------------------------
    def on_visibility(self, frontier: float) -> None:
        while self._root_heap and self._root_heap[0] < frontier:
            self._unsafe_roots.discard(heapq.heappop(self._root_heap))

    def effectively_tainted(self, taint: FrozenSet[int]) -> bool:
        if not taint or not self._unsafe_roots:
            return False
        return not self._unsafe_roots.isdisjoint(taint)

    @property
    def unsafe_root_count(self) -> int:
        return len(self._unsafe_roots)
