"""The load-pair table (LPT), paper §5.1 and Figure 3.

The LPT sits in the commit stage and detects *direct-dependence load
pairs*: a committing load writes ``(active, address)`` into the entry of
its destination physical register and simultaneously checks the entry of
its source (address base) physical register.  An active, tag-matching
source entry means the committing load dereferenced the value produced by
an earlier committed load — the earlier load's address has leaked
non-speculatively and is revealed.

Any non-load instruction that commits clears the entry of its destination
register(s): the register no longer holds a directly-loaded value.

Tables smaller than the physical register count are index-hashed (modulo)
and tagged with the full register id; a tag mismatch is a conflict, which
only ever drops a reveal (always safe, §6.6).
"""

from __future__ import annotations

from typing import List, Optional

from repro.memory.packet import MemPacket, PacketKind
from repro.telemetry.events import CAT_RECON, NULL_TELEMETRY

__all__ = ["LoadPairTable"]


class _Entry:
    __slots__ = ("active", "tag", "addr")

    def __init__(self) -> None:
        self.active = False
        self.tag = -1
        self.addr = 0


class LoadPairTable:
    """Commit-stage detector of direct-dependence load pairs."""

    def __init__(self, entries: int) -> None:
        if entries <= 0:
            raise ValueError("LPT needs at least one entry")
        self.entries = entries
        self._table: List[_Entry] = [_Entry() for _ in range(entries)]
        self.conflicts = 0
        self.pairs_detected = 0
        #: Active entries right now (maintained incrementally so the
        #: occupancy histogram costs O(1) per commit).
        self.occupancy = 0
        #: Telemetry sink + core id (wired by the owning core).
        self.telemetry = NULL_TELEMETRY
        self.telemetry_core = 0

    def _index(self, phys_reg: int) -> int:
        return phys_reg % self.entries

    def on_load_commit(
        self, dest_phys: int, src_phys: Optional[int], load_addr: int
    ) -> Optional[int]:
        """Process a committing load with a single source operand.

        Returns the address to reveal (the *first* load's address) when a
        load pair is detected, else ``None``.  The source entry is checked
        before the destination entry is written, so a self-aliasing index
        (possible with hashed tables) cannot fabricate a pair.
        """
        sources = (src_phys,) if src_phys is not None else ()
        reveals = self.on_load_commit_multi(dest_phys, sources, load_addr)
        return reveals[0] if reveals else None

    def on_load_commit_multi(
        self, dest_phys: int, src_phys: "tuple", load_addr: int
    ) -> "List[int]":
        """Multi-source variant (paper §5.1.1): one lookup per operand.

        Each active, tag-matching source entry yields one reveal; all
        source entries are checked before the destination is written.
        """
        reveals: List[int] = []
        telemetry = self.telemetry
        for phys in src_phys:
            entry = self._table[self._index(phys)]
            if entry.active:
                if entry.tag == phys:
                    reveals.append(entry.addr)
                    self.pairs_detected += 1
                    if telemetry.enabled:
                        telemetry.emit(
                            CAT_RECON,
                            "lpt_pair",
                            core=self.telemetry_core,
                            addr=entry.addr,
                        )
                else:
                    self.conflicts += 1
                    if telemetry.enabled:
                        telemetry.emit(
                            CAT_RECON,
                            "lpt_conflict",
                            core=self.telemetry_core,
                            value=phys,
                        )
        dest = self._table[self._index(dest_phys)]
        if not dest.active:
            self.occupancy += 1
        dest.active = True
        dest.tag = dest_phys
        dest.addr = load_addr
        if telemetry.enabled:
            telemetry.observe("lpt_occupancy", self.occupancy)
        return reveals

    def reveal_packets(
        self, reveals: "List[int]", core: int, cycle: int
    ) -> "List[MemPacket]":
        """Wrap detected pair reveals as REVEAL_REQ packets.

        Reveal requests originate here and piggyback on the memory
        system (paper §5.1): the core submits each packet and the
        hierarchy sets the word's bit in the private copy — or drops the
        request if the line has left the private hierarchy.
        """
        return [
            MemPacket.request(PacketKind.REVEAL_REQ, core, addr, cycle)
            for addr in reveals
        ]

    def on_other_commit(self, dest_phys: Optional[int]) -> None:
        """A non-load instruction committed: deactivate its dest entry."""
        if dest_phys is None:
            return
        entry = self._table[self._index(dest_phys)]
        if entry.tag == dest_phys:
            if entry.active:
                self.occupancy -= 1
            entry.active = False

    def entry_state(self, phys_reg: int) -> "tuple[bool, int]":
        """(active-and-tag-matched, stored address) — for tests."""
        entry = self._table[self._index(phys_reg)]
        return entry.active and entry.tag == phys_reg, entry.addr
