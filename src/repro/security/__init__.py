"""Security schemes: unsafe baseline, NDA, STT, and the ReCon optimizer."""

from repro.common.stats import StatSet
from repro.common.types import SchemeKind
from repro.security.dom import DomPolicy
from repro.security.invispec import InvisiSpecPolicy
from repro.security.lpt import LoadPairTable
from repro.security.nda import NdaPolicy
from repro.security.oracle import OracleNdaPolicy, OracleSttPolicy
from repro.security.policy import EMPTY_TAINT, SecurityPolicy, UnsafePolicy
from repro.security.spt import SptNdaPolicy, SptSttPolicy
from repro.security.stt import SttPolicy

__all__ = [
    "DomPolicy",
    "EMPTY_TAINT",
    "InvisiSpecPolicy",
    "LoadPairTable",
    "NdaPolicy",
    "OracleNdaPolicy",
    "OracleSttPolicy",
    "SecurityPolicy",
    "SptNdaPolicy",
    "SptSttPolicy",
    "SttPolicy",
    "UnsafePolicy",
    "make_policy",
]


def make_policy(kind: SchemeKind, stats: StatSet) -> SecurityPolicy:
    """Build the policy object for a scheme selector."""
    if kind is SchemeKind.UNSAFE:
        return UnsafePolicy(stats)
    if kind in (SchemeKind.NDA, SchemeKind.NDA_RECON):
        return NdaPolicy(stats, use_recon=kind.uses_recon)
    if kind in (SchemeKind.STT, SchemeKind.STT_RECON):
        return SttPolicy(stats, use_recon=kind.uses_recon)
    if kind in (SchemeKind.DOM, SchemeKind.DOM_RECON):
        return DomPolicy(stats, use_recon=kind.uses_recon)
    if kind in (SchemeKind.INVISPEC, SchemeKind.INVISPEC_RECON):
        return InvisiSpecPolicy(stats, use_recon=kind.uses_recon)
    if kind is SchemeKind.NDA_SPT:
        return SptNdaPolicy(stats)
    if kind is SchemeKind.STT_SPT:
        return SptSttPolicy(stats)
    raise ValueError(f"unknown scheme {kind}")
