"""Delay-on-Miss (Sakalis et al., ISCA 2019; paper §7).

DoM closes cache timing channels directly: a speculative load may
execute only if it *hits in the L1* (a hit produces no observable timing
difference); speculative misses are delayed until the load becomes
non-speculative.  No taint tracking is needed — hits return values that
are free to propagate.

The paper names DoM as the scheme most throttled by delayed misses and
points at InvarSpec-style lifting as its remedy; ReCon provides the same
kind of lift from the other direction: a speculative load to a
**revealed** word may miss — the line fill's timing discloses only an
address that already leaked non-speculatively.
"""

from __future__ import annotations

from repro.security.policy import SecurityPolicy

__all__ = ["DomPolicy"]


class DomPolicy(SecurityPolicy):
    """Delay-on-Miss, optionally optimized by ReCon."""

    name = "dom"

    #: Tells the pipeline to consult :meth:`may_issue_load` with an L1 probe.
    gates_on_miss = True

    def may_issue_load(
        self, speculative: bool, l1_hit: bool, revealed: bool
    ) -> bool:
        """May this load access the memory system right now?"""
        if not speculative or l1_hit:
            return True
        return self.use_recon and revealed
