"""NDA with permissive propagation (Weisse et al., MICRO 2019; paper §2.1).

A speculative load may access the cache, but its result is not broadcast
to dependents until the load becomes non-speculative.  No taint tracking
is needed: potential secrets simply never enter the rest of the core.

With ReCon (§5.4), a speculative load whose word is revealed propagates
immediately — the value is already public.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.security.policy import EMPTY_TAINT, SecurityPolicy
from repro.telemetry.events import CAT_SECURITY

__all__ = ["NdaPolicy"]


class NdaPolicy(SecurityPolicy):
    """Permissive-propagation NDA, optionally optimized by ReCon."""

    name = "nda"

    def on_load_value(
        self,
        seq: int,
        speculative: bool,
        revealed: bool,
        forwarded_taint: FrozenSet[int],
    ) -> Tuple[bool, FrozenSet[int]]:
        if speculative and not revealed:
            self.stats.deferred_broadcasts += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_SECURITY,
                    "nda_defer",
                    core=self.telemetry_core,
                    seq=seq,
                )
            return False, EMPTY_TAINT
        return True, EMPTY_TAINT
