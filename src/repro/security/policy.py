"""Security-policy interface and the unsafe baseline.

A policy is consulted by the pipeline at three points:

* **issue** — may a load/store with these operand taints execute now?
  (STT's explicit-channel gate; a no-op for NDA and unsafe.)
* **load value return** — should the loaded value broadcast now, and with
  what taint root-set?  (NDA defers broadcast of speculative loads; STT
  taints them; ReCon lifts either when the word is revealed.)
* **branch resolution** — may a branch resolve (releasing its shadow and,
  on a mispredict, redirecting fetch)?  (STT's implicit-channel gate.)

Taint is represented as a frozenset of *root* load sequence numbers; a
value is *effectively* tainted while any of its roots is still unsafe
(speculative).  Roots become safe when the visibility frontier passes
them, which is STT's automatic untaint.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.common.stats import StatSet
from repro.telemetry.events import NULL_TELEMETRY

__all__ = ["SecurityPolicy", "UnsafePolicy", "EMPTY_TAINT"]

EMPTY_TAINT: FrozenSet[int] = frozenset()


class SecurityPolicy:
    """Base policy: answers every query with "no restriction"."""

    #: Human-readable scheme name (overridden by subclasses).
    name = "base"

    #: Telemetry sink (the core wires a live collector in when tracing
    #: is enabled; the null object keeps the disabled path to one check).
    telemetry = NULL_TELEMETRY

    #: Core id stamped on events this policy emits.
    telemetry_core = 0

    #: If True, the pipeline probes the L1 before issuing a load and asks
    #: :meth:`may_issue_load` (Delay-on-Miss-style gating).
    gates_on_miss = False

    #: If True, speculative loads execute without touching cache state and
    #: are exposed at the visibility point (InvisiSpec-style hiding).
    invisible_speculation = False

    def __init__(self, stats: StatSet, use_recon: bool = False) -> None:
        self.stats = stats
        self.use_recon = use_recon

    # -- issue gates ----------------------------------------------------
    def load_issue_blocked(self, operand_taint: FrozenSet[int]) -> bool:
        """True if a load (a transmitter) must wait (explicit channel)."""
        return False

    def store_issue_blocked(self, operand_taint: FrozenSet[int]) -> bool:
        """True if a store's address generation must wait."""
        return False

    def branch_resolution_blocked(self, operand_taint: FrozenSet[int]) -> bool:
        """True if branch resolution must wait (implicit channel)."""
        return False

    def may_issue_load(
        self, speculative: bool, l1_hit: bool, revealed: bool
    ) -> bool:
        """Miss-gating hook; only consulted when ``gates_on_miss`` is set."""
        return True

    # -- dataflow -------------------------------------------------------
    def on_load_value(
        self,
        seq: int,
        speculative: bool,
        revealed: bool,
        forwarded_taint: FrozenSet[int],
    ) -> Tuple[bool, FrozenSet[int]]:
        """Handle a load's value arriving.

        Returns ``(broadcast_now, dest_taint)``.  ``revealed`` is True only
        when ReCon is enabled and the accessed word's reveal bit was set at
        a visible cache level (never for store-forwarded data).
        """
        return True, EMPTY_TAINT

    def propagate_taint(self, operand_taint: FrozenSet[int]) -> FrozenSet[int]:
        """Taint of a non-load instruction's result."""
        return EMPTY_TAINT

    # -- commit stream ----------------------------------------------------
    def on_commit(self, uop) -> None:
        """A micro-op committed (architectural order).

        Default: ignored.  SPT-style policies feed this into a continuous
        DIFT engine to learn non-speculative leakage.
        """

    def word_is_public(self, addr: int) -> bool:
        """Policy-private knowledge that ``addr``'s word already leaked.

        Consulted in addition to the ReCon reveal bit; the base policy
        knows nothing.
        """
        return False

    # -- time -----------------------------------------------------------
    def on_visibility(self, frontier: float) -> None:
        """The visibility frontier advanced to ``frontier``."""

    def effectively_tainted(self, taint: FrozenSet[int]) -> bool:
        """True if any root in ``taint`` is still unsafe."""
        return False


class UnsafePolicy(SecurityPolicy):
    """The unprotected baseline processor (the paper's 'unsafe baseline')."""

    name = "unsafe"
