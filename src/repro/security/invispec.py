"""InvisiSpec-style invisible speculation (Yan et al., MICRO 2018; §7).

The hide-don't-delay family: speculative loads execute and their values
propagate freely, but the access leaves **no cache footprint** — no
fill, no coherence transition, no MSHR — until the load reaches its
visibility point, at which moment the line is *exposed* (fetched for
real).  The performance cost is the lost caching: a speculative pointer
chase pays the full memory distance on every hop, every time.

ReCon composes naturally: a load to a **revealed** word may execute
*visibly* even while speculative — installing the line and using the
MSHRs — because the address it discloses already leaked
non-speculatively.  This is the same lift the paper applies to NDA/STT,
pointed at a different base scheme.
"""

from __future__ import annotations

from repro.security.policy import SecurityPolicy

__all__ = ["InvisiSpecPolicy"]


class InvisiSpecPolicy(SecurityPolicy):
    """Invisible speculative loads, optionally optimized by ReCon."""

    name = "invispec"

    #: Tells the pipeline to route speculative loads through
    #: :meth:`~repro.memory.hierarchy.MemoryHierarchy.read_invisible` and
    #: expose them at the visibility point.
    invisible_speculation = True

    def load_must_be_invisible(self, speculative: bool, revealed: bool) -> bool:
        """Must this load avoid touching the cache hierarchy?"""
        if not speculative:
            return False
        return not (self.use_recon and revealed)
