"""The out-of-order core model.

A cycle-driven, trace-fed, correct-path pipeline with the Table 2
resources: 8-wide dispatch/issue/commit, 352-entry ROB, 160-entry IQ,
128/72-entry LQ/SQ, register renaming over a physical register file, a
store buffer drained after commit, branch/store speculation shadows, and a
store-set-lite memory-dependence predictor.

Wrong-path execution is modeled as a fetch bubble: a mispredicted branch
blocks dispatch of younger (correct-path) micro-ops from its dispatch
until its *resolution* plus the redirect penalty.  This is where the
secure schemes' delayed branch resolution (STT's implicit-channel gate,
NDA's deferred operand broadcast) costs performance, exactly as in the
paper.

Security hooks (see :mod:`repro.security`):

* loads/stores ask the policy before issuing (STT explicit channel);
* a returning load value asks the policy whether to broadcast now (NDA)
  and with what taint (STT), passing the ReCon reveal bit of the accessed
  word;
* branch resolution asks the policy (STT implicit channel);
* the commit stage runs the ReCon load-pair table and sends reveal
  requests to the L1; committed stores conceal their word when performed.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.common.errors import SimulationHangError
from repro.common.params import SystemParams
from repro.common.stats import StatSet
from repro.common.types import MemPrediction, OpClass, SpeculationModel
from repro.core.lsq import LoadStoreUnit
from repro.core.mdp import MemoryDependencePredictor
from repro.core.rename import RegisterFile
from repro.core.shadows import ShadowTracker
from repro.isa.microop import MicroOp
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.packet import MemPacket, PacketKind
from repro.common.events import EventQueue
from repro.security.policy import EMPTY_TAINT, SecurityPolicy
from repro.security.lpt import LoadPairTable
from repro.telemetry.events import (
    CAT_PIPELINE,
    CAT_RECON,
    CAT_SECURITY,
    CAT_SHADOW,
    NULL_TELEMETRY,
)

__all__ = ["Core", "Observation"]


class Observation:
    """A load's memory access, as visible to a cache side-channel."""

    __slots__ = ("seq", "pc", "addr", "cycle", "speculative")

    def __init__(
        self, seq: int, pc: int, addr: int, cycle: int, speculative: bool
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.addr = addr
        self.cycle = cycle
        self.speculative = speculative

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spec = " spec" if self.speculative else ""
        return f"<Obs #{self.seq} [{self.addr:#x}] @{self.cycle}{spec}>"


class _Inst:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "seq",
        "uop",
        "dest_phys",
        "src_phys",
        "data_phys",
        "freed_on_commit",
        "pending",
        "data_pending",
        "agen_done",
        "captured_taint",
        "completed",
        "fwd_taint",
        "mem_revealed",
        "went_to_memory",
        "first_blocked",
        "counted_delayed",
        "taint_cache",
        "blocked_epoch",
    )

    def __init__(self, seq: int, uop: MicroOp) -> None:
        self.seq = seq
        self.uop = uop
        self.dest_phys: Optional[int] = None
        self.src_phys: Tuple[int, ...] = ()
        self.data_phys: Tuple[int, ...] = ()
        self.freed_on_commit: Optional[int] = None
        self.pending = 0
        self.data_pending = 0
        self.agen_done = False
        self.captured_taint: FrozenSet[int] = EMPTY_TAINT
        self.completed = False
        self.fwd_taint: FrozenSet[int] = EMPTY_TAINT
        self.mem_revealed = False
        self.went_to_memory = False
        self.first_blocked = -1
        self.counted_delayed = False
        #: Fast-path memo of the operand-taint union (None = not taken).
        #: A waiting instruction's source taints cannot change between
        #: issue attempts — the physical registers it reads are not
        #: reallocated until after it commits — so the union is computed
        #: once.  The reference loop recomputes it every attempt; both
        #: produce the same value.
        self.taint_cache: Optional[FrozenSet[int]] = None
        #: Fast-path memo: the event-queue epoch at which this
        #: instruction last polled as blocked.  While the epoch is
        #: unchanged, nothing that could unblock it has happened, so the
        #: poll (which mutates no state on a blocked outcome) may be
        #: skipped.  The reference loop re-polls every cycle; both issue
        #: on the same cycle.
        self.blocked_epoch = -1


class Core:
    """One simulated core running one micro-op trace."""

    def __init__(
        self,
        core_id: int,
        params: SystemParams,
        trace: List[MicroOp],
        hierarchy: MemoryHierarchy,
        policy: SecurityPolicy,
        stats: Optional[StatSet] = None,
        warmup_uops: int = 0,
        telemetry=NULL_TELEMETRY,
        events: Optional[EventQueue] = None,
        measure_uops: Optional[int] = None,
    ) -> None:
        params.validate()
        self.core_id = core_id
        self.params = params
        self.trace = trace
        self.hierarchy = hierarchy
        self.policy = policy
        self.stats = stats if stats is not None else StatSet()
        hierarchy.attach_stats(core_id, self.stats)
        #: Telemetry collector (the null object when tracing is off); a
        #: live collector is propagated to every owned subcomponent so the
        #: whole core emits into one stream.
        self.telemetry = telemetry
        if telemetry.enabled:
            hierarchy.telemetry = telemetry
            policy.telemetry = telemetry
            policy.telemetry_core = core_id
        #: After this many committed micro-ops, a stats snapshot is taken;
        #: :attr:`measured` excludes everything before it (detailed warm-up,
        #: paper §6.1).
        self.warmup_uops = warmup_uops
        self._warm_snapshot: Optional[StatSet] = None
        #: Sampled simulation stops the core after this many *measured*
        #: commits (beyond the warm-up), snapshotting stats at that
        #: commit so the tail of the trace slice — kept only to feed the
        #: fetch window — never drains through the pipeline and pollutes
        #: the measured cycle count.  ``None`` (always, outside sampled
        #: units) runs the trace to completion.
        self.measure_uops = measure_uops
        self._measure_at = (
            warmup_uops + measure_uops if measure_uops is not None else None
        )
        self._measure_snapshot: Optional[StatSet] = None

        core = params.core
        self.regfile = RegisterFile(core.arch_regs, core.phys_regs)
        self.shadows = ShadowTracker()
        self.lsq = LoadStoreUnit(core.lq_entries, core.sq_entries)
        self.mdp = MemoryDependencePredictor()
        self.lpt = (
            LoadPairTable(params.effective_lpt_entries)
            if policy.use_recon
            else None
        )
        if telemetry.enabled:
            self.lsq.telemetry = telemetry
            self.lsq.telemetry_core = core_id
            if self.lpt is not None:
                self.lpt.telemetry = telemetry
                self.lpt.telemetry_core = core_id

        self._latency = {
            OpClass.ALU: core.alu_latency,
            OpClass.MUL: core.mul_latency,
            OpClass.DIV: core.div_latency,
            OpClass.FP: core.fp_latency,
            OpClass.BRANCH: core.branch_latency,
            OpClass.NOP: 1,
        }

        self._data_waiters: Dict[int, List[_Inst]] = {}
        self._rob: List[_Inst] = []  # in program order; head is index 0
        self._rob_head = 0
        self._iq_count = 0
        self._ready: List[_Inst] = []
        #: Discrete-event queue; shared across cores (and packet
        #: completions) when a :class:`~repro.sim.system.System` passes
        #: one in, private otherwise (standalone cores in tests).
        self.events = events if events is not None else EventQueue()
        self._blocked_branches: List[_Inst] = []
        self._deferred: List[Tuple[int, _Inst]] = []  # NDA broadcast at safety
        self._pending_exposes: List[Tuple[int, int]] = []  # invisible loads
        self._fetch_idx = 0
        self._fetch_blocked_by: Optional[int] = None  # mispredicted branch seq
        self._fetch_resume_cycle = 0
        self.cycle = 0
        self.done = False

        #: Memory accesses visible to a cache side-channel (security tests).
        self.observations: List[Observation] = []

    @property
    def measured(self) -> StatSet:
        """Stats excluding the warm-up prefix (all stats if no warm-up).

        When a measurement window was set (``measure_uops``) and
        reached, the window-closing snapshot is the endpoint instead of
        the final stats.
        """
        end = (
            self._measure_snapshot
            if self._measure_snapshot is not None
            else self.stats
        )
        if self._warm_snapshot is None:
            return end
        return end.delta(self._warm_snapshot)

    # ------------------------------------------------------------------
    # public driving
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000) -> StatSet:
        """Run the trace to completion; returns the stats."""
        while not self.done:
            if self.cycle >= max_cycles:
                raise self.hang_error(max_cycles)
            active = self.step(self.cycle)
            if active or self.done:
                self.cycle += 1
            else:
                self.cycle = self.next_wake(self.cycle)
        return self.stats

    @property
    def rob_head_seq(self) -> int:
        """Sequence number at the ROB head (``-1`` once drained)."""
        if self._rob_head < len(self._rob):
            return self._rob[self._rob_head].seq
        return -1

    def mshr_outstanding(self, cycle: int) -> int:
        """This core's outstanding MSHR entries at ``cycle``."""
        try:
            return self.hierarchy.mshr_occupancy(self.core_id, cycle)
        except (AttributeError, IndexError, KeyError):
            return -1  # standalone cores wired to a stub hierarchy

    def hang_error(self, max_cycles: int) -> SimulationHangError:
        """Build the diagnostic hang error for this core's current state."""
        return SimulationHangError(
            max_cycles,
            cycle=self.cycle,
            rob_head_seqs=[self.rob_head_seq],
            mshr_outstanding=[self.mshr_outstanding(self.cycle)],
            event_queue_depth=len(self.events),
        )

    def step(self, cycle: int) -> bool:
        """Advance one cycle; returns True if any pipeline activity occurred."""
        if self.done:
            return False
        if self.telemetry.enabled:
            # Cycle-less subcomponents (LSQ, LPT, hierarchy, policies)
            # stamp their events with the collector's current cycle.
            self.telemetry.now = cycle
        activity = self._process_events(cycle)
        activity |= self._resolve_blocked_branches(cycle)
        self._advance_visibility(cycle)
        activity |= self._drain_store_buffer(cycle)
        activity |= self._commit(cycle) > 0
        activity |= self._issue(cycle) > 0
        activity |= self._dispatch(cycle) > 0
        if (
            self._fetch_idx >= len(self.trace)
            and self._rob_head >= len(self._rob)
            and self.lsq.sb_depth == 0
        ):
            self.done = True
            self.stats.cycles = cycle + 1
            if self.lpt is not None:
                self.stats.lpt_conflicts = self.lpt.conflicts
        return activity

    def next_wake(self, cycle: int) -> int:
        """Earliest future cycle at which state can change."""
        candidates = [cycle + 1]
        pending = self.events.next_cycle()
        if pending is not None and pending > cycle:
            candidates.append(pending)
        if self._fetch_blocked_by is None and self._fetch_resume_cycle > cycle:
            candidates.append(self._fetch_resume_cycle)
        if len(candidates) == 1:
            # Nothing scheduled: only legal if a same-cycle wake is pending.
            return cycle + 1
        return max(cycle + 1, min(candidates[1:]))

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------
    def _schedule(self, cycle: int, kind: str, inst: _Inst) -> None:
        if kind == "complete":
            self.events.schedule(
                cycle, lambda now, inst=inst: self._complete(inst, now)
            )
        elif kind == "load_return":
            self.events.schedule(
                cycle, lambda now, inst=inst: self._load_return(inst, now)
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event {kind}")

    def _process_events(self, cycle: int) -> bool:
        return self.events.service(cycle)

    def _complete(self, inst: _Inst, cycle: int) -> None:
        uop = inst.uop
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                CAT_PIPELINE, "complete", core=self.core_id, seq=inst.seq
            )
        if uop.opclass is OpClass.STORE:
            violated = self.lsq.resolve_store(inst.seq)
            for load in violated:
                # Squash-lite: train the predictor and charge a flush-like
                # bubble for the memory-order violation.
                self.stats.mem_order_violations += 1
                self.mdp.train_violation(load.pc)
                self._fetch_resume_cycle = max(
                    self._fetch_resume_cycle,
                    cycle + self.params.core.mispredict_penalty,
                )
            if self.params.speculation_model is not SpeculationModel.CONTROL_ONLY:
                self._shadow_exit(inst.seq)
            inst.agen_done = True
            if inst.data_pending == 0:
                inst.completed = True
        elif uop.opclass is OpClass.BRANCH:
            if self.policy.branch_resolution_blocked(inst.captured_taint):
                self._blocked_branches.append(inst)
            else:
                self._resolve_branch(inst, cycle)
        else:
            taint = self.policy.propagate_taint(inst.captured_taint)
            self._broadcast(inst, taint)
            inst.completed = True

    def _shadow_cast(self, seq: int) -> None:
        """Cast a speculation shadow, emitting the telemetry enter event."""
        self.shadows.cast(seq)
        if self.telemetry.enabled:
            self.telemetry.emit(CAT_SHADOW, "enter", core=self.core_id, seq=seq)

    def _shadow_exit(self, seq: int) -> None:
        """Resolve a speculation shadow, emitting the telemetry exit event."""
        self.shadows.resolve(seq)
        if self.telemetry.enabled:
            self.telemetry.emit(CAT_SHADOW, "exit", core=self.core_id, seq=seq)

    def _resolve_blocked_branches(self, cycle: int) -> bool:
        if not self._blocked_branches:
            return False
        still_blocked = []
        resolved_any = False
        for inst in self._blocked_branches:
            if self.policy.branch_resolution_blocked(inst.captured_taint):
                still_blocked.append(inst)
            else:
                self._resolve_branch(inst, cycle)
                resolved_any = True
        self._blocked_branches = still_blocked
        return resolved_any

    def _resolve_branch(self, inst: _Inst, cycle: int) -> None:
        self._shadow_exit(inst.seq)
        inst.completed = True
        if inst.uop.mispredict:
            self.stats.mispredicted_branches += 1
            if self.telemetry.enabled:
                # The wrong-path fetch bubble is the squash in this
                # correct-path model.
                self.telemetry.emit(
                    CAT_PIPELINE, "squash", core=self.core_id, seq=inst.seq
                )
            if self._fetch_blocked_by == inst.seq:
                self._fetch_blocked_by = None
                self._fetch_resume_cycle = max(
                    self._fetch_resume_cycle,
                    cycle + self.params.core.mispredict_penalty,
                )

    def _advance_visibility(self, cycle: int) -> None:
        frontier = self.shadows.frontier
        self.policy.on_visibility(frontier)
        while self._deferred and self._deferred[0][0] < frontier:
            _, inst = heapq.heappop(self._deferred)
            self._broadcast(inst, EMPTY_TAINT)
        while self._pending_exposes and self._pending_exposes[0][0] < frontier:
            # Expose: install the line for real, off the critical path.
            _, addr = heapq.heappop(self._pending_exposes)
            self.hierarchy.submit(
                MemPacket.request(
                    PacketKind.READ_REQ, self.core_id, addr, cycle
                )
            )

    def _commit(self, cycle: int) -> int:
        committed = 0
        width = self.params.core.commit_width
        while committed < width and self._rob_head < len(self._rob):
            inst = self._rob[self._rob_head]
            if not inst.completed:
                break
            uop = inst.uop
            if uop.opclass is OpClass.STORE:
                if self.lsq.sb_full:
                    break
                self.lsq.commit_store(inst.seq)
                self.stats.committed_stores += 1
                if self.lpt is not None:
                    self.lpt.on_other_commit(inst.dest_phys)
            elif uop.opclass is OpClass.LOAD:
                self.lsq.commit_load(inst.seq)
                self.stats.committed_loads += 1
                if self.lpt is not None:
                    self._lpt_load_commit(inst, cycle)
            else:
                if uop.opclass is OpClass.BRANCH:
                    self.stats.committed_branches += 1
                if self.lpt is not None:
                    self.lpt.on_other_commit(inst.dest_phys)
            self.policy.on_commit(uop)
            if self.telemetry.enabled:
                # The uop reference rides the event for streaming sinks
                # (leakage timeline); it is stripped before storage.
                self.telemetry.emit(
                    CAT_PIPELINE,
                    "commit",
                    core=self.core_id,
                    seq=inst.seq,
                    uop=uop,
                )
            if inst.freed_on_commit is not None:
                self.regfile.release(inst.freed_on_commit)
            self._rob[self._rob_head] = None  # type: ignore[call-overload]
            self._rob_head += 1
            self.stats.committed_uops += 1
            committed += 1
            if (
                self._warm_snapshot is None
                and self.warmup_uops
                and self.stats.committed_uops >= self.warmup_uops
            ):
                self.stats.cycles = cycle
                self._warm_snapshot = self.stats.snapshot()
            if (
                self._measure_at is not None
                and self._measure_snapshot is None
                and self.stats.committed_uops >= self._measure_at
            ):
                self.stats.cycles = cycle
                if self.lpt is not None:
                    self.stats.lpt_conflicts = self.lpt.conflicts
                self._measure_snapshot = self.stats.snapshot()
                # Stop the core: everything past the window is cool-down
                # trace kept only so fetch never starved mid-window.
                self.done = True
                break
        if self._rob_head > 4096 and self._rob_head == len(self._rob):
            del self._rob[: self._rob_head]
            self._rob_head = 0
        return committed

    def _lpt_load_commit(self, inst: _Inst, cycle: int) -> None:
        assert self.lpt is not None and inst.dest_phys is not None
        sources = inst.src_phys[: self.params.lpt_sources]
        reveals = self.lpt.on_load_commit_multi(
            inst.dest_phys, sources, inst.uop.addr or 0
        )
        self.stats.load_pairs_detected += len(reveals)
        for pkt in self.lpt.reveal_packets(reveals, self.core_id, cycle):
            self.hierarchy.submit(pkt)

    def _drain_store_buffer(self, cycle: int) -> bool:
        drained = False
        for _ in range(self.params.core.sb_drain_per_cycle):
            entry = self.lsq.pop_performable_store()
            if entry is None:
                break
            self.hierarchy.submit(entry.drain_packet(self.core_id, cycle))
            drained = True
        return drained

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------
    def _issue(self, cycle: int) -> int:
        if not self._ready:
            return 0
        self._ready.sort(key=lambda i: i.seq)
        issued = 0
        kept: List[_Inst] = []
        width = self.params.core.issue_width
        for inst in self._ready:
            if issued >= width:
                kept.append(inst)
                continue
            uop = inst.uop
            if uop.opclass is OpClass.LOAD:
                outcome = self._try_issue_load(inst, cycle)
            elif uop.opclass is OpClass.STORE:
                outcome = self._try_issue_store(inst, cycle)
            else:
                inst.captured_taint = self.regfile.union_taint(inst.src_phys)
                self._schedule(
                    cycle + self._latency[uop.opclass], "complete", inst
                )
                outcome = True
            if outcome:
                issued += 1
                self._iq_count -= 1
                if self.telemetry.enabled:
                    self.telemetry.emit(
                        CAT_PIPELINE, "issue", core=self.core_id, seq=inst.seq
                    )
            else:
                self._note_blocked(inst, cycle)
                kept.append(inst)
        self._ready = kept
        return issued

    def _note_blocked(self, inst: _Inst, cycle: int) -> None:
        if inst.first_blocked < 0:
            inst.first_blocked = cycle
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_SECURITY,
                    "delay_start",
                    core=self.core_id,
                    seq=inst.seq,
                )
        if not inst.counted_delayed and inst.uop.opclass is OpClass.LOAD:
            inst.counted_delayed = True
            self.stats.delayed_loads += 1

    def _try_issue_store(self, inst: _Inst, cycle: int) -> bool:
        taint = self.regfile.union_taint(inst.src_phys)
        if self.policy.store_issue_blocked(taint):
            return False
        inst.captured_taint = taint
        self._finish_delay_stat(inst, cycle)
        self._schedule(cycle + self._latency[OpClass.ALU], "complete", inst)
        return True

    def _try_issue_load(self, inst: _Inst, cycle: int) -> bool:
        taint = self.regfile.union_taint(inst.src_phys)
        if self.policy.load_issue_blocked(taint):
            return False
        uop = inst.uop
        addr = uop.addr
        assert addr is not None
        if self.policy.gates_on_miss:
            l1_hit, revealed = self.hierarchy.peek_access(self.core_id, addr)
            if not self.policy.may_issue_load(
                self.shadows.is_speculative(inst.seq), l1_hit, revealed
            ):
                return False
        invisible = False
        if self.policy.invisible_speculation:
            _, revealed = self.hierarchy.peek_access(self.core_id, addr)
            invisible = self.policy.load_must_be_invisible(
                self.shadows.is_speculative(inst.seq), revealed
            )
        forward = self.lsq.forwarding_store(inst.seq, addr)
        if forward is not None and not forward.data_ready:
            return False  # matching older store exists but has no data yet
        unresolved = self.lsq.has_older_unresolved_store(inst.seq)

        if self.params.memory_dependence_speculation:
            prediction = uop.forced_prediction or self.mdp.predict(uop.pc)
            if prediction is MemPrediction.STF:
                if unresolved:
                    return False  # wait for older store addresses
                if forward is None:
                    self.mdp.train_no_dependence(uop.pc)
            # MEM prediction (or STF that found nothing): proceed; a match
            # with a resolved store always forwards.
        else:
            if unresolved:
                return False

        inst.captured_taint = taint
        self._finish_delay_stat(inst, cycle)
        if forward is not None:
            inst.fwd_taint = forward.taint
            inst.mem_revealed = False  # forwarded data is always concealed
            self.stats.store_forwards += 1
            self._schedule(cycle + 2, "load_return", inst)
        elif invisible:
            # InvisiSpec-style access: value without footprint; the line
            # is exposed (fetched for real) at the visibility point.  The
            # access is invisible to the *cache side channel*, but it still
            # read memory past unresolved stores, so it participates in
            # memory-order violation detection like any other load.
            access_cycle = cycle + 1
            pkt = self.hierarchy.submit(
                MemPacket.request(
                    PacketKind.INVISIBLE_REQ, self.core_id, addr, access_cycle
                )
            )
            inst.mem_revealed = False
            entry = self.lsq.load_entry(inst.seq)
            if entry is not None:
                entry.went_to_memory = True
            heapq.heappush(self._pending_exposes, (inst.seq, addr))
            self._schedule_packet_return(pkt, inst)
        else:
            access_cycle = cycle + 1  # address generation
            speculative = self.shadows.is_speculative(inst.seq)
            observe_hit = False
            if self.telemetry.enabled:
                # Peek *before* the access installs the line: the event
                # records whether this access perturbed the cache (the
                # attacker-visible side channel) — a speculative L1 hit
                # leaves no footprint.
                observe_hit, _ = self.hierarchy.peek_access(self.core_id, addr)
            # Non-blocking load: the packet completes with a callback;
            # the core keeps issuing younger work while the miss (and any
            # misses merged into its MSHR entry) is outstanding.
            pkt = self.hierarchy.submit(
                MemPacket.request(
                    PacketKind.READ_REQ, self.core_id, addr, access_cycle
                )
            )
            inst.mem_revealed = pkt.revealed
            inst.went_to_memory = True
            entry = self.lsq.load_entry(inst.seq)
            if entry is not None:
                entry.went_to_memory = True
            self.observations.append(
                Observation(
                    inst.seq,
                    uop.pc,
                    addr,
                    access_cycle,
                    speculative,
                )
            )
            if self.telemetry.enabled:
                # bit 0: L1 hit at access time; bit 1: issued under a
                # speculation shadow.  The red-team harness classifies
                # verdicts from this event.
                self.telemetry.emit(
                    CAT_SECURITY,
                    "observe",
                    core=self.core_id,
                    seq=inst.seq,
                    addr=addr,
                    value=(2 if speculative else 0) | (1 if observe_hit else 0),
                )
            self._schedule_packet_return(pkt, inst)
        return True

    def _schedule_packet_return(self, pkt: MemPacket, inst: _Inst) -> None:
        """Deliver a completed packet's data to ``inst`` at ``ready_at``."""
        pkt.on_complete = lambda p, inst=inst: self._load_return(
            inst, p.ready_at
        )
        self.events.schedule(pkt.ready_at, lambda now, p=pkt: p.fire())

    def _finish_delay_stat(self, inst: _Inst, cycle: int) -> None:
        if inst.first_blocked >= 0:
            delay = cycle - inst.first_blocked
            self.stats.delay_cycles += delay
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_SECURITY,
                    "delay_end",
                    core=self.core_id,
                    seq=inst.seq,
                    value=delay,
                )
                self.telemetry.observe("delay_cycles", delay)

    def _load_return(self, inst: _Inst, cycle: int) -> None:
        telemetry = self.telemetry
        if self.params.speculation_model is SpeculationModel.FUTURISTIC:
            # The load can no longer squash (functionally): release its
            # shadow when the value arrives.
            self._shadow_exit(inst.seq)
        speculative = self.shadows.is_speculative(inst.seq)
        revealed = inst.mem_revealed and self.policy.use_recon
        if not revealed and inst.went_to_memory:
            assert inst.uop.addr is not None
            revealed = self.policy.word_is_public(inst.uop.addr)
        if speculative and self.policy.use_recon and inst.went_to_memory:
            if revealed:
                self.stats.reveal_hits += 1
            else:
                self.stats.reveal_misses += 1
            if telemetry.enabled:
                telemetry.emit(
                    CAT_RECON,
                    "reveal_hit" if revealed else "reveal_miss",
                    core=self.core_id,
                    seq=inst.seq,
                    addr=inst.uop.addr,
                )
        broadcast_now, taint = self.policy.on_load_value(
            inst.seq, speculative, revealed, inst.fwd_taint
        )
        inst.completed = True
        if telemetry.enabled:
            telemetry.emit(
                CAT_PIPELINE, "complete", core=self.core_id, seq=inst.seq
            )
        if broadcast_now:
            self._broadcast(inst, taint)
        else:
            if telemetry.enabled:
                telemetry.emit(
                    CAT_PIPELINE, "defer", core=self.core_id, seq=inst.seq
                )
            heapq.heappush(self._deferred, (inst.seq, inst))

    def _broadcast(self, inst: _Inst, taint: FrozenSet[int]) -> None:
        if inst.dest_phys is None:
            return
        for waiter in self.regfile.broadcast(inst.dest_phys, taint):
            waiter.pending -= 1
            if waiter.pending == 0:
                self._ready.append(waiter)
        for waiter in self._data_waiters.pop(inst.dest_phys, ()):
            waiter.data_pending -= 1
            if waiter.data_pending == 0:
                self._store_data_ready(waiter)

    def _store_data_ready(self, inst: _Inst) -> None:
        """A store's data register(s) became available."""
        self.lsq.set_store_data(
            inst.seq, self.regfile.union_taint(inst.data_phys)
        )
        if inst.agen_done:
            inst.completed = True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, cycle: int) -> int:
        if self._fetch_blocked_by is not None or cycle < self._fetch_resume_cycle:
            return 0
        dispatched = 0
        core = self.params.core
        rob_occupancy = len(self._rob) - self._rob_head
        while dispatched < core.decode_width and self._fetch_idx < len(self.trace):
            uop = self.trace[self._fetch_idx]
            if rob_occupancy >= core.rob_entries:
                break
            if self._iq_count >= core.iq_entries:
                break
            if uop.opclass is OpClass.LOAD and self.lsq.lq_full:
                break
            if uop.opclass is OpClass.STORE and self.lsq.sq_full:
                break
            if not self.regfile.can_rename(uop.dest is not None):
                break
            inst = _Inst(uop.seq, uop)
            renamed = self.regfile.rename(uop.srcs + uop.data_srcs, uop.dest)
            split = len(uop.srcs)
            inst.src_phys = renamed.src_phys[:split]
            inst.data_phys = renamed.src_phys[split:]
            inst.dest_phys = renamed.dest_phys
            inst.freed_on_commit = renamed.freed_on_commit
            self._rob.append(inst)
            rob_occupancy += 1
            self._iq_count += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_PIPELINE,
                    "dispatch",
                    core=self.core_id,
                    seq=uop.seq,
                    addr=uop.pc,
                )
            model = self.params.speculation_model
            if uop.opclass is OpClass.LOAD:
                assert uop.addr is not None
                self.lsq.add_load(uop.seq, uop.pc, uop.addr)
                if model is SpeculationModel.FUTURISTIC:
                    self._shadow_cast(uop.seq)
            elif uop.opclass is OpClass.STORE:
                assert uop.addr is not None
                self.lsq.add_store(uop.seq, uop.pc, uop.addr)
                if model is not SpeculationModel.CONTROL_ONLY:
                    self._shadow_cast(uop.seq)
            elif uop.opclass is OpClass.BRANCH:
                self._shadow_cast(uop.seq)
                if uop.mispredict:
                    self._fetch_blocked_by = uop.seq
            inst.pending = sum(
                1 for phys in inst.src_phys if not self.regfile.ready[phys]
            )
            if inst.pending == 0:
                self._ready.append(inst)
            else:
                for phys in inst.src_phys:
                    if not self.regfile.ready[phys]:
                        self.regfile.waiters.setdefault(phys, []).append(inst)
            if uop.opclass is OpClass.STORE:
                inst.data_pending = sum(
                    1 for phys in inst.data_phys if not self.regfile.ready[phys]
                )
                if inst.data_pending == 0:
                    self._store_data_ready(inst)
                else:
                    for phys in inst.data_phys:
                        if not self.regfile.ready[phys]:
                            self._data_waiters.setdefault(phys, []).append(inst)
            self._fetch_idx += 1
            dispatched += 1
            if self._fetch_blocked_by is not None:
                break  # mispredicted branch: stop supplying younger uops
        return dispatched
