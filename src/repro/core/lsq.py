"""Load/store queues, store buffer, and store-to-load forwarding.

Committed stores sit in the store buffer (SB) until performed; stores in
the store queue (SQ) are in-flight (paper §4.4.2).  Loads forward from
either — and forwarded data is always **concealed** under ReCon, so the
pipeline never lifts defenses for a forwarded value (§4.5).

The ordering/violation queries are answered from incremental indexes
(an SQ map keyed by sequence number, per-word LQ lists, and a sorted
list of unresolved store sequence numbers) instead of linear scans; the
indexes are pure accelerations — every query returns exactly what the
scan-based implementation returned, in the same order.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, FrozenSet, List, Optional, Set

from repro.common.types import word_addr
from repro.memory.packet import MemPacket, PacketKind
from repro.telemetry.events import CAT_PIPELINE, NULL_TELEMETRY

__all__ = ["StoreEntry", "LoadEntry", "LoadStoreUnit"]


class StoreEntry:
    """One store in the SQ or SB."""

    __slots__ = (
        "seq",
        "pc",
        "addr",
        "word",
        "resolved",
        "data_ready",
        "committed",
        "taint",
    )

    def __init__(self, seq: int, pc: int, addr: int) -> None:
        self.seq = seq
        self.pc = pc
        self.addr = addr
        self.word = word_addr(addr)
        self.resolved = False  # address generated (agen done)
        self.data_ready = False  # data register value available
        self.committed = False
        self.taint: FrozenSet[int] = frozenset()  # taint of the stored data

    def drain_packet(self, core: int, cycle: int) -> MemPacket:
        """The WRITE_REQ that performs this store when the SB drains.

        Conceal-on-store rides the packet: the hierarchy clears the
        word's reveal bit when ownership is acquired (paper §4.4).
        """
        return MemPacket.request(PacketKind.WRITE_REQ, core, self.addr, cycle)


class LoadEntry:
    """One load tracked for memory-order violation detection."""

    __slots__ = ("seq", "pc", "word", "went_to_memory")

    def __init__(self, seq: int, pc: int, addr: int) -> None:
        self.seq = seq
        self.pc = pc
        self.word = word_addr(addr)
        self.went_to_memory = False


class LoadStoreUnit:
    """SQ + SB + LQ with forwarding and ordering queries."""

    def __init__(self, lq_entries: int, sq_entries: int) -> None:
        self.lq_entries = lq_entries
        self.sq_entries = sq_entries
        self._sq: Deque[StoreEntry] = collections.deque()
        self._sb: Deque[StoreEntry] = collections.deque()
        self._lq: Dict[int, LoadEntry] = {}
        #: SQ entries by sequence number (dispatch adds, commit removes).
        self._sq_map: Dict[int, StoreEntry] = {}
        #: LQ entries grouped by word, each list in dispatch order — the
        #: same relative order a full LQ scan would visit them in.
        self._lq_words: Dict[int, List[LoadEntry]] = {}
        #: Unresolved store seqs, ascending (dispatch order), drained
        #: lazily from the front as stores resolve.
        self._unresolved: List[int] = []
        self._resolved_seqs: Set[int] = set()
        #: Telemetry sink + core id (wired by the owning core).
        self.telemetry = NULL_TELEMETRY
        self.telemetry_core = 0

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    @property
    def sq_full(self) -> bool:
        return len(self._sq) >= self.sq_entries

    @property
    def lq_full(self) -> bool:
        return len(self._lq) >= self.lq_entries

    @property
    def sb_full(self) -> bool:
        return len(self._sb) >= self.sq_entries

    # ------------------------------------------------------------------
    # dispatch / execute / commit hooks
    # ------------------------------------------------------------------
    def add_store(self, seq: int, pc: int, addr: int) -> StoreEntry:
        """Allocate an SQ entry at dispatch (address not yet resolved)."""
        entry = StoreEntry(seq, pc, addr)
        self._sq.append(entry)
        self._sq_map[seq] = entry
        self._unresolved.append(seq)  # seqs arrive ascending
        return entry

    def add_load(self, seq: int, pc: int, addr: int) -> LoadEntry:
        """Allocate an LQ entry at dispatch."""
        entry = LoadEntry(seq, pc, addr)
        self._lq[seq] = entry
        word_list = self._lq_words.get(entry.word)
        if word_list is None:
            self._lq_words[entry.word] = [entry]
        else:
            word_list.append(entry)
        return entry

    def resolve_store(self, seq: int) -> List[LoadEntry]:
        """Mark a store's address resolved; return violated younger loads.

        A violation is a younger load to the same word that already issued
        to memory (it read stale data past this store).
        """
        entry = self._sq_map.get(seq)
        if entry is None:
            raise KeyError(f"store #{seq} not in SQ")
        entry.resolved = True
        self._resolved_seqs.add(seq)
        unresolved = self._unresolved
        resolved = self._resolved_seqs
        while unresolved and unresolved[0] in resolved:
            resolved.discard(unresolved.pop(0))
        violated = [
            load
            for load in self._lq_words.get(entry.word, ())
            if load.seq > seq and load.went_to_memory
        ]
        if self.telemetry.enabled:
            for load in violated:
                self.telemetry.emit(
                    CAT_PIPELINE,
                    "mem_violation",
                    core=self.telemetry_core,
                    seq=load.seq,
                    value=seq,
                )
        return violated

    def set_store_data(self, seq: int, taint: FrozenSet[int]) -> None:
        """The store's data register became available (with its taint)."""
        entry = self._sq_map.get(seq)
        if entry is None:
            raise KeyError(f"store #{seq} not in SQ")
        entry.data_ready = True
        entry.taint = taint

    def commit_store(self, seq: int) -> StoreEntry:
        """Move the SQ head into the store buffer (must commit in order)."""
        if not self._sq or self._sq[0].seq != seq:
            raise ValueError(f"store #{seq} is not the SQ head")
        entry = self._sq.popleft()
        del self._sq_map[seq]
        entry.committed = True
        self._sb.append(entry)
        return entry

    def commit_load(self, seq: int) -> None:
        """Release the LQ entry of a committing load."""
        entry = self._lq.pop(seq, None)
        if entry is not None:
            word_list = self._lq_words.get(entry.word)
            if word_list is not None:
                word_list.remove(entry)
                if not word_list:
                    del self._lq_words[entry.word]

    def pop_performable_store(self) -> Optional[StoreEntry]:
        """Remove and return the oldest SB entry (drained to the cache)."""
        if self._sb:
            return self._sb.popleft()
        return None

    # ------------------------------------------------------------------
    # ordering / forwarding queries
    # ------------------------------------------------------------------
    def has_older_unresolved_store(self, load_seq: int) -> bool:
        """Any store older than ``load_seq`` with an unresolved address?"""
        unresolved = self._unresolved
        if not unresolved:
            return False
        resolved = self._resolved_seqs
        while unresolved and unresolved[0] in resolved:
            resolved.discard(unresolved.pop(0))
        return bool(unresolved) and unresolved[0] < load_seq

    def forwarding_store(self, load_seq: int, addr: int) -> Optional[StoreEntry]:
        """Youngest older resolved store matching ``addr``'s word, if any.

        Searches the SQ (in-flight) and SB (committed, not yet performed);
        the youngest match supplies the data.
        """
        word = word_addr(addr)
        best: Optional[StoreEntry] = None
        for entry in reversed(self._sq):
            if entry.seq < load_seq and entry.resolved and entry.word == word:
                best = entry  # SQ is seq-ordered: first match from the
                break  # back is the youngest
        if best is not None:
            return best  # SQ entries are younger than all SB entries
        for entry in reversed(self._sb):
            if entry.word == word:
                return entry
        return None

    def _find_sq(self, seq: int) -> Optional[StoreEntry]:
        return self._sq_map.get(seq)

    def load_entry(self, seq: int) -> Optional[LoadEntry]:
        """The LQ entry for ``seq``, if still allocated."""
        return self._lq.get(seq)

    @property
    def sb_depth(self) -> int:
        return len(self._sb)
