"""Hot-path backend selection and vectorized kernels.

The cycle loop exists twice:

* :class:`repro.core.pipeline.Core` — the *reference* loop: readable,
  telemetry-instrumented, unchanged by the hot-path work.  Traced runs
  and the parity/golden suites run here.
* :class:`repro.core.fastcore.FastCore` — the optimized loop: same
  observable behavior (bit-identical stats, proven by
  ``tests/core/test_hotpath_parity.py``), several times faster.

This module decides which one a :class:`~repro.sim.system.System`
instantiates.  The ``REPRO_HOTPATH`` environment variable selects:

``auto`` (default)
    The compiled kernel if one is importable, else the vectorized
    pure-Python fast path.
``vector``
    Force the pure-Python fast path (:class:`FastCore`).
``legacy``
    Force the reference loop (:class:`Core`).
``compiled``
    Force the compiled kernel; falls back to ``vector`` (with a
    warning) when no compiled module is present.

The compiled kernel is an *optional* mypyc/Cython build of the fast
path (``repro.core._fastcore_compiled``).  No build machinery is
required — or present — in the default environment: the import is
attempted once and quietly skipped, so the pure-Python fast path is
what runs everywhere the extension has not been built.

The numpy kernels below follow one rule, measured rather than assumed:
vectorization only pays above a size threshold.  Pipeline operand scans
touch one to three registers and a ready queue of a few dozen entries —
at those sizes the numpy call overhead (array creation + dispatch)
exceeds the loop it replaces, so each kernel falls back to plain Python
below its threshold and numpy engages only on the rare wide cases.
When numpy is absent entirely, the fallbacks are the implementation.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Sequence

__all__ = [
    "BACKENDS",
    "HOTPATH_ENV",
    "HAVE_COMPILED",
    "HAVE_NUMPY",
    "core_class",
    "count_unready",
    "resolve_backend",
    "sort_ready",
]

#: Environment variable naming the backend.
HOTPATH_ENV = "REPRO_HOTPATH"

#: Recognized backend names.
BACKENDS = ("auto", "vector", "legacy", "compiled")

try:  # pragma: no cover - exercised only where numpy is missing
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

_compiled_core = None
try:  # pragma: no cover - no compiled kernel in the default environment
    from repro.core._fastcore_compiled import (  # type: ignore[import-not-found]
        CompiledCore as _compiled_core,
    )

    HAVE_COMPILED = True
except ImportError:
    HAVE_COMPILED = False


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``name`` overrides the ``REPRO_HOTPATH`` environment variable;
    the result is one of ``vector``, ``legacy``, or ``compiled``.
    """
    if name is None:
        name = os.environ.get(HOTPATH_ENV, "auto")
    name = name.strip().lower() or "auto"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown hot-path backend {name!r}; expected one of {BACKENDS}"
        )
    if name == "auto":
        return "compiled" if HAVE_COMPILED else "vector"
    if name == "compiled" and not HAVE_COMPILED:
        warnings.warn(
            "REPRO_HOTPATH=compiled but no compiled kernel is built; "
            "falling back to the pure-Python fast path",
            RuntimeWarning,
            stacklevel=2,
        )
        return "vector"
    return name


def core_class(backend: Optional[str] = None):
    """The core class implementing the selected backend."""
    resolved = resolve_backend(backend)
    if resolved == "legacy":
        from repro.core.pipeline import Core

        return Core
    if resolved == "compiled":  # pragma: no cover - optional extension
        return _compiled_core
    from repro.core.fastcore import FastCore

    return FastCore


# ---------------------------------------------------------------------------
# vectorized kernels (numpy above thresholds, plain Python below/without)
# ---------------------------------------------------------------------------

#: Below this ready-queue length, ``list.sort`` beats an argsort round trip.
SORT_READY_THRESHOLD = 64

#: Below this operand count, a scalar loop beats a numpy ``take``.
SCOREBOARD_THRESHOLD = 16


def _seq_of(inst) -> int:
    return inst.seq


def sort_ready(insts: List) -> List:
    """Order a wakeup/select queue by sequence number (oldest first).

    The per-cycle select scan: the issue stage walks this order and the
    reference loop re-sorts every cycle.  Large queues (many blocked
    loads under a secure scheme) take the numpy argsort path; small ones
    sort in place.
    """
    if HAVE_NUMPY and len(insts) >= SORT_READY_THRESHOLD:
        seqs = _np.fromiter((inst.seq for inst in insts), dtype=_np.int64, count=len(insts))
        return [insts[i] for i in _np.argsort(seqs, kind="stable")]
    insts.sort(key=_seq_of)
    return insts


def count_unready(ready: Sequence[bool], phys: Sequence[int]) -> int:
    """Scoreboard scan: how many of ``phys`` are not ready yet.

    ``ready`` is the physical-register scoreboard; ``phys`` the operand
    registers of one instruction (1–3 in practice, so the scalar loop is
    the common path).
    """
    if HAVE_NUMPY and len(phys) >= SCOREBOARD_THRESHOLD:
        board = _np.fromiter(ready, dtype=bool, count=len(ready))
        return int(len(phys) - _np.count_nonzero(board[list(phys)]))
    count = 0
    for reg in phys:
        if not ready[reg]:
            count += 1
    return count
