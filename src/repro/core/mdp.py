"""Memory-dependence predictor (store-set-lite).

A minimal predictor in the spirit of store sets [Chrysos & Emer 1998],
which the paper cites for the memory-dependence-speculation cases of
Table 1.  Per static load pc it predicts either MEM (independent: issue to
the memory hierarchy past unresolved older stores) or STF (dependent: wait
for older stores and forward).

Training: a memory-order violation (a load that went to memory and was hit
by an older store resolving to the same word) trains toward STF; an STF
prediction that found no forwarding match trains back toward MEM.
"""

from __future__ import annotations

from typing import Dict

from repro.common.types import MemPrediction

__all__ = ["MemoryDependencePredictor"]


class MemoryDependencePredictor:
    """2-bit-counter-per-pc predictor, default MEM."""

    _MAX = 3
    _THRESHOLD = 2  # counter >= threshold predicts STF

    def __init__(self) -> None:
        self._counters: Dict[int, int] = {}
        self.violations = 0
        self.false_dependencies = 0

    def predict(self, pc: int) -> MemPrediction:
        """Predict whether the load at ``pc`` depends on an older store."""
        if self._counters.get(pc, 0) >= self._THRESHOLD:
            return MemPrediction.STF
        return MemPrediction.MEM

    def train_violation(self, pc: int) -> None:
        """A MEM-predicted load was hit by an older store: learn STF."""
        self.violations += 1
        self._counters[pc] = min(self._counters.get(pc, 0) + 2, self._MAX)

    def train_no_dependence(self, pc: int) -> None:
        """An STF-predicted load found nothing to forward from."""
        self.false_dependencies += 1
        counter = self._counters.get(pc, 0)
        if counter > 0:
            self._counters[pc] = counter - 1
