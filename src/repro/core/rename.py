"""Register renaming and the physical register file.

The rename stage maps architectural to physical registers so that the
load-pair table — which the paper indexes by *physical* register ids
(§5.1) — can be modeled faithfully, and so that register dataflow in the
issue stage is unambiguous when multiple dynamic instances of the same
static instruction are in flight.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, FrozenSet, List, Optional, Tuple

__all__ = ["RegisterFile", "RenameResult"]

EMPTY_TAINT: FrozenSet[int] = frozenset()


class RenameResult:
    """Outcome of renaming one micro-op."""

    __slots__ = ("src_phys", "dest_phys", "freed_on_commit")

    def __init__(
        self,
        src_phys: Tuple[int, ...],
        dest_phys: Optional[int],
        freed_on_commit: Optional[int],
    ) -> None:
        self.src_phys = src_phys
        self.dest_phys = dest_phys
        self.freed_on_commit = freed_on_commit


class RegisterFile:
    """Map table + free list + per-physical-register state.

    Per-physical-register state: a ready bit (value has been broadcast) and
    a taint root-set (used by STT; empty elsewhere).
    """

    def __init__(self, arch_regs: int, phys_regs: int) -> None:
        if phys_regs <= arch_regs:
            raise ValueError("need more physical than architectural registers")
        self.arch_regs = arch_regs
        self.phys_regs = phys_regs
        self._map: List[int] = list(range(arch_regs))
        self._free: Deque[int] = collections.deque(range(arch_regs, phys_regs))
        self.ready: List[bool] = [True] * arch_regs + [False] * (
            phys_regs - arch_regs
        )
        self.taint: List[FrozenSet[int]] = [EMPTY_TAINT] * phys_regs
        #: Consumers waiting on a physical register, filled by the pipeline.
        self.waiters: Dict[int, list] = {}

    def can_rename(self, needs_dest: bool) -> bool:
        """Is a free physical register available if one is needed?"""
        return not needs_dest or bool(self._free)

    def rename(
        self, srcs: Tuple[int, ...], dest: Optional[int]
    ) -> RenameResult:
        """Rename one micro-op; the caller must have checked capacity."""
        src_phys = tuple(self._map[a] for a in srcs)
        dest_phys = None
        freed = None
        if dest is not None:
            freed = self._map[dest]
            dest_phys = self._free.popleft()
            self._map[dest] = dest_phys
            self.ready[dest_phys] = False
            self.taint[dest_phys] = EMPTY_TAINT
        return RenameResult(src_phys, dest_phys, freed)

    def release(self, phys: int) -> None:
        """Return a physical register to the free list (at commit)."""
        self._free.append(phys)

    def broadcast(self, phys: int, taint: FrozenSet[int] = EMPTY_TAINT) -> list:
        """Mark a register ready; returns (and clears) its waiter list."""
        self.ready[phys] = True
        self.taint[phys] = taint
        return self.waiters.pop(phys, [])

    def union_taint(self, phys_regs: Tuple[int, ...]) -> FrozenSet[int]:
        """Union of taint root-sets over ``phys_regs``."""
        result = EMPTY_TAINT
        for phys in phys_regs:
            if self.taint[phys]:
                result = result | self.taint[phys]
        return result

    @property
    def free_count(self) -> int:
        return len(self._free)
