"""Out-of-order core model: rename, shadows, LSQ, MDP, pipeline."""

from repro.core.lsq import LoadEntry, LoadStoreUnit, StoreEntry
from repro.core.mdp import MemoryDependencePredictor
from repro.core.pipeline import Core, Observation
from repro.core.rename import RegisterFile, RenameResult
from repro.core.shadows import NO_SHADOW, ShadowTracker

__all__ = [
    "Core",
    "LoadEntry",
    "LoadStoreUnit",
    "MemoryDependencePredictor",
    "NO_SHADOW",
    "Observation",
    "RegisterFile",
    "RenameResult",
    "ShadowTracker",
    "StoreEntry",
]
