"""Speculation-shadow tracking.

Following Ghost Loads / Delay-on-Miss terminology (which the paper adopts,
§6.1), *shadow-casting* instructions make all younger instructions
speculative until they resolve.  We track control shadows (branches, from
dispatch to resolution) and store shadows (stores, from dispatch to address
resolution) — the paper's evaluated speculation model.

An instruction is speculative iff an unresolved shadow caster older than it
exists, i.e. iff its sequence number is greater than the *visibility
frontier* (the oldest unresolved caster's sequence number).
"""

from __future__ import annotations

import heapq
from typing import Set

__all__ = ["ShadowTracker", "NO_SHADOW"]

#: Frontier value when no shadow is active (everything non-speculative).
NO_SHADOW = float("inf")


class ShadowTracker:
    """Tracks active shadow casters and the visibility frontier."""

    def __init__(self) -> None:
        self._active: "list[int]" = []  # min-heap of unresolved caster seqs
        self._resolved: Set[int] = set()

    def cast(self, seq: int) -> None:
        """Register a shadow caster at dispatch."""
        heapq.heappush(self._active, seq)

    def resolve(self, seq: int) -> None:
        """Mark a caster resolved (idempotent)."""
        self._resolved.add(seq)
        self._drain()

    def _drain(self) -> None:
        while self._active and self._active[0] in self._resolved:
            self._resolved.discard(heapq.heappop(self._active))

    @property
    def frontier(self) -> float:
        """Sequence number of the oldest unresolved caster (inf if none).

        Every instruction with ``seq < frontier`` is non-speculative; the
        frontier only ever advances.
        """
        return self._active[0] if self._active else NO_SHADOW

    def is_speculative(self, seq: int) -> bool:
        """True if an unresolved shadow covers instruction ``seq``."""
        return seq > self.frontier

    def __len__(self) -> int:
        return len(self._active)
