"""The optimized cycle loop (hot-path backend ``vector``).

:class:`FastCore` is a drop-in subclass of
:class:`repro.core.pipeline.Core` that reimplements every hot phase of
the cycle loop for throughput.  It is **observably identical** to the
reference loop — the same cycle counts and the same
:class:`~repro.common.stats.StatSet`, field for field, on every config —
which ``tests/core/test_hotpath_parity.py`` enforces against both the
checked-in golden (``tests/data/pipeline_stats_golden.json``) and live
A/B runs.  Anything that would change observable behavior belongs in
the reference loop first, with a freshly captured golden.

What is different, and why it cannot change results:

* **No telemetry.**  :class:`~repro.sim.system.System` only instantiates
  FastCore when tracing is disabled; every ``telemetry.enabled`` branch
  the reference loop carries is simply gone.  Constructing a FastCore
  with a live collector raises.
* **Phase early-outs.**  ``step`` skips a phase when its inputs are
  empty (no blocked branches, empty store buffer, ROB head incomplete,
  empty ready queue).  The reference phases return immediately in those
  states; skipping the call is the same.
* **Closure-free events.**  Completions ride
  :meth:`~repro.common.events.EventQueue.push` entries ``(fn, inst)``
  instead of per-event lambdas.  The run loops never tick past a due
  event, so the due cycle handed to the callback equals the service
  cycle the legacy closures received.
* **Operand-taint memo.**  A waiting instruction's source taints cannot
  change between issue attempts (its physical registers are not
  reallocated until after it commits), so the union is computed once
  and cached on the instruction (``_Inst.taint_cache``) instead of
  per attempt.
* **Policy-hook devirtualization.**  Hooks a policy does not override
  (``on_commit``, ``word_is_public``, ``on_load_value``, the issue
  gates) are skipped entirely; the base implementations are no-ops or
  constants, precomputed here.  ``on_visibility`` is only called when
  the frontier actually moved — the STT-family implementation is
  idempotent at a fixed frontier, and new taint roots are always ahead
  of it.
* **Sorted-ready maintenance.**  The reference loop re-sorts the ready
  queue every cycle; FastCore keeps it sorted and re-sorts (via
  :func:`repro.core.hotpath.sort_ready`, numpy argsort above its
  threshold) only after out-of-order wakeups append to it.  Sequence
  numbers are unique, so sorting is a permutation with a single fixed
  result — resort timing cannot change the order issued.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import FrozenSet, List, Optional

from repro.common.types import MemPrediction, OpClass, SpeculationModel
from repro.core.hotpath import count_unready, sort_ready
from repro.core.pipeline import Core, Observation, _Inst
from repro.core.shadows import NO_SHADOW
from repro.memory.packet import MemPacket, PacketKind
from repro.security.policy import EMPTY_TAINT, SecurityPolicy
from repro.security.stt import SttPolicy

__all__ = ["FastCore"]

_ALU = OpClass.ALU
_MUL = OpClass.MUL
_DIV = OpClass.DIV
_FP = OpClass.FP
_LOAD = OpClass.LOAD
_STORE = OpClass.STORE
_BRANCH = OpClass.BRANCH

_READ_REQ = PacketKind.READ_REQ
_WRITE_REQ = PacketKind.WRITE_REQ
_INVISIBLE_REQ = PacketKind.INVISIBLE_REQ

_STF = MemPrediction.STF


class FastCore(Core):
    """Throughput-optimized core; bit-identical to the reference loop."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.telemetry.enabled:
            raise ValueError(
                "FastCore carries no telemetry instrumentation; "
                "traced runs must use the reference Core"
            )
        core = self.params.core
        self._decode_width = core.decode_width
        self._issue_width = core.issue_width
        self._commit_width = core.commit_width
        self._rob_entries = core.rob_entries
        self._iq_entries = core.iq_entries
        self._mispredict_penalty = core.mispredict_penalty
        self._sb_drain = core.sb_drain_per_cycle
        self._lat_alu = core.alu_latency
        self._lat_mul = core.mul_latency
        self._lat_div = core.div_latency
        self._lat_fp = core.fp_latency
        self._lat_branch = core.branch_latency
        self._trace_len = len(self.trace)
        self._lpt_sources = self.params.lpt_sources
        model = self.params.speculation_model
        self._futuristic = model is SpeculationModel.FUTURISTIC
        self._store_shadows = model is not SpeculationModel.CONTROL_ONLY
        self._mdp_on = self.params.memory_dependence_speculation

        # Which policy hooks are actually overridden; base-class hooks
        # are no-ops/constants and their call sites collapse.
        policy = self.policy
        cls = type(policy)
        base = SecurityPolicy
        self._blocks_loads = cls.load_issue_blocked is not base.load_issue_blocked
        self._blocks_stores = (
            cls.store_issue_blocked is not base.store_issue_blocked
        )
        self._blocks_branches = (
            cls.branch_resolution_blocked is not base.branch_resolution_blocked
        )
        self._gates_on_miss = policy.gates_on_miss
        self._invisible = policy.invisible_speculation
        self._use_recon = policy.use_recon
        self._has_word_public = cls.word_is_public is not base.word_is_public
        self._has_on_load_value = cls.on_load_value is not base.on_load_value
        self._has_on_commit = cls.on_commit is not base.on_commit
        self._has_on_visibility = cls.on_visibility is not base.on_visibility
        if cls.propagate_taint is base.propagate_taint:
            self._prop_mode = 0  # always EMPTY_TAINT
        elif cls.propagate_taint is SttPolicy.propagate_taint:
            self._prop_mode = 1  # identity (operand taint flows through)
        else:  # pragma: no cover - no third implementation exists today
            self._prop_mode = 2  # call the hook

        self._ready_dirty = False
        self._warm_pending = self.warmup_uops > 0
        self._measure_pending = self._measure_at is not None
        self._last_frontier: Optional[float] = None

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000):
        step = self.step
        next_wake = self.next_wake
        while not self.done:
            cycle = self.cycle
            if cycle >= max_cycles:
                raise self.hang_error(max_cycles)
            if step(cycle) or self.done:
                self.cycle = cycle + 1
            else:
                self.cycle = next_wake(cycle)
        return self.stats

    def next_wake(self, cycle: int) -> int:
        heap = self.events._heap
        best = -1
        if heap:
            pending = heap[0][0]
            if pending > cycle:
                best = pending
        if self._fetch_blocked_by is None:
            resume = self._fetch_resume_cycle
            if resume > cycle and (best < 0 or resume < best):
                best = resume
        floor = cycle + 1
        return best if best > floor else floor

    def step(self, cycle: int) -> bool:
        if self.done:
            return False
        activity = self.events.service(cycle)
        if self._blocked_branches:
            if self._resolve_blocked_branches(cycle):
                activity = True
                self.events.epoch += 1  # resolutions broadcast registers

        # -- visibility (reference: _advance_visibility, every cycle) --
        active = self.shadows._active
        frontier = active[0] if active else NO_SHADOW
        if frontier != self._last_frontier:
            self._last_frontier = frontier
            self.events.epoch += 1  # shadow frontier moved: re-poll blocked
            if self._has_on_visibility:
                # Idempotent at a fixed frontier, so calling only on
                # movement matches the reference's every-cycle call.
                self.policy.on_visibility(frontier)
        deferred = self._deferred
        while deferred and deferred[0][0] < frontier:
            _, inst = heappop(deferred)
            self._broadcast(inst, EMPTY_TAINT)
        exposes = self._pending_exposes
        if exposes and exposes[0][0] < frontier:
            submit = self.hierarchy.submit
            core_id = self.core_id
            while exposes and exposes[0][0] < frontier:
                # Expose: install the line for real, off the critical path.
                _, addr = heappop(exposes)
                submit(MemPacket.request(_READ_REQ, core_id, addr, cycle))

        lsq = self.lsq
        sb = lsq._sb
        if sb:
            submit = self.hierarchy.submit
            core_id = self.core_id
            for _ in range(self._sb_drain):
                if not sb:
                    break
                entry = sb.popleft()
                submit(MemPacket.request(_WRITE_REQ, core_id, entry.addr, cycle))
            activity = True
            self.events.epoch += 1  # stores performed: cache state changed

        rob = self._rob
        head = self._rob_head
        if head < len(rob) and rob[head].completed:
            if self._commit(cycle) > 0:
                activity = True
                self.events.epoch += 1  # commits move reveal/LSQ state
        if self._ready:
            activity |= self._issue(cycle) > 0
        if (
            self._fetch_idx < self._trace_len
            and self._fetch_blocked_by is None
            and cycle >= self._fetch_resume_cycle
        ):
            activity |= self._dispatch(cycle) > 0
        if (
            self._fetch_idx >= self._trace_len
            and self._rob_head >= len(self._rob)
            and not sb
        ):
            self.done = True
            self.stats.cycles = cycle + 1
            if self.lpt is not None:
                self.stats.lpt_conflicts = self.lpt.conflicts
        return bool(activity)

    # ------------------------------------------------------------------
    # completion events (scheduled closure-free via EventQueue.push)
    # ------------------------------------------------------------------
    def _complete(self, inst: _Inst, cycle: int) -> None:
        uop = inst.uop
        oc = uop.opclass
        if oc is _STORE:
            violated = self.lsq.resolve_store(inst.seq)
            if violated:
                stats = self.stats
                mdp = self.mdp
                bound = cycle + self._mispredict_penalty
                for load in violated:
                    stats.mem_order_violations += 1
                    mdp.train_violation(load.pc)
                if bound > self._fetch_resume_cycle:
                    self._fetch_resume_cycle = bound
            if self._store_shadows:
                self.shadows.resolve(inst.seq)
            inst.agen_done = True
            if inst.data_pending == 0:
                inst.completed = True
        elif oc is _BRANCH:
            if self._blocks_branches and self.policy.branch_resolution_blocked(
                inst.captured_taint
            ):
                self._blocked_branches.append(inst)
            else:
                self._resolve_branch(inst, cycle)
        else:
            mode = self._prop_mode
            if mode == 0:
                taint = EMPTY_TAINT
            elif mode == 1:
                taint = inst.captured_taint
            else:  # pragma: no cover - no third implementation exists today
                taint = self.policy.propagate_taint(inst.captured_taint)
            self._broadcast(inst, taint)
            inst.completed = True

    def _resolve_branch(self, inst: _Inst, cycle: int) -> None:
        self.shadows.resolve(inst.seq)
        inst.completed = True
        if inst.uop.mispredict:
            self.stats.mispredicted_branches += 1
            if self._fetch_blocked_by == inst.seq:
                self._fetch_blocked_by = None
                resume = cycle + self._mispredict_penalty
                if resume > self._fetch_resume_cycle:
                    self._fetch_resume_cycle = resume

    def _load_return(self, inst: _Inst, cycle: int) -> None:
        shadows = self.shadows
        if self._futuristic:
            shadows.resolve(inst.seq)
        active = shadows._active
        speculative = inst.seq > (active[0] if active else NO_SHADOW)
        use_recon = self._use_recon
        went = inst.went_to_memory
        revealed = inst.mem_revealed and use_recon
        if not revealed and went and self._has_word_public:
            revealed = self.policy.word_is_public(inst.uop.addr)
        if speculative and use_recon and went:
            if revealed:
                self.stats.reveal_hits += 1
            else:
                self.stats.reveal_misses += 1
        if self._has_on_load_value:
            broadcast_now, taint = self.policy.on_load_value(
                inst.seq, speculative, revealed, inst.fwd_taint
            )
        else:
            broadcast_now, taint = True, EMPTY_TAINT
        inst.completed = True
        if broadcast_now:
            self._broadcast(inst, taint)
        else:
            heappush(self._deferred, (inst.seq, inst))

    def _broadcast(self, inst: _Inst, taint: FrozenSet[int]) -> None:
        dest = inst.dest_phys
        if dest is None:
            return
        regfile = self.regfile
        regfile.ready[dest] = True
        regfile.taint[dest] = taint
        waiters = regfile.waiters.pop(dest, None)
        if waiters:
            ready_q = self._ready
            woke = False
            for waiter in waiters:
                waiter.pending -= 1
                if waiter.pending == 0:
                    ready_q.append(waiter)
                    woke = True
            if woke:
                self._ready_dirty = True
        data_waiters = self._data_waiters.pop(dest, None)
        if data_waiters:
            for waiter in data_waiters:
                waiter.data_pending -= 1
                if waiter.data_pending == 0:
                    self._store_data_ready(waiter)

    def _store_data_ready(self, inst: _Inst) -> None:
        taints = self.regfile.taint
        taint = EMPTY_TAINT
        for phys in inst.data_phys:
            t = taints[phys]
            if t:
                taint = taint | t
        self.lsq.set_store_data(inst.seq, taint)
        if inst.agen_done:
            inst.completed = True

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------
    def _commit(self, cycle: int) -> int:
        rob = self._rob
        head = self._rob_head
        rob_len = len(rob)
        width = self._commit_width
        committed = 0
        stats = self.stats
        lsq = self.lsq
        sb = lsq._sb
        sq_entries = lsq.sq_entries
        lpt = self.lpt
        policy = self.policy
        has_on_commit = self._has_on_commit
        release = self.regfile.release
        while committed < width and head < rob_len:
            inst = rob[head]
            if not inst.completed:
                break
            uop = inst.uop
            oc = uop.opclass
            if oc is _STORE:
                if len(sb) >= sq_entries:
                    break
                lsq.commit_store(inst.seq)
                stats.committed_stores += 1
                if lpt is not None:
                    lpt.on_other_commit(inst.dest_phys)
            elif oc is _LOAD:
                lsq.commit_load(inst.seq)
                stats.committed_loads += 1
                if lpt is not None:
                    self._lpt_load_commit(inst, cycle)
            else:
                if oc is _BRANCH:
                    stats.committed_branches += 1
                if lpt is not None:
                    lpt.on_other_commit(inst.dest_phys)
            if has_on_commit:
                policy.on_commit(uop)
            if inst.freed_on_commit is not None:
                release(inst.freed_on_commit)
            rob[head] = None  # type: ignore[call-overload]
            head += 1
            stats.committed_uops += 1
            committed += 1
            if self._warm_pending and stats.committed_uops >= self.warmup_uops:
                self._warm_pending = False
                stats.cycles = cycle
                self._warm_snapshot = stats.snapshot()
            if (
                self._measure_pending
                and stats.committed_uops >= self._measure_at
            ):
                self._measure_pending = False
                stats.cycles = cycle
                if lpt is not None:
                    stats.lpt_conflicts = lpt.conflicts
                self._measure_snapshot = stats.snapshot()
                # Stop the core: everything past the window is cool-down
                # trace kept only so fetch never starved mid-window.
                self.done = True
                break
        self._rob_head = head
        if head > 4096 and head == rob_len:
            del rob[:head]
            self._rob_head = 0
        return committed

    def _lpt_load_commit(self, inst: _Inst, cycle: int) -> None:
        lpt = self.lpt
        reveals = lpt.on_load_commit_multi(
            inst.dest_phys, inst.src_phys[: self._lpt_sources], inst.uop.addr or 0
        )
        if reveals:
            self.stats.load_pairs_detected += len(reveals)
            reveal_commit = self.hierarchy.reveal_commit
            for addr in reveals:
                reveal_commit(self.core_id, addr, cycle)

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------
    def _issue(self, cycle: int) -> int:
        ready = self._ready
        if not ready:
            return 0
        if self._ready_dirty:
            ready = sort_ready(ready)
            self._ready = ready
            self._ready_dirty = False
        issued = 0
        kept: List[_Inst] = []
        kept_append = kept.append
        width = self._issue_width
        events = self.events
        events_push = events.push
        complete = self._complete
        taints = self.regfile.taint
        stats = self.stats
        lat_alu = self._lat_alu
        lat_branch = self._lat_branch
        n = len(ready)
        index = 0
        while index < n:
            inst = ready[index]
            if issued >= width:
                kept.extend(ready[index:])
                break
            uop = inst.uop
            oc = uop.opclass
            if oc is _LOAD:
                # Epoch memo: a blocked verdict only changes when state
                # it reads changes, and every such change bumps the
                # epoch — skip the (side-effect-free) re-poll until then.
                if inst.blocked_epoch == events.epoch:
                    kept_append(inst)
                    index += 1
                    continue
                ok = self._try_issue_load(inst, cycle)
            elif oc is _STORE:
                if inst.blocked_epoch == events.epoch:
                    kept_append(inst)
                    index += 1
                    continue
                ok = self._try_issue_store(inst, cycle)
            else:
                taint = EMPTY_TAINT
                for phys in inst.src_phys:
                    t = taints[phys]
                    if t:
                        taint = taint | t
                inst.captured_taint = taint
                if oc is _ALU:
                    lat = lat_alu
                elif oc is _BRANCH:
                    lat = lat_branch
                elif oc is _MUL:
                    lat = self._lat_mul
                elif oc is _FP:
                    lat = self._lat_fp
                elif oc is _DIV:
                    lat = self._lat_div
                else:  # NOP
                    lat = 1
                events_push(cycle + lat, complete, inst)
                ok = True
            if ok:
                issued += 1
            else:
                # reference: _note_blocked
                if inst.first_blocked < 0:
                    inst.first_blocked = cycle
                if not inst.counted_delayed and oc is _LOAD:
                    inst.counted_delayed = True
                    stats.delayed_loads += 1
                inst.blocked_epoch = events.epoch
                kept_append(inst)
            index += 1
        self._iq_count -= issued
        self._ready = kept
        return issued

    def _try_issue_store(self, inst: _Inst, cycle: int) -> bool:
        taint = inst.taint_cache
        if taint is None:
            taints = self.regfile.taint
            taint = EMPTY_TAINT
            for phys in inst.src_phys:
                t = taints[phys]
                if t:
                    taint = taint | t
            inst.taint_cache = taint
        if self._blocks_stores and self.policy.store_issue_blocked(taint):
            return False
        inst.captured_taint = taint
        if inst.first_blocked >= 0:
            self.stats.delay_cycles += cycle - inst.first_blocked
        self.events.push(cycle + self._lat_alu, self._complete, inst)
        return True

    def _try_issue_load(self, inst: _Inst, cycle: int) -> bool:
        taint = inst.taint_cache
        if taint is None:
            taints = self.regfile.taint
            taint = EMPTY_TAINT
            for phys in inst.src_phys:
                t = taints[phys]
                if t:
                    taint = taint | t
            inst.taint_cache = taint
        policy = self.policy
        if self._blocks_loads and policy.load_issue_blocked(taint):
            return False
        uop = inst.uop
        addr = uop.addr
        shadows = self.shadows
        if self._gates_on_miss:
            l1_hit, revealed = self.hierarchy.peek_access(self.core_id, addr)
            if not policy.may_issue_load(
                shadows.is_speculative(inst.seq), l1_hit, revealed
            ):
                return False
        invisible = False
        if self._invisible:
            _, revealed = self.hierarchy.peek_access(self.core_id, addr)
            invisible = policy.load_must_be_invisible(
                shadows.is_speculative(inst.seq), revealed
            )
        lsq = self.lsq
        forward = lsq.forwarding_store(inst.seq, addr)
        if forward is not None and not forward.data_ready:
            return False  # matching older store exists but has no data yet
        unresolved = lsq.has_older_unresolved_store(inst.seq)
        if self._mdp_on:
            prediction = uop.forced_prediction or self.mdp.predict(uop.pc)
            if prediction is _STF:
                if unresolved:
                    return False  # wait for older store addresses
                if forward is None:
                    self.mdp.train_no_dependence(uop.pc)
            # MEM prediction (or STF that found nothing): proceed; a match
            # with a resolved store always forwards.
        else:
            if unresolved:
                return False
        inst.captured_taint = taint
        if inst.first_blocked >= 0:
            self.stats.delay_cycles += cycle - inst.first_blocked
        events_push = self.events.push
        if forward is not None:
            inst.fwd_taint = forward.taint
            inst.mem_revealed = False  # forwarded data is always concealed
            self.stats.store_forwards += 1
            events_push(cycle + 2, self._load_return, inst)
        elif invisible:
            access_cycle = cycle + 1
            self.events.epoch += 1  # MDP may train on this issue
            pkt = self.hierarchy.submit(
                MemPacket.request(
                    _INVISIBLE_REQ, self.core_id, addr, access_cycle
                )
            )
            inst.mem_revealed = False
            entry = lsq._lq.get(inst.seq)
            if entry is not None:
                entry.went_to_memory = True
            heappush(self._pending_exposes, (inst.seq, addr))
            events_push(pkt.issued_at + pkt.latency, self._load_return, inst)
        else:
            access_cycle = cycle + 1  # address generation
            self.events.epoch += 1  # fill/evict can change later DoM peeks
            pkt = self.hierarchy.submit(
                MemPacket.request(_READ_REQ, self.core_id, addr, access_cycle)
            )
            inst.mem_revealed = pkt.revealed
            inst.went_to_memory = True
            entry = lsq._lq.get(inst.seq)
            if entry is not None:
                entry.went_to_memory = True
            self.observations.append(
                Observation(
                    inst.seq,
                    uop.pc,
                    addr,
                    access_cycle,
                    shadows.is_speculative(inst.seq),
                )
            )
            events_push(pkt.issued_at + pkt.latency, self._load_return, inst)
        return True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, cycle: int) -> int:
        if self._fetch_blocked_by is not None or cycle < self._fetch_resume_cycle:
            return 0
        trace = self.trace
        idx = self._fetch_idx
        n = self._trace_len
        decode_width = self._decode_width
        rob_entries = self._rob_entries
        iq_entries = self._iq_entries
        rob = self._rob
        rob_append = rob.append
        rob_occ = len(rob) - self._rob_head
        iq = self._iq_count
        regfile = self.regfile
        rmap = regfile._map
        free = regfile._free
        ready = regfile.ready
        rtaint = regfile.taint
        waiters = regfile.waiters
        lsq = self.lsq
        lq = lsq._lq
        lq_entries = lsq.lq_entries
        sq = lsq._sq
        sq_entries = lsq.sq_entries
        ready_q = self._ready
        data_waiters = self._data_waiters
        shadow_heap = self.shadows._active
        futuristic = self._futuristic
        store_shadows = self._store_shadows
        dispatched = 0
        woke = False
        blocked_by = None
        while dispatched < decode_width and idx < n:
            uop = trace[idx]
            oc = uop.opclass
            if rob_occ >= rob_entries or iq >= iq_entries:
                break
            if oc is _LOAD:
                if len(lq) >= lq_entries:
                    break
            elif oc is _STORE:
                if len(sq) >= sq_entries:
                    break
            dest = uop.dest
            if dest is not None and not free:
                break
            seq = uop.seq
            inst = _Inst(seq, uop)
            srcs = uop.srcs
            if srcs:
                inst.src_phys = src_phys = tuple([rmap[a] for a in srcs])
            else:
                src_phys = ()
            data_srcs = uop.data_srcs
            if data_srcs:
                inst.data_phys = data_phys = tuple(
                    [rmap[a] for a in data_srcs]
                )
            else:
                data_phys = ()
            if dest is not None:
                inst.freed_on_commit = rmap[dest]
                dest_phys = free.popleft()
                rmap[dest] = dest_phys
                ready[dest_phys] = False
                rtaint[dest_phys] = EMPTY_TAINT
                inst.dest_phys = dest_phys
            rob_append(inst)
            rob_occ += 1
            iq += 1
            if oc is _LOAD:
                lsq.add_load(seq, uop.pc, uop.addr)
                if futuristic:
                    heappush(shadow_heap, seq)
            elif oc is _STORE:
                lsq.add_store(seq, uop.pc, uop.addr)
                if store_shadows:
                    heappush(shadow_heap, seq)
            elif oc is _BRANCH:
                heappush(shadow_heap, seq)
                if uop.mispredict:
                    blocked_by = seq
            if len(src_phys) > 3:  # wide uop: vectorized scoreboard scan
                pending = count_unready(ready, src_phys)
            else:
                pending = 0
                for phys in src_phys:
                    if not ready[phys]:
                        pending += 1
            inst.pending = pending
            if pending == 0:
                ready_q.append(inst)
                woke = True
            else:
                for phys in src_phys:
                    if not ready[phys]:
                        waiting = waiters.get(phys)
                        if waiting is None:
                            waiters[phys] = [inst]
                        else:
                            waiting.append(inst)
            if oc is _STORE:
                data_pending = 0
                for phys in data_phys:
                    if not ready[phys]:
                        data_pending += 1
                inst.data_pending = data_pending
                if data_pending == 0:
                    self._store_data_ready(inst)
                else:
                    for phys in data_phys:
                        if not ready[phys]:
                            waiting = data_waiters.get(phys)
                            if waiting is None:
                                data_waiters[phys] = [inst]
                            else:
                                waiting.append(inst)
            idx += 1
            dispatched += 1
            if blocked_by is not None:
                break  # mispredicted branch: stop supplying younger uops
        self._fetch_idx = idx
        self._iq_count = iq
        if blocked_by is not None:
            self._fetch_blocked_by = blocked_by
        if woke:
            self._ready_dirty = True
        return dispatched
