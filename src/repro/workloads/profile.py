"""Benchmark profile descriptions.

A :class:`BenchmarkProfile` parameterizes the synthetic workload generator
so that each named benchmark reproduces the *qualitative* behaviour the
paper reports for its real counterpart (leakage composition in Fig. 4,
overhead and recovery in Figs. 5-9): how much pointer dereferencing it
does, how far apart the two loads of a pair sit, how large its working
set is, how branchy it is, and how much independent compute can hide
delayed loads.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Tuple

__all__ = ["BenchmarkProfile", "KERNEL_NAMES"]

#: Kernel mix keys accepted in ``kernel_weights``.
KERNEL_NAMES: Tuple[str, ...] = (
    "pointer_chase",
    "indexed",
    "tree",
    "hash",
    "stream",
    "stencil",
    "compute",
    "branchy",
)


@dataclasses.dataclass(frozen=True)
class BenchmarkProfile:
    """Tuning knobs for one synthetic benchmark.

    Attributes:
        name: benchmark name (e.g. ``"mcf"``).
        suite: ``"spec2017"``, ``"spec2006"``, or ``"parsec"``.
        kernel_weights: relative frequency of each kernel chunk type.
        seed: RNG seed; layout and op stream are fully deterministic.
        chains: interleaved pointer chains (pair distance — drives LPT
            sensitivity, Fig. 11).
        chain_nodes: nodes per chain (pointer working set & reuse period).
        node_stride_bytes: spacing of chain node slots.  16 packs four
            nodes per cache line (locality-friendly); 64+ gives every node
            its own line, producing miss-heavy chases whose reveal bits
            live mostly in the L2/LLC — the regime where ReCon's
            directory-level tracking matters (Fig. 10).
        array_words: size of the index/target arrays (indexed/hash kernels).
        chase_steps: chain steps per pointer-chase chunk.
        mispredict_rate: branch mispredict probability.
        value_branch_rate: probability a chase/tree step branches on a
            loaded value (keeps speculation shadows long under STT/NDA).
        data_branch_fraction: of those branches, the fraction that test a
            plain *data* word (never dereferenced, so never revealed —
            ReCon cannot lift them) rather than a pointer word (revealed
            on reuse).  High values model benchmarks whose ReCon recovery
            is small despite many tainted loads (deepsjeng, cactuBSSN).
        indirect_fraction: probability a dereference goes through an ALU
            copy, breaking the *direct* pair (DIFT-only leakage, Fig. 4).
        store_rate: probability a step rewrites the pointer it followed
            (conceals it, limiting ReCon reuse).
        compute_depth: dependent ALU/FP ops chained after loaded values.
        independent_compute: independent ops per chunk that can hide
            delayed loads (taint criticality — ``nab`` vs ``leela``).
        shared_fraction: (parallel only) probability a chunk works on the
            process-shared region instead of thread-private data.
        lock_rate: (parallel only) probability a chunk performs a lock
            acquire/release on a shared line.
    """

    name: str
    suite: str
    kernel_weights: Mapping[str, float]
    seed: int = 1
    chains: int = 4
    chain_nodes: int = 64
    node_stride_bytes: int = 16
    array_words: int = 512
    chase_steps: int = 6
    mispredict_rate: float = 0.04
    value_branch_rate: float = 0.6
    data_branch_fraction: float = 0.2
    #: ALU ops (a compare chain) between a loaded value and the branch
    #: that tests it.  Differentiates NDA from STT: STT computes the
    #: condition under speculation and resolves the moment the root turns
    #: safe, while NDA starts computing only at the visibility point and
    #: pays the chain latency on top of every epoch.
    branch_compute_depth: int = 1
    indirect_fraction: float = 0.10
    store_rate: float = 0.02
    compute_depth: int = 2
    independent_compute: int = 0
    shared_fraction: float = 0.0
    lock_rate: float = 0.0

    def __post_init__(self) -> None:
        unknown = set(self.kernel_weights) - set(KERNEL_NAMES)
        if unknown:
            raise ValueError(f"unknown kernels in profile {self.name}: {unknown}")
        if not self.kernel_weights:
            raise ValueError(f"profile {self.name} has an empty kernel mix")
        if self.chains <= 0 or self.chain_nodes <= 1:
            raise ValueError(f"profile {self.name}: invalid chain geometry")

    @property
    def label(self) -> str:
        return f"{self.suite}/{self.name}"
