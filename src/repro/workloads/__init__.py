"""Synthetic workload suites standing in for SPEC2017/SPEC2006/PARSEC."""

from repro.workloads.kernels import (
    WorkloadBuilder,
    build_parallel_traces,
    build_trace,
)
from repro.workloads.profile import KERNEL_NAMES, BenchmarkProfile
from repro.workloads.suites import (
    all_benchmarks,
    get_benchmark,
    parsec_suite,
    spec2006_suite,
    spec2017_suite,
)

__all__ = [
    "BenchmarkProfile",
    "KERNEL_NAMES",
    "WorkloadBuilder",
    "all_benchmarks",
    "build_parallel_traces",
    "build_trace",
    "get_benchmark",
    "parsec_suite",
    "spec2006_suite",
    "spec2017_suite",
]
