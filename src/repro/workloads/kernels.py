"""Synthetic workload generator.

The generator is an *honest* program synthesizer: it lays out real pointer
structures (linked lists, trees, index arrays) in the
:class:`~repro.isa.program.Program` memory image and emits micro-ops that
actually walk them — so a load pair in the generated trace is a genuine
dereference of a genuine pointer, both for the pipeline and for the
Clueless analyzer.

Memory map (word-aligned, per thread unless shared):

========================  =======================================
``0x0100_0000``           pointer-chase chains (nodes: next, value)
``0x0200_0000``           tree nodes (left, right, value, pad)
``0x0300_0000``           index array A (holds scaled offsets)
``0x0400_0000``           target array B (indexed by A's contents)
``0x0500_0000``           hash buckets (pointers to chain nodes)
``0x0600_0000``           streaming / stencil arrays
``0x0700_0000``           shared region (parallel workloads)
``0x0700_0000 + 0x80*i``  lock words
========================  =======================================
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.isa.program import Program
from repro.workloads.profile import BenchmarkProfile

__all__ = ["WorkloadBuilder", "build_trace", "build_parallel_traces"]

_CHASE_BASE = 0x0100_0000
_TREE_BASE = 0x0200_0000
_INDEX_BASE = 0x0300_0000
_TARGET_BASE = 0x0400_0000
_HASH_BASE = 0x0500_0000
_STREAM_BASE = 0x0600_0000
_DESC_BASE = 0x0480_0000
_SHARED_BASE = 0x0700_0000
_THREAD_STRIDE = 0x1000_0000

_NODE_BYTES = 16  # next (word 0), value (word 1)
_TREE_NODE_BYTES = 32  # left, right, value, pad


class _Chain:
    """A cyclic singly linked list being walked by the generator."""

    __slots__ = ("nodes", "cursor")

    def __init__(self, nodes: List[int]) -> None:
        self.nodes = nodes
        self.cursor = nodes[0]


class WorkloadBuilder:
    """Builds one thread's trace for a :class:`BenchmarkProfile`."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        thread_id: int = 0,
        num_threads: int = 1,
    ) -> None:
        self.profile = profile
        self.thread_id = thread_id
        self.num_threads = num_threads
        self.prog = Program()
        # Layout must be identical across threads of one workload, so it is
        # derived from the profile seed alone; the op stream differs per
        # thread.
        self._layout_rng = random.Random(profile.seed)
        self._rng = random.Random(profile.seed * 1009 + thread_id * 7919)
        fully_shared = profile.shared_fraction >= 1.0
        base = _SHARED_BASE if fully_shared else thread_id * _THREAD_STRIDE
        self._chains = self._build_chains(base + _CHASE_BASE)
        self._tree_nodes = self._build_tree(base + _TREE_BASE)
        self._build_arrays(base, nodes=self._all_nodes(self._chains))
        self._base = base
        self._shared_chains: Optional[List[_Chain]] = None
        if fully_shared:
            self._shared_chains = self._chains
        elif profile.shared_fraction > 0.0:
            self._shared_chains = self._build_chains(
                _SHARED_BASE + _CHASE_BASE, rng=random.Random(profile.seed)
            )
            self._build_arrays(
                _SHARED_BASE,
                rng=random.Random(profile.seed + 5),
                nodes=self._all_nodes(self._shared_chains),
            )
        self._stream_cursor = 0
        self._index_cursor = 0
        self._kernels = {
            "pointer_chase": self._emit_pointer_chase,
            "indexed": self._emit_indexed,
            "tree": self._emit_tree,
            "hash": self._emit_hash,
            "stream": self._emit_stream,
            "stencil": self._emit_stencil,
            "compute": self._emit_compute,
            "branchy": self._emit_branchy,
        }
        self._kernel_names = list(profile.kernel_weights.keys())
        self._kernel_cum = self._cumulative_weights()

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def _build_chains(
        self, region: int, rng: Optional[random.Random] = None
    ) -> List[_Chain]:
        rng = rng or self._layout_rng
        profile = self.profile
        chains = []
        stride = max(_NODE_BYTES, profile.node_stride_bytes)
        slots = list(range(profile.chains * profile.chain_nodes))
        rng.shuffle(slots)
        it = iter(slots)
        for _ in range(profile.chains):
            nodes = [
                region + next(it) * stride for _ in range(profile.chain_nodes)
            ]
            for here, there in zip(nodes, nodes[1:] + nodes[:1]):
                self.prog.poke(here, there)  # next pointer
                self.prog.poke(here + 8, rng.getrandbits(32))  # value
            chains.append(_Chain(nodes))
        return chains

    def _build_tree(self, region: int) -> List[int]:
        rng = self._layout_rng
        count = max(2, self.profile.chain_nodes)
        nodes = [region + i * _TREE_NODE_BYTES for i in range(count)]
        rng.shuffle(nodes)
        for i, node in enumerate(nodes):
            self.prog.poke(node, nodes[(2 * i + 1) % count])  # left
            self.prog.poke(node + 8, nodes[(2 * i + 2) % count])  # right
            self.prog.poke(node + 16, rng.getrandbits(32))  # value
        return nodes

    @staticmethod
    def _all_nodes(chains: Sequence[_Chain]) -> List[int]:
        return [node for chain in chains for node in chain.nodes]

    def _build_arrays(
        self,
        base: int,
        nodes: Sequence[int],
        rng: Optional[random.Random] = None,
    ) -> None:
        rng = rng or self._layout_rng
        words = self.profile.array_words
        for i in range(words):
            # A[i] holds a *scaled offset* into B, so that B[A[i]] is a
            # single base+offset load — the paper's base-address indexing.
            self.prog.poke(base + _INDEX_BASE + i * 8, rng.randrange(words) * 8)
        buckets = max(16, words // 4)
        for i in range(buckets):
            self.prog.poke(base + _HASH_BASE + i * 8, rng.choice(list(nodes)))
        # Array descriptors: words holding the target array's base address,
        # used by the `desc->array[idx]` multi-source pattern (§5.1.1).
        for i in range(8):
            self.prog.poke(base + _DESC_BASE + i * 8, base + _TARGET_BASE)

    def _cumulative_weights(self) -> List[float]:
        total = 0.0
        cumulative = []
        for name in self._kernel_names:
            total += self.profile.kernel_weights[name]
            cumulative.append(total)
        return cumulative

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def build(self, length: int) -> Program:
        """Emit kernel chunks until the trace reaches ``length`` micro-ops."""
        while len(self.prog) < length:
            pick = self._rng.random() * self._kernel_cum[-1]
            for name, bound in zip(self._kernel_names, self._kernel_cum):
                if pick <= bound:
                    self._kernels[name]()
                    break
        return self.prog

    # ------------------------------------------------------------------
    # kernel chunks
    # ------------------------------------------------------------------
    def _sticky_indirect(self, addr: int) -> bool:
        """Whether dereferences of ``addr`` go through computation.

        The choice is a deterministic function of the address, so a word
        that is dereferenced indirectly is *always* dereferenced
        indirectly — it leaks under global DIFT but never as a direct
        load pair, exactly the DIFT-vs-pairs gap of Fig. 4 (and the
        reason deepsjeng/cactuBSSN recover little in Fig. 9).
        """
        mixed = (addr * 0x2545F4914F6CDD1D) & 0xFFFFFFFF
        return (mixed % 1000) < self.profile.indirect_fraction * 1000

    def _use_shared(self) -> bool:
        return (
            self._shared_chains is not None
            and self._rng.random() < self.profile.shared_fraction
        )

    def _maybe_lock(self) -> None:
        if self.profile.lock_rate and self._rng.random() < self.profile.lock_rate:
            lock_addr = _SHARED_BASE + 0x80 * self._rng.randrange(8)
            prog = self.prog
            prog.li(20, lock_addr)
            prog.load(21, base=20)  # read the lock word
            prog.branch(21, mispredict=self._rng.random() < 0.3)
            prog.li(22, self.thread_id + 1)
            prog.store(22, base=20)  # acquire (conceals the lock word)

    def _value_branch(self, pointer_reg: int, data_reg: Optional[int] = None) -> None:
        """Branch on a loaded value with probability ``value_branch_rate``.

        ``pointer_reg`` holds a dereferenced pointer (its home word gets
        revealed on reuse, so ReCon can lift the resolution delay);
        ``data_reg`` holds a plain data value (never revealed).  The
        profile's ``data_branch_fraction`` picks between them.
        """
        if self._rng.random() >= self.profile.value_branch_rate:
            return
        reg = pointer_reg
        if (
            data_reg is not None
            and self._rng.random() < self.profile.data_branch_fraction
        ):
            reg = data_reg
        # The branch tests a *computed* condition (a compare chain on the
        # loaded value), which is where NDA pays extra latency over STT.
        for _ in range(self.profile.branch_compute_depth):
            self.prog.alu(24, reg)
            reg = 24
        self.prog.branch(
            reg, mispredict=self._rng.random() < self.profile.mispredict_rate
        )

    def _dependent_compute(self, reg: int, depth: Optional[int] = None) -> int:
        """Chained computation on a loaded value, ending in an output store.

        The trailing store writes the *computed* value to an output buffer
        (untainted address).  It differentiates NDA from STT: under NDA
        the compute chain cannot start until the load is safe, so the
        store's data arrives late and in-order commit stalls at the store;
        under STT the chain executes under speculation and the store
        commits on time.
        """
        prog = self.prog
        depth = self.profile.compute_depth if depth is None else depth
        current = reg
        for _ in range(depth):
            prog.alu(28, current)
            current = 28
        if depth and self._rng.random() < 0.5:
            out_addr = self._base + _STREAM_BASE + 0x40000 + (
                (self._stream_cursor + 8 * self._rng.randrange(64)) % 0x1000
            )
            prog.li(27, out_addr)
            prog.store(current, base=27)
        return current

    def _independent_compute(self) -> None:
        prog = self.prog
        for i in range(self.profile.independent_compute):
            prog.li(29, i)
            prog.alu(30, 29)

    def _emit_pointer_chase(self) -> None:
        """Interleaved register-carried pointer chains (``p = p->next``).

        Each chain's pointer stays in a register across steps, so
        consecutive hops are *true* dependent load pairs: the next hop's
        address is the previous load's value.  Under the unsafe baseline
        the interleaved chains overlap (MLP = number of chains); under
        STT/NDA every hop is a transmitter fed by a speculative load, so
        the chains serialize on the visibility frontier — exactly the
        memory-level-parallelism loss the paper attributes to the secure
        schemes.  Once a lap has revealed the pointer words, ReCon lifts
        the hops and the MLP returns.
        """
        profile = self.profile
        prog = self.prog
        self._maybe_lock()
        chains = (
            self._shared_chains if self._use_shared() else self._chains
        ) or self._chains
        k = min(len(chains), 12)
        active = chains[:k]
        cur = list(range(1, 1 + k))
        nxt = list(range(13, 13 + k))
        for i, chain in enumerate(active):
            prog.li(cur[i], chain.cursor)
        for _ in range(profile.chase_steps):
            # Hop wave: nxt[i] <- *cur[i]; a pair with the previous hop.
            for i, chain in enumerate(active):
                if self._sticky_indirect(chain.cursor):
                    # Indirect dereference: copy through an ALU first.
                    prog.load(25, base=cur[i])
                    prog.add_imm(nxt[i], 25, 0)  # breaks the direct pair
                else:
                    prog.load(nxt[i], base=cur[i])
            # Payload wave: dereference each new pointer (direct pairs).
            for i, chain in enumerate(active):
                prog.load(26, base=nxt[i], offset=8)  # next->value
                # `while (p)`-style loop control tests the pointer (whose
                # home word is revealed by the pair, so ReCon can untaint
                # the loop spine on reuse); a data_branch_fraction of the
                # branches test the payload value instead.
                self._value_branch(nxt[i], data_reg=26)
                if self._rng.random() < profile.store_rate:
                    # Rewrite the followed pointer: conceals it.
                    prog.store(nxt[i], base=cur[i])
                chain.cursor = prog.peek(chain.cursor)
            cur, nxt = nxt, cur
            self._dependent_compute(26)
            self._independent_compute()

    def _emit_indexed(self) -> None:
        """B[A[i]] — base-address indexing (a direct pair, §1)."""
        profile = self.profile
        prog = self.prog
        shared = self._use_shared()
        base = _SHARED_BASE if shared else self._base
        for _ in range(8):
            i = self._index_cursor % profile.array_words
            self._index_cursor += 1 + self._rng.randrange(3)
            slot = base + _INDEX_BASE + i * 8
            prog.li(1, slot)
            prog.load(2, base=1)  # A[i] (scaled offset)
            if self._sticky_indirect(slot):
                prog.add_imm(3, 2, 0)  # masked/rescaled index: indirect
                prog.load(4, base=3, offset=base + _TARGET_BASE)
            elif self._rng.random() < 0.25:
                # desc->array[idx]: both address operands are loaded
                # values, so the pair can form through either (§5.1.1).
                prog.li(5, base + _DESC_BASE + self._rng.randrange(8) * 8)
                prog.load(6, base=5)  # the array's base pointer
                prog.load_indexed(4, base=6, index=2)
            else:
                prog.load(4, base=2, offset=base + _TARGET_BASE)  # B[A[i]]
            out = self._dependent_compute(4)
            # Branch on the index (revealed on reuse) or on the computed
            # result of the target value (never revealed).
            self._value_branch(2, data_reg=out)
            if self._rng.random() < profile.store_rate:
                prog.store(2, base=1)  # rewrite A[i]: conceals the slot
        self._independent_compute()

    def _emit_tree(self) -> None:
        """Pointer-tree descent with data-dependent direction branches."""
        profile = self.profile
        prog = self.prog
        node = self._rng.choice(self._tree_nodes)
        prog.li(1, node)
        cur_reg = 1
        for _ in range(profile.chase_steps):
            side = 0 if self._rng.random() < 0.5 else 8
            prog.load(2, base=cur_reg, offset=16)  # node->value (pair)
            if self._sticky_indirect(node + side):
                prog.load(25, base=cur_reg, offset=side)
                prog.add_imm(3, 25, 0)
            else:
                prog.load(3, base=cur_reg, offset=side)  # child (pair)
            # Descent direction: usually `if (node->child)` (revealable),
            # sometimes a comparison on the payload (not revealable).
            self._value_branch(3, data_reg=2)
            cur_reg = 3
            node = prog.regs[3]
        self._dependent_compute(2)
        self._independent_compute()

    def _emit_hash(self) -> None:
        """Hash-table probe: computed bucket, then chained dereferences."""
        profile = self.profile
        prog = self.prog
        shared = self._use_shared()
        base = _SHARED_BASE if shared else self._base
        buckets = max(16, profile.array_words // 4)
        for _ in range(4):
            prog.li(1, self._rng.getrandbits(16))
            prog.alu(2, 1)
            prog.alu(2, 2)  # "hash" of the key
            bucket = self._rng.randrange(buckets)
            prog.li(3, base + _HASH_BASE + bucket * 8)
            prog.load(4, base=3)  # bucket head pointer
            prog.load(5, base=4, offset=8)  # head->value (direct pair)
            out = self._dependent_compute(5)
            # Key comparison: usually against the chain pointer (revealed
            # on bucket reuse), sometimes against the stored key itself.
            self._value_branch(4, data_reg=out)
            if self._rng.random() < profile.store_rate:
                prog.store(4, base=3)  # re-link the bucket: conceals it
        self._independent_compute()

    def _emit_stream(self) -> None:
        """Sequential load-compute-store; no pointer dereferencing."""
        prog = self.prog
        base = self._base + _STREAM_BASE
        span = max(64, self.profile.array_words) * 8
        for _ in range(16):
            addr = base + (self._stream_cursor % span)
            self._stream_cursor += 8
            prog.li(1, addr)
            prog.load(2, base=1)
            prog.alu(3, 2)
            prog.store(3, base=1, offset=span)
        if self._rng.random() < 0.2:
            # Loop-exit check on the induction counter: data-independent.
            prog.li(7, self._stream_cursor)
            prog.branch(7, mispredict=self._rng.random() < 0.01)

    def _emit_stencil(self) -> None:
        """Neighbour loads + FP compute; branches rare and data-independent."""
        from repro.common.types import OpClass

        prog = self.prog
        base = self._base + _STREAM_BASE
        span = max(64, self.profile.array_words) * 8
        for _ in range(8):
            addr = base + (self._stream_cursor % span)
            self._stream_cursor += 8
            prog.li(1, addr)
            prog.load(2, base=1)
            prog.load(3, base=1, offset=8)
            prog.load(4, base=1, offset=16)
            prog.alu(5, 2, 3, opclass=OpClass.FP)
            prog.alu(5, 5, 4, opclass=OpClass.FP)
            prog.store(5, base=1, offset=span)
        if self._rng.random() < 0.1:
            # Grid-loop condition on the induction counter.
            prog.li(7, self._stream_cursor)
            prog.branch(7, mispredict=False)

    def _emit_compute(self) -> None:
        """Register-resident arithmetic; negligible memory traffic."""
        from repro.common.types import OpClass

        prog = self.prog
        prog.li(1, self._rng.getrandbits(16))
        current = 1
        for i in range(12):
            opclass = OpClass.MUL if i % 3 == 0 else OpClass.FP
            prog.alu(2, current, opclass=opclass)
            current = 2
        for i in range(self.profile.independent_compute + 4):
            prog.li(3, i)
            prog.alu(4, 3)

    def _emit_branchy(self) -> None:
        """Branch-dense integer code on register (non-loaded) values."""
        prog = self.prog
        prog.li(1, self._rng.getrandbits(16))
        for _ in range(10):
            prog.alu(2, 1)
            prog.branch(
                2, mispredict=self._rng.random() < self.profile.mispredict_rate
            )
            prog.alu(1, 2)


def build_trace(profile: BenchmarkProfile, length: int) -> Program:
    """Build a single-thread trace of roughly ``length`` micro-ops.

    Profiles in the ``gadgets`` suite dispatch to the attack-scenario
    catalog (:mod:`repro.workloads.gadgets`) instead of the synthetic
    kernel mix; the import is lazy to keep the catalog off the hot
    import path of ordinary runs.
    """
    if profile.suite == "gadgets":
        from repro.workloads.gadgets import build_gadget_trace

        return build_gadget_trace(profile, length)
    return WorkloadBuilder(profile).build(length)


def build_parallel_traces(
    profile: BenchmarkProfile, num_threads: int, length: int
) -> List[Program]:
    """Build one trace per thread; shared structures have identical layout.

    Writes by one thread are not reflected in another thread's memory
    image (the caches carry no data in this model, only addresses and
    metadata), so each trace stays self-consistent while the *addresses*
    exercise real sharing, invalidations, and reveal-bit coherence.
    """
    if profile.suite == "gadgets":
        from repro.workloads.gadgets import build_gadget_parallel_traces

        return build_gadget_parallel_traces(profile, num_threads, length)
    return [
        WorkloadBuilder(profile, thread_id=t, num_threads=num_threads).build(length)
        for t in range(num_threads)
    ]
