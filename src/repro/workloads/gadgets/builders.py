"""Parameterized attack-scenario builders (the gadget catalog's bodies).

Every builder emits one *instance* of an attack pattern into a
:class:`~repro.isa.program.Program` at a caller-chosen ``base`` address,
and reports the attack *site*: which micro-op is the transmitter, which
memory word holds the secret, and how many leading micro-ops model
genuine non-speculative execution (the *architectural prefix* — the part
of the trace an analyst may legitimately run DIFT over to decide what
was public "at attack time").

Conventions shared by all builders:

* The **transmitter** is a load whose *address* is derived from the
  secret word's content.  Its target line is always cold by
  construction, so a speculative issue perturbs the cache (the
  observable side channel); a transmitter that only ever *hits* in the
  L1 leaves no footprint and does not count as transmission.
* The **speculation shadow** is a chain of dependent cold loads feeding
  a branch: the branch cannot resolve before the chain returns, so
  everything younger executes speculatively for ~``depth`` DRAM round
  trips under every scheme (the chain itself is non-speculative, so no
  scheme delays it).
* ``noise_seed`` prepends deterministic benign prefix noise.  Matched
  audit trials reuse the seed across secret values, so any
  metadata difference between the pair is secret-dependence by
  construction (see :mod:`repro.redteam.audit`).
* Memory images are per-program: multi-core builders ``poke`` shared
  words into every thread's image (the caches carry addresses and
  metadata, not data — see :func:`repro.workloads.kernels.build_parallel_traces`).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Tuple

from repro.common.types import MemPrediction, word_addr
from repro.isa.program import Program

__all__ = ["BuiltGadget", "GadgetSite", "INSTANCE_STRIDE"]

#: Address distance between repeated gadget instances: far enough apart
#: that every instance starts with a fully cold working set.
INSTANCE_STRIDE = 0x0010_0000

# Per-instance address layout (offsets from ``base``).  Distinct 0x1000
# strides keep every named word on its own cache line; "fresh" transmit
# targets are chosen so no warm-up path ever touches them.
_PTR_OFF = 0x1000  # a pointer the program dereferences architecturally
_TARGET_OFF = 0x2000  # where that pointer points
_FRESH_OFF = 0x2000  # re-deref offset: TARGET+0x2000 = base+0x4000, cold
_SECRET_OFF = 0x5000  # a secret word no architectural path dereferences
_JUNK_OFF = 0x6000  # pointer value written by the concealing store
_SECRET_TARGET_OFF = 0x7000  # default content of the secret word
_TABLE_OFF = 0x8000  # base of the v1-indexed probe table
_SCRATCH_OFF = 0x9000  # v1.1 speculative-store slot
_PROBE_OFF = 0xA000  # implicit-channel probe line
_P2_OFF = 0xC000  # middle hop of the deep-chain gadget
_BENIGN_OFF = 0xD000  # benign pointer stored by the v4 gadget
_WTARGET_OFF = 0xF000  # target of the revealed word in implicit_revealed
_SHADOW_CHAIN_OFF = 0x40000  # shadow-chain lines
_V4_CHAIN_OFF = 0x44000  # v4 store-address delivery chain
_ADDR_CHAIN_OFF = 0x50000  # multi-core address-delivery chain
_NOISE_OFF = 0x60000  # benign prefix-noise lines


@dataclasses.dataclass(frozen=True)
class GadgetSite:
    """Where the attack lives inside the emitted program(s)."""

    #: Core whose trace contains the transmitter.
    transmit_core: int
    #: Sequence number (per-core) of the transmitter load.
    transmit_seq: int
    #: Word address whose *content* the transmitter encodes into the
    #: cache side channel.
    secret_word: int
    #: Per-core count of leading micro-ops that model genuine
    #: non-speculative execution (the architectural prefix).
    prefix_ends: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class BuiltGadget:
    """One built gadget instance: programs plus its attack site."""

    name: str
    programs: Tuple[Program, ...]
    site: GadgetSite

    @property
    def threads(self) -> int:
        return len(self.programs)

    @property
    def length(self) -> int:
        """Canonical trace length (the longest per-core trace)."""
        return max(len(prog) for prog in self.programs)

    @property
    def transmit_core(self) -> int:
        return self.site.transmit_core

    @property
    def transmit_seq(self) -> int:
        return self.site.transmit_seq

    @property
    def secret_word(self) -> int:
        return self.site.secret_word

    @property
    def prefix_ends(self) -> Tuple[int, ...]:
        return self.site.prefix_ends


# ----------------------------------------------------------------------
# shared fragments
# ----------------------------------------------------------------------
def _arch_noise(prog: Program, base: int, seed: int) -> None:
    """Benign architectural prefix noise, deterministic in ``seed``.

    A few ALU ops, one cold load from a seed-chosen noise line, and some
    nops — enough to perturb timing and cache layout across trials
    without touching any gadget word.
    """
    rng = random.Random(0xA0D17 ^ seed)
    for _ in range(rng.randrange(0, 8)):
        prog.alu(15, 15)
    prog.load_abs(14, base + _NOISE_OFF + rng.randrange(16) * 64)
    for _ in range(rng.randrange(0, 4)):
        prog.nop()


def _shadow(prog: Program, base: int, depth: int = 2) -> None:
    """Raise a speculation shadow lasting ~``depth`` chained cold misses.

    The chain loads are older than the branch, hence non-speculative:
    no scheme delays them, so the shadow length is scheme-independent.
    """
    chain = base + _SHADOW_CHAIN_OFF
    for i in range(depth - 1):
        prog.poke(chain + i * 0x800, chain + (i + 1) * 0x800)
    prog.li(24, chain)
    for _ in range(depth):
        prog.load(24, base=24)
    prog.branch(24)


def _reveal_pair(prog: Program, word: int) -> None:
    """Architecturally dereference ``word``: a committed direct load pair.

    Ends with a serializing mispredicted branch dependent on the pair,
    so the pair has committed (and, under ReCon, its reveal has reached
    the caches) before anything younger dispatches.
    """
    prog.li(10, word)
    prog.load(11, base=10)
    prog.load(12, base=11)
    prog.alu(13, 12)
    prog.branch(13, mispredict=True)


# ----------------------------------------------------------------------
# Spectre v1 family — bounds-check bypass
# ----------------------------------------------------------------------
def emit_v1_bounds_bypass(
    progs: List[Program],
    base: int,
    *,
    secret_value: Optional[int] = None,
    noise_seed: int = 0,
    warm_line: Optional[int] = None,
) -> GadgetSite:
    """Classic Spectre v1: ``if (x < size) y = B[A[x]]`` with the bounds
    check unresolved while the body runs.

    ``warm_line`` architecturally warms one absolute line before the
    attack (used by the audit's positive control: warming the line the
    secret points at makes the unsafe transmitter's hit/miss — and hence
    timing — secret-dependent).
    """
    (prog,) = progs
    secret = base + _SECRET_OFF
    secret_ptr = base + _SECRET_TARGET_OFF if secret_value is None else secret_value
    prog.poke(secret, secret_ptr)
    _arch_noise(prog, base, noise_seed)
    if warm_line is not None:
        prog.load_abs(16, warm_line)
        prog.alu(17, 16)
        prog.branch(17, mispredict=True)
    prefix = len(prog)
    _shadow(prog, base)
    prog.li(1, secret)
    prog.load(2, base=1)  # speculative read of the secret word
    transmit = prog.load(3, base=2)  # transmitter: dereferences it
    return GadgetSite(0, transmit.seq, word_addr(secret), (prefix,))


def emit_v1_indexed(
    progs: List[Program],
    base: int,
    *,
    secret_value: Optional[int] = None,
    noise_seed: int = 0,
) -> GadgetSite:
    """v1 through a two-source indexed load: ``y = table[secret]``.

    Exercises the multi-source micro-op case of paper §5.1.1 — the pair
    forms through the *index* operand, not the base.
    """
    (prog,) = progs
    secret = base + _SECRET_OFF
    index = 0x6000 if secret_value is None else secret_value
    prog.poke(secret, index)
    _arch_noise(prog, base, noise_seed)
    prefix = len(prog)
    _shadow(prog, base)
    prog.li(1, secret)
    prog.load(2, base=1)  # speculative read of the secret index
    prog.li(3, base + _TABLE_OFF)
    transmit = prog.load_indexed(4, base=3, index=2)
    return GadgetSite(0, transmit.seq, word_addr(secret), (prefix,))


def emit_v1_deep_chain(
    progs: List[Program],
    base: int,
    *,
    secret_value: Optional[int] = None,
    noise_seed: int = 0,
) -> GadgetSite:
    """v1 with a triple dereference: secret -> p2 -> target.

    Every hop is itself a direct load pair; the *final* load is the
    transmitter the harness watches.
    """
    (prog,) = progs
    secret = base + _SECRET_OFF
    p2 = base + _P2_OFF
    target = base + _SECRET_TARGET_OFF if secret_value is None else secret_value
    prog.poke(secret, p2)
    prog.poke(p2, target)
    _arch_noise(prog, base, noise_seed)
    prefix = len(prog)
    _shadow(prog, base, depth=3)
    prog.li(1, secret)
    prog.load(2, base=1)
    prog.load(3, base=2)
    transmit = prog.load(4, base=3)
    return GadgetSite(0, transmit.seq, word_addr(secret), (prefix,))


# ----------------------------------------------------------------------
# Spectre v1.1 — speculative store forwarding
# ----------------------------------------------------------------------
def emit_v11_spec_store_forward(
    progs: List[Program],
    base: int,
    *,
    secret_value: Optional[int] = None,
    noise_seed: int = 0,
) -> GadgetSite:
    """v1.1: a speculative store parks the secret in a scratch slot; a
    younger load picks it up via store-to-load forwarding and a final
    load dereferences it.

    Forwarded data is always concealed in this model, so the ReCon
    variants gain nothing here — the pattern checks that the forwarding
    path cannot launder taint.
    """
    (prog,) = progs
    secret = base + _SECRET_OFF
    scratch = base + _SCRATCH_OFF
    secret_ptr = base + _SECRET_TARGET_OFF if secret_value is None else secret_value
    prog.poke(secret, secret_ptr)
    _arch_noise(prog, base, noise_seed)
    prefix = len(prog)
    _shadow(prog, base)
    prog.li(1, secret)
    prog.load(2, base=1)  # speculative secret read
    prog.li(3, scratch)
    prog.store(2, base=3)  # speculative store of the secret value
    prog.load(4, base=3)  # forwarded back (concealed, taint-carrying)
    transmit = prog.load(5, base=4)
    return GadgetSite(0, transmit.seq, word_addr(secret), (prefix,))


# ----------------------------------------------------------------------
# Spectre v4 / SSB — speculative store bypass
# ----------------------------------------------------------------------
def emit_v4_ssb_store_bypass(
    progs: List[Program],
    base: int,
    *,
    secret_value: Optional[int] = None,
    noise_seed: int = 0,
) -> GadgetSite:
    """v4: a load with a MEM memory-dependence prediction hoists past an
    older store whose address arrives late, reads the *stale* secret
    pointer, and dereferences it under the store's shadow.

    Modeling note: the trace interpreter snapshots load values at build
    time, so the stale (pre-store) content of the pointer word is
    restored with ``poke`` after the store is emitted — exactly the
    transient value the bypassing load observes in hardware.  The
    pipeline still detects the ordering violation when the store address
    resolves (``mem_order_violations``).
    """
    (prog,) = progs
    ptr = base + _PTR_OFF
    stale_ptr = base + _SECRET_TARGET_OFF if secret_value is None else secret_value
    chain = base + _V4_CHAIN_OFF
    prog.poke(ptr, stale_ptr)
    # The store's address arrives via a two-deep cold pointer chain, so
    # its shadow outlives the bypassing load's own miss.
    prog.poke(chain, chain + 0x800)
    prog.poke(chain + 0x800, ptr)
    _arch_noise(prog, base, noise_seed)
    prefix = len(prog)
    prog.li(10, chain)
    prog.load(11, base=10)
    prog.load(11, base=11)  # r11 = ptr, ~2 DRAM round trips later
    prog.li(12, base + _BENIGN_OFF)
    prog.store(12, base=11)  # overwrites [ptr]; address unresolved for ages
    prog.poke(ptr, stale_ptr)  # the bypassing load sees pre-store memory
    prog.li(1, ptr)
    prog.load(2, base=1, forced_prediction=MemPrediction.MEM)
    transmit = prog.load(3, base=2)
    return GadgetSite(0, transmit.seq, word_addr(ptr), (prefix,))


# ----------------------------------------------------------------------
# ReCon §1 — reveal then re-dereference
# ----------------------------------------------------------------------
def emit_reveal_rederef(
    progs: List[Program],
    base: int,
    *,
    secret_value: Optional[int] = None,
    noise_seed: int = 0,
) -> GadgetSite:
    """The paper's motivating pattern: the pointer leaks architecturally
    (a committed load pair), then the *same* pointer is dereferenced
    speculatively at a fresh offset.

    Nothing new leaks — the pointer is public — so the unsafe baseline
    is BENIGN, and the ReCon variants transmit too (that is the
    optimization).  Plain NDA/STT/DoM still block it, paying for data
    that is already public.
    """
    (prog,) = progs
    ptr = base + _PTR_OFF
    target = base + _TARGET_OFF if secret_value is None else secret_value
    prog.poke(ptr, target)
    _arch_noise(prog, base, noise_seed)
    _reveal_pair(prog, ptr)
    prefix = len(prog)
    _shadow(prog, base)
    prog.li(1, ptr)
    prog.load(2, base=1)  # speculative re-read: finds the word revealed
    transmit = prog.load(3, base=2, offset=_FRESH_OFF)  # fresh cold line
    return GadgetSite(0, transmit.seq, word_addr(ptr), (prefix,))


def emit_reveal_conceal_rederef(
    progs: List[Program],
    base: int,
    *,
    noise_seed: int = 0,
) -> GadgetSite:
    """Reveal, then *conceal*: after the pointer leaks, a store rewrites
    the word.  The new content never leaked, so the speculative re-deref
    is a true leak again — checks that the concealing store strips the
    reveal bit (and DIFT's leaked set) before the attack.
    """
    (prog,) = progs
    ptr = base + _PTR_OFF
    prog.poke(ptr, base + _TARGET_OFF)
    _arch_noise(prog, base, noise_seed)
    _reveal_pair(prog, ptr)  # leaves r10 = ptr
    prog.li(14, base + _JUNK_OFF)
    prog.store(14, base=10)  # overwrite [ptr]: conceals it
    prog.alu(15, 14)
    prog.branch(15, mispredict=True)  # serialize the conceal
    prefix = len(prog)
    _shadow(prog, base)
    prog.li(1, ptr)
    prog.load(2, base=1)  # reads the *new*, never-leaked pointer
    transmit = prog.load(3, base=2)
    return GadgetSite(0, transmit.seq, word_addr(ptr), (prefix,))


# ----------------------------------------------------------------------
# STT implicit channel — secret-dependent branch resolution
# ----------------------------------------------------------------------
def emit_implicit_branch(
    progs: List[Program],
    base: int,
    *,
    secret_value: Optional[int] = None,
    noise_seed: int = 0,
) -> GadgetSite:
    """Implicit channel: a mispredicted branch *on the secret* gates a
    probe load.  When the branch may resolve early (unsafe), the probe
    issues while an outer shadow is still up; schemes that delay tainted
    branch resolution (STT) or the secret's broadcast (NDA) push the
    probe past the shadow.
    """
    (prog,) = progs
    secret = base + _SECRET_OFF
    content = base + _SECRET_TARGET_OFF if secret_value is None else secret_value
    prog.poke(secret, content)
    _arch_noise(prog, base, noise_seed)
    prefix = len(prog)
    _shadow(prog, base, depth=3)  # outlives the secret load's single miss
    prog.li(1, secret)
    prog.load(2, base=1)  # speculative secret read (~1 miss)
    prog.branch(2, mispredict=True)  # secret-dependent resolution
    transmit = prog.load_abs(3, base + _PROBE_OFF)  # gated probe
    return GadgetSite(0, transmit.seq, word_addr(secret), (prefix,))


def emit_implicit_branch_revealed(
    progs: List[Program],
    base: int,
    *,
    noise_seed: int = 0,
) -> GadgetSite:
    """The implicit channel on an already-revealed word: the branch
    operand is public, so ReCon lets it resolve early — the probe
    transmits, but only data that leaked architecturally first.
    """
    (prog,) = progs
    secret = base + _SECRET_OFF
    prog.poke(secret, base + _WTARGET_OFF)
    _arch_noise(prog, base, noise_seed)
    _reveal_pair(prog, secret)  # architecturally dereferences the word
    prefix = len(prog)
    _shadow(prog, base, depth=3)
    prog.li(1, secret)
    prog.load(2, base=1)  # revealed: untainted under ReCon
    prog.branch(2, mispredict=True)
    transmit = prog.load_abs(3, base + _PROBE_OFF)
    return GadgetSite(0, transmit.seq, word_addr(secret), (prefix,))


# ----------------------------------------------------------------------
# Indirect chain — DIFT-only leakage (the pair tracker's blind spot)
# ----------------------------------------------------------------------
def emit_indirect_chain(
    progs: List[Program],
    base: int,
    *,
    noise_seed: int = 0,
) -> GadgetSite:
    """The pointer leaks architecturally through an ALU *copy* — global
    DIFT sees it, the direct-pair tracker (and the LPT) do not.  The
    speculative re-deref therefore stays blocked even under ReCon:
    the mechanism is conservative exactly where its detector is.
    """
    (prog,) = progs
    ptr = base + _PTR_OFF
    prog.poke(ptr, base + _TARGET_OFF)
    _arch_noise(prog, base, noise_seed)
    prog.li(10, ptr)
    prog.load(11, base=10)
    prog.alu(12, 11)  # copy: breaks the direct pair
    prog.load(13, base=12)  # architectural deref via the copy
    prog.alu(14, 13)
    prog.branch(14, mispredict=True)  # serialize
    prefix = len(prog)
    _shadow(prog, base)
    prog.li(1, ptr)
    prog.load(2, base=1)  # not revealed: the LPT never saw a pair
    transmit = prog.load(3, base=2, offset=_FRESH_OFF)
    return GadgetSite(0, transmit.seq, word_addr(ptr), (prefix,))


# ----------------------------------------------------------------------
# Multi-core — reveal bits ride MESI coherence
# ----------------------------------------------------------------------
def emit_multicore_secret_sharing(
    progs: List[Program],
    base: int,
    *,
    noise_seed: int = 0,
) -> GadgetSite:
    """Core 0 reveals a pointer architecturally; core 1 dereferences it
    speculatively.  Under ReCon the reveal bit travels to core 1 with
    the coherence fill, so core 1's transmitter runs — transmitting only
    the word core 0 already made public.

    Core 1 obtains the pointer's *address* through a four-deep cold
    chain, which delays its attack long enough for core 0's reveal to
    commit and propagate.
    """
    p0, p1 = progs
    ptr = base + _PTR_OFF
    target = base + _TARGET_OFF
    for prog in progs:
        prog.poke(ptr, target)

    # Core 0: the revealer (entirely architectural).
    _arch_noise(p0, base, noise_seed)
    _reveal_pair(p0, ptr)
    prefix0 = len(p0)

    # Core 1: the attacker.
    chain = base + _ADDR_CHAIN_OFF
    hops = 4
    for i in range(hops - 1):
        p1.poke(chain + i * 0x800, chain + (i + 1) * 0x800)
    p1.poke(chain + (hops - 1) * 0x800, ptr)
    p1.li(4, chain)
    reg = 4
    for i in range(hops):
        p1.load(5 + i, base=reg)
        reg = 5 + i
    # r(reg) = ptr, ~4 DRAM round trips in: core 0's reveal has landed.
    prefix1 = len(p1)
    _shadow(p1, base, depth=6)
    p1.load(8, base=reg)  # speculative read of ptr: cross-core reveal
    transmit = p1.load(9, base=8)  # cold in core 1's L1
    return GadgetSite(1, transmit.seq, word_addr(ptr), (prefix0, prefix1))
