"""The gadget catalog: named attack cases with expected verdicts.

Each :class:`GadgetCase` couples a builder from
:mod:`repro.workloads.gadgets.builders` with the verdict it *should*
produce under every scheme of the red-team matrix.  The expected
verdicts are the security contract of this reproduction; the committed
copy in ``tests/data/redteam_expected_matrix.json`` guards them against
regression in CI.

Verdict semantics (decided by :mod:`repro.redteam.harness`):

* ``LEAK`` — the transmitter perturbed the cache (a speculative L1
  miss) and the secret word was **not** architecturally public at
  attack time: real information leaked.
* ``BENIGN`` — the transmitter ran speculatively, but the word it
  encoded had already leaked through committed execution (per the
  SPT/ReCon threat model, public data; transmitting it loses nothing).
* ``PROTECTED`` — the transmitter never perturbed the cache while
  speculative: the scheme blocked the channel.

Gadget profiles live in the ``"gadgets"`` suite so that
``repro run one --bench gadgets/<name>`` works, but they are *not* part
of :func:`repro.workloads.suites.all_benchmarks` — they are adversarial
micro-traces, not performance benchmarks.
"""

from __future__ import annotations

import dataclasses
import enum
from types import MappingProxyType
from typing import Callable, List, Mapping, Optional, Tuple

from repro.common.types import SchemeKind
from repro.isa.program import Program
from repro.workloads.gadgets import builders as _b
from repro.workloads.gadgets.builders import INSTANCE_STRIDE, BuiltGadget
from repro.workloads.profile import BenchmarkProfile

__all__ = [
    "CATALOG",
    "GADGET_SUITE",
    "GadgetCase",
    "MATRIX_SCHEMES",
    "Verdict",
    "build_gadget",
    "build_gadget_parallel_traces",
    "build_gadget_trace",
    "gadget_catalog",
    "gadget_profile",
    "gadget_profiles",
    "get_gadget",
]

#: Suite name under which gadget profiles are addressable.
GADGET_SUITE = "gadgets"

#: The red-team matrix columns (ISSUE order).
MATRIX_SCHEMES: Tuple[SchemeKind, ...] = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.STT,
    SchemeKind.NDA_RECON,
    SchemeKind.STT_RECON,
    SchemeKind.DOM,
)


class Verdict(enum.Enum):
    """Outcome of one gadget x scheme cell (see module docstring)."""

    LEAK = "leak"
    PROTECTED = "protected"
    BENIGN = "benign"


def _expected(
    unsafe: Verdict,
    nda: Verdict,
    stt: Verdict,
    nda_recon: Verdict,
    stt_recon: Verdict,
    dom: Verdict,
) -> Mapping[SchemeKind, Verdict]:
    return MappingProxyType(
        {
            SchemeKind.UNSAFE: unsafe,
            SchemeKind.NDA: nda,
            SchemeKind.STT: stt,
            SchemeKind.NDA_RECON: nda_recon,
            SchemeKind.STT_RECON: stt_recon,
            SchemeKind.DOM: dom,
        }
    )


@dataclasses.dataclass(frozen=True, eq=False)
class GadgetCase:
    """One catalog entry: builder, shape, and expected verdicts."""

    #: Unique name; also the benchmark name in the ``gadgets`` suite.
    name: str
    #: One-line description for tables and ``repro list``.
    summary: str
    #: Simulated cores the gadget needs.
    threads: int
    #: True when the architectural leak (if any) is a *direct* load
    #: pair — i.e. the LPT/pair tracker sees it, not just global DIFT.
    direct_pair: bool
    #: Expected verdict per matrix scheme.
    expected: Mapping[SchemeKind, Verdict]
    #: The emitter from :mod:`.builders`.
    emitter: Callable[..., _b.GadgetSite]
    #: Whether the emitter accepts ``secret_value`` (the audit needs it).
    secret_tunable: bool = True

    def emit(self, progs: List[Program], base: int, **kwargs: object) -> _b.GadgetSite:
        """Append one instance at ``base`` to ``progs``."""
        return self.emitter(progs, base, **kwargs)


_LEAK = Verdict.LEAK
_PROT = Verdict.PROTECTED
_BENIGN = Verdict.BENIGN

#: Every gadget the red-team harness knows about.
CATALOG: Tuple[GadgetCase, ...] = (
    GadgetCase(
        name="v1_bounds_bypass",
        summary="Spectre v1: bounds-check bypass dereferencing a secret",
        threads=1,
        direct_pair=True,
        expected=_expected(_LEAK, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_v1_bounds_bypass,
    ),
    GadgetCase(
        name="v1_indexed",
        summary="Spectre v1 via a two-source indexed load (table[secret])",
        threads=1,
        direct_pair=True,
        expected=_expected(_LEAK, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_v1_indexed,
    ),
    GadgetCase(
        name="v1_deep_chain",
        summary="Spectre v1 with a triple dereference chain",
        threads=1,
        direct_pair=True,
        expected=_expected(_LEAK, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_v1_deep_chain,
    ),
    GadgetCase(
        name="v1_1_spec_store_forward",
        summary="Spectre v1.1: secret laundered through a speculative store",
        threads=1,
        direct_pair=True,
        expected=_expected(_LEAK, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_v11_spec_store_forward,
    ),
    GadgetCase(
        name="v4_ssb_store_bypass",
        summary="Spectre v4/SSB: load bypasses an older store, derefs stale ptr",
        threads=1,
        direct_pair=True,
        expected=_expected(_LEAK, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_v4_ssb_store_bypass,
    ),
    GadgetCase(
        name="reveal_rederef",
        summary="ReCon §1: re-dereference of an architecturally leaked pointer",
        threads=1,
        direct_pair=True,
        expected=_expected(_BENIGN, _PROT, _PROT, _BENIGN, _BENIGN, _PROT),
        emitter=_b.emit_reveal_rederef,
    ),
    GadgetCase(
        name="reveal_conceal_rederef",
        summary="Reveal, conceal by store, then re-dereference (a true leak)",
        threads=1,
        direct_pair=True,
        expected=_expected(_LEAK, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_reveal_conceal_rederef,
        secret_tunable=False,
    ),
    GadgetCase(
        name="implicit_branch",
        summary="STT implicit channel: secret-dependent branch gates a probe",
        threads=1,
        direct_pair=True,
        expected=_expected(_LEAK, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_implicit_branch,
    ),
    GadgetCase(
        name="implicit_branch_revealed",
        summary="Implicit channel on a revealed word (ReCon resolves early)",
        threads=1,
        direct_pair=True,
        expected=_expected(_BENIGN, _PROT, _PROT, _BENIGN, _BENIGN, _PROT),
        emitter=_b.emit_implicit_branch_revealed,
        secret_tunable=False,
    ),
    GadgetCase(
        name="indirect_chain",
        summary="Architectural leak via ALU copy: DIFT sees it, the LPT cannot",
        threads=1,
        direct_pair=False,
        expected=_expected(_BENIGN, _PROT, _PROT, _PROT, _PROT, _PROT),
        emitter=_b.emit_indirect_chain,
        secret_tunable=False,
    ),
    GadgetCase(
        name="multicore_secret_sharing",
        summary="Core 0 reveals a pointer; core 1 re-derefs it via MESI bits",
        threads=2,
        direct_pair=True,
        expected=_expected(_BENIGN, _PROT, _PROT, _BENIGN, _BENIGN, _PROT),
        emitter=_b.emit_multicore_secret_sharing,
        secret_tunable=False,
    ),
)

_BY_NAME = {case.name: case for case in CATALOG}


def gadget_catalog() -> Tuple[GadgetCase, ...]:
    """Every registered gadget case, in catalog order."""
    return CATALOG


def get_gadget(name: str) -> GadgetCase:
    """Look up one case; raises KeyError with the known names."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown gadget {name!r}; known: {sorted(_BY_NAME)}")
    return _BY_NAME[name]


def build_gadget(name: str, **kwargs: object) -> BuiltGadget:
    """Build the canonical instance (base 0, noise seed 0 unless given)."""
    case = get_gadget(name)
    progs = [Program() for _ in range(case.threads)]
    site = case.emit(progs, 0, **kwargs)
    return BuiltGadget(name=case.name, programs=tuple(progs), site=site)


# ----------------------------------------------------------------------
# engine integration: profiles + trace-builder dispatch
# ----------------------------------------------------------------------
def gadget_profile(name: str) -> BenchmarkProfile:
    """The :class:`BenchmarkProfile` addressing one gadget.

    ``kernel_weights`` is a validation placeholder — gadget traces come
    from the catalog emitters, not the synthetic kernel mix.
    """
    case = get_gadget(name)
    index = CATALOG.index(case)
    return BenchmarkProfile(
        name=case.name,
        suite=GADGET_SUITE,
        kernel_weights={"pointer_chase": 1.0},
        seed=7000 + index,
    )


def gadget_profiles() -> List[BenchmarkProfile]:
    """One profile per catalog entry (``gadgets/<name>`` labels)."""
    return [gadget_profile(case.name) for case in CATALOG]


def _fill(
    case: GadgetCase, progs: List[Program], length: int
) -> None:
    """Emit instances until every trace reaches ``length`` micro-ops.

    Instance ``i`` lives at ``i * INSTANCE_STRIDE`` with noise seed
    ``i``, so instance 0 is always the canonical :func:`build_gadget`
    layout (the harness's transmitter seq stays valid) and repeats start
    cold.
    """
    i = 0
    while i == 0 or min(len(p) for p in progs) < length:
        case.emit(progs, i * INSTANCE_STRIDE, noise_seed=i)
        i += 1


def build_gadget_trace(profile: BenchmarkProfile, length: int) -> Program:
    """Single-thread gadget trace of at least ``length`` micro-ops."""
    case = get_gadget(profile.name)
    if case.threads != 1:
        raise ValueError(
            f"gadget {case.name!r} needs {case.threads} threads; "
            f"run it with --threads {case.threads}"
        )
    prog = Program()
    _fill(case, [prog], length)
    return prog


def build_gadget_parallel_traces(
    profile: BenchmarkProfile, num_threads: int, length: int
) -> List[Program]:
    """Per-thread gadget traces (``num_threads`` must match the case)."""
    case = get_gadget(profile.name)
    if num_threads != case.threads:
        raise ValueError(
            f"gadget {case.name!r} is written for {case.threads} thread(s), "
            f"got --threads {num_threads}"
        )
    if case.threads == 1:
        return [build_gadget_trace(profile, length)]
    progs = [Program() for _ in range(case.threads)]
    _fill(case, progs, length)
    return progs
