"""Catalog of parameterized Spectre-style attack scenarios.

The catalog (:mod:`.catalog`) names ~11 gadgets — Spectre v1 variants,
v1.1 speculative-store, v4/SSB store bypass, the paper's
reveal-then-redereference patterns, STT implicit channels, and a
multi-core reveal-sharing case — each with an expected leak/no-leak
verdict per protection scheme.  The builders (:mod:`.builders`) emit the
actual micro-op programs.  The red-team harness (:mod:`repro.redteam`)
runs the full gadget x scheme matrix and asserts the verdicts.
"""

from repro.workloads.gadgets.builders import BuiltGadget, GadgetSite
from repro.workloads.gadgets.catalog import (
    CATALOG,
    GADGET_SUITE,
    MATRIX_SCHEMES,
    GadgetCase,
    Verdict,
    build_gadget,
    build_gadget_parallel_traces,
    build_gadget_trace,
    gadget_catalog,
    gadget_profile,
    gadget_profiles,
    get_gadget,
)

__all__ = [
    "CATALOG",
    "GADGET_SUITE",
    "MATRIX_SCHEMES",
    "BuiltGadget",
    "GadgetCase",
    "GadgetSite",
    "Verdict",
    "build_gadget",
    "build_gadget_parallel_traces",
    "build_gadget_trace",
    "gadget_catalog",
    "gadget_profile",
    "gadget_profiles",
    "get_gadget",
]
