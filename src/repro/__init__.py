"""repro — a reproduction of ReCon (MICRO 2023).

ReCon detects non-speculative information leakage caused by
direct-dependence load pairs (pointer dereferences / base-address
indexing), remembers it as reveal/conceal bits carried by the cache
coherence protocol, and uses it to lift secure-speculation defenses (NDA,
STT) for values that are already public.

Quick start::

    from repro import SchemeKind, get_benchmark, run_benchmark

    profile = get_benchmark("spec2017", "mcf")
    unsafe = run_benchmark(profile, SchemeKind.UNSAFE, length=10_000)
    stt = run_benchmark(profile, SchemeKind.STT, length=10_000)
    recon = run_benchmark(profile, SchemeKind.STT_RECON, length=10_000)
    print(stt.ipc / unsafe.ipc, recon.ipc / unsafe.ipc)

Package map:

* :mod:`repro.core` — the out-of-order core model;
* :mod:`repro.memory` — MESI directory hierarchy with reveal bit-vectors;
* :mod:`repro.security` — unsafe/NDA/STT policies and the load-pair table;
* :mod:`repro.analysis` — the Clueless leakage characterizer;
* :mod:`repro.workloads` — synthetic SPEC/PARSEC-like suites;
* :mod:`repro.sim` — system assembly, experiment runners, reporting;
* :mod:`repro.telemetry` — event tracing, metrics, trace exporters.
"""

from repro.analysis import Clueless, LeakageReport
from repro.common import (
    CacheLevel,
    CacheParams,
    CoreParams,
    MemoryParams,
    SchemeKind,
    StatSet,
    SystemParams,
)
from repro.core import Core
from repro.isa import MicroOp, Program
from repro.memory import MemoryHierarchy
from repro.security import LoadPairTable, make_policy
from repro.sim import (
    ResultStore,
    RunConfig,
    RunResult,
    SuiteResult,
    System,
    default_trace_length,
    run_benchmark,
    run_benchmark_seeds,
    run_suite,
)
from repro.telemetry import TelemetryCollector, TelemetryConfig, TelemetryResult
from repro.workloads import (
    BenchmarkProfile,
    build_parallel_traces,
    build_trace,
    get_benchmark,
    parsec_suite,
    spec2006_suite,
    spec2017_suite,
)

__version__ = "1.0.0"

__all__ = [
    "BenchmarkProfile",
    "CacheLevel",
    "CacheParams",
    "Clueless",
    "Core",
    "CoreParams",
    "LeakageReport",
    "LoadPairTable",
    "MemoryHierarchy",
    "MemoryParams",
    "MicroOp",
    "Program",
    "ResultStore",
    "RunConfig",
    "RunResult",
    "SchemeKind",
    "StatSet",
    "SuiteResult",
    "System",
    "SystemParams",
    "TelemetryCollector",
    "TelemetryConfig",
    "TelemetryResult",
    "__version__",
    "build_parallel_traces",
    "build_trace",
    "default_trace_length",
    "get_benchmark",
    "make_policy",
    "parsec_suite",
    "run_benchmark",
    "run_benchmark_seeds",
    "run_suite",
    "spec2006_suite",
    "spec2017_suite",
]
