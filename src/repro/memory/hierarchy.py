"""Three-level MESI cache hierarchy with ReCon bit-vector piggybacking.

Structure (Table 2): per-core private L1 and L2 (inclusive), one shared LLC
holding an in-cache directory.  The protocol is a directory MESI whose
stable-state transitions are walked per transaction; latency is the sum of
the Table 2 round-trip costs of every agent the transaction touches plus
interconnect hops, plus — under a bounded :class:`MemoryTimingParams` —
the queueing delays of ports, MSHRs, interconnect links and the DRAM
channel.

The core-facing interface is the packet/port model: the pipeline builds a
:class:`~repro.memory.packet.MemPacket` and :meth:`MemoryHierarchy.submit`
turns the request into its response.  Internally, every coherence message
that carries a ReCon bit-vector (writebacks, owner downgrades,
invalidation acks under footnote 1) travels as a packet too — the vector
is read from the packet payload at the receiving end, never directly from
the remote cache.  Outstanding misses live in per-core
:class:`~repro.memory.mshr.MSHRFile` s: a primary miss allocates an
entry, a same-line access while the fill is in flight merges into it
(hit-under-miss), and the entry is dropped when the line leaves the
private hierarchy.  The legacy ``read()/write()`` call surface remains as
thin wrappers over ``submit`` so exact-latency tests and analysis code
keep working; the contention-free configuration (every timing knob
``None``) reproduces the legacy per-access latencies exactly, which the
golden parity suite (``tests/memory/test_parity_golden.py``) enforces.

ReCon metadata rules implemented here (paper §5.2-5.3):

* every line carries a reveal bit-vector (one bit per aligned 8-byte word);
* a line fetched from DRAM is fully concealed;
* reveals are performed on the requester's private copy;
* within one core's private hierarchy the level closest to the core is
  authoritative: an L1 eviction *overwrites* the L2 copy's vector (an OR
  would resurrect conceals, because conceals are applied to L1 first);
* across cores, an S/E eviction *OR-merges* into the directory vector
  (S/E copies can only have added reveals — concealing requires M — so the
  OR never resurrects a concealed word);
* an M writeback/downgrade *overwrites* the directory vector: the writer
  owned the only coherent copy;
* invalidated sharers lose their private vectors (paper's footnote 1);
* levels not listed in ``SystemParams.recon_levels`` store all-concealed
  vectors, which is how the L1-only / L1+L2 configurations of Fig. 10 lose
  reveal information on eviction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.params import SystemParams
from repro.common.stats import StatSet
from repro.common.types import CacheLevel, MESIState, line_addr
from repro.memory import recon_bits
from repro.memory.cache import CacheArray, CacheLine
from repro.memory.dram import MainMemory
from repro.memory.interconnect import FixedLatencyInterconnect, MeshInterconnect
from repro.memory.mshr import MSHRFile
from repro.memory.packet import MemPacket, PacketKind
from repro.memory.ports import MasterPort
from repro.telemetry.events import (
    CAT_CACHE,
    CAT_COHERENCE,
    CAT_MEM_TXN,
    CAT_RECON,
    NULL_TELEMETRY,
)

__all__ = ["MemoryHierarchy", "AccessResult"]

#: Stable MESI -> int encoding for event payloads.
_MESI_ORD = {
    MESIState.MODIFIED: 3,
    MESIState.EXCLUSIVE: 2,
    MESIState.SHARED: 1,
    MESIState.INVALID: 0,
}


class AccessResult:
    """Outcome of one load access."""

    __slots__ = ("latency", "revealed", "level")

    def __init__(self, latency: int, revealed: bool, level: CacheLevel) -> None:
        self.latency = latency
        self.revealed = revealed
        self.level = level

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AccessResult {self.level.name} latency={self.latency}"
            f" revealed={self.revealed}>"
        )


class _PrivateCaches:
    """One core's private L1+L2, its MSHR file, and its master port."""

    def __init__(self, params: SystemParams) -> None:
        self.l1 = CacheArray(params.memory.l1)
        self.l2 = CacheArray(params.memory.l2)
        timing = params.memory.timing
        self.mshr = MSHRFile(timing.mshr_entries)
        self.port = MasterPort(timing.port_width)


class MemoryHierarchy:
    """Shared memory system for ``params.num_cores`` cores."""

    def __init__(self, params: SystemParams) -> None:
        params.validate()
        self.params = params
        timing = params.memory.timing
        if params.memory.topology == "mesh":
            self.noc: FixedLatencyInterconnect = MeshInterconnect(
                params.memory.mesh_rows,
                params.memory.mesh_cols,
                params.memory.noc_hop_latency,
                link_width=timing.noc_link_width,
            )
        else:
            self.noc = FixedLatencyInterconnect(
                params.memory.noc_hop_latency,
                link_width=timing.noc_link_width,
            )
        self.dram = MainMemory(
            params.memory.dram_latency, queue_depth=timing.dram_queue_depth
        )
        self.llc = CacheArray(params.memory.llc)
        self._privs = [_PrivateCaches(params) for _ in range(params.num_cores)]
        self._stats = [StatSet() for _ in range(params.num_cores)]
        #: Reveal requests dropped because the line had left the private
        #: hierarchy before the pair committed.
        self.dropped_reveals = 0
        #: Telemetry sink (a core wires a live collector in when tracing
        #: is enabled; events are stamped with the collector's cycle).
        self.telemetry = NULL_TELEMETRY
        #: Clock of the transaction currently being processed; internal
        #: messaging (hops, DRAM fetches) reads it so bounded resources
        #: queue against the right cycle.  ``None`` outside a transaction.
        self._txn_now: Optional[int] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_stats(self, core: int, stats: StatSet) -> None:
        """Route this core's hierarchy counters into ``stats``."""
        self._stats[core] = stats

    def _tracks(self, level: CacheLevel) -> bool:
        """True if reveal bits are stored at ``level``."""
        return self.params.recon_visible_at(level)

    def _vector_if_tracked(self, vector: int, level: CacheLevel) -> int:
        return vector if self._tracks(level) else recon_bits.ALL_CONCEALED

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def _hop(
        self,
        carries_bitvector: bool = False,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> int:
        """One interconnect message within the current transaction."""
        return self.noc.hop(
            carries_bitvector=carries_bitvector,
            src=src,
            dst=dst,
            now=self._txn_now,
        )

    def _transfer(
        self,
        kind: PacketKind,
        core: int,
        laddr: int,
        src: Optional[int],
        dst: Optional[int],
        vector: int,
    ) -> MemPacket:
        """Send one vector-carrying coherence message as a packet.

        The returned packet's ``reveal_vector`` is the payload the
        receiving agent reads — coherence code never reaches into the
        remote cache for it — and ``latency`` is the hop cost.
        """
        pkt = MemPacket(
            kind=kind,
            core=core,
            addr=laddr,
            issued_at=self._txn_now or 0,
            src=src,
            dst=dst,
            reveal_vector=vector,
        )
        pkt.latency = self._hop(carries_bitvector=True, src=src, dst=dst)
        return pkt

    # ------------------------------------------------------------------
    # private-hierarchy helpers
    # ------------------------------------------------------------------
    def _private_lookup(
        self, core: int, laddr: int
    ) -> Tuple[Optional[CacheLine], Optional[CacheLevel]]:
        priv = self._privs[core]
        line = priv.l1.lookup(laddr)
        if line is not None:
            return line, CacheLevel.L1
        line = priv.l2.lookup(laddr)
        if line is not None:
            return line, CacheLevel.L2
        return None, None

    def _authoritative_vector(self, core: int, laddr: int) -> int:
        """The freshest private vector a core holds for ``laddr`` (else 0)."""
        priv = self._privs[core]
        line = priv.l1.lookup(laddr, touch=False)
        if line is None:
            line = priv.l2.lookup(laddr, touch=False)
        return line.reveal if line is not None else recon_bits.ALL_CONCEALED

    def _evict_private_l1(self, core: int, victim: CacheLine) -> None:
        """L1 victim falls back to L2: overwrite (L1 was authoritative)."""
        l2_line = self._privs[core].l2.lookup(victim.addr, touch=False)
        if l2_line is None:
            raise RuntimeError(
                f"inclusion violated: L1 victim {victim.addr:#x} missing in L2"
            )
        l2_line.reveal = self._vector_if_tracked(victim.reveal, CacheLevel.L2)
        l2_line.state = victim.state
        if victim.dirty:
            l2_line.dirty = True

    def _evict_private_l2(self, core: int, victim: CacheLine, stats: StatSet) -> None:
        """L2 victim leaves the private hierarchy: tell the directory."""
        priv = self._privs[core]
        l1_line = priv.l1.remove(victim.addr)
        if l1_line is not None:
            # Back-invalidate for inclusion; L1 copy is authoritative.
            victim.reveal = l1_line.reveal
            victim.state = l1_line.state
            victim.dirty = victim.dirty or l1_line.dirty
        dir_line = self.llc.lookup(victim.addr, touch=False)
        if dir_line is None:
            raise RuntimeError(
                f"inclusion violated: private victim {victim.addr:#x} missing in LLC"
            )
        # The line is gone from the private hierarchy: a fill still in
        # flight must not become a stale merge target for a later refetch.
        priv.mshr.retire(victim.addr)
        wb = self._transfer(
            PacketKind.WRITEBACK,
            core,
            victim.addr,
            src=core,
            dst=self.noc.home_node(victim.addr),
            vector=self._vector_if_tracked(victim.reveal, CacheLevel.LLC),
        )
        stats.coherence_transactions += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                CAT_CACHE, "evict", core=core, addr=victim.addr, value=2
            )
            self.telemetry.emit(
                CAT_COHERENCE,
                "merge",
                core=core,
                addr=victim.addr,
                value=_MESI_ORD[victim.state],
            )
        assert wb.reveal_vector is not None
        if victim.state is MESIState.MODIFIED:
            # PutM: data + vector overwrite the directory copy.
            dir_line.reveal = wb.reveal_vector
            dir_line.dirty = dir_line.dirty or victim.dirty
        else:
            # PutS/PutE: OR-merge preserves reveals across serial evictions.
            dir_line.reveal = recon_bits.merge(dir_line.reveal, wb.reveal_vector)
        if dir_line.owner == core:
            dir_line.owner = None
        dir_line.sharers.discard(core)
        stats.bitvector_merges += 1

    def _fill_private(
        self, core: int, laddr: int, state: MESIState, vector: int, stats: StatSet
    ) -> None:
        """Install a line arriving from the directory into L2 then L1."""
        priv = self._privs[core]
        if self.telemetry.enabled:
            self.telemetry.emit(
                CAT_COHERENCE,
                "mesi",
                core=core,
                addr=laddr,
                value=_MESI_ORD[state],
            )
            self.telemetry.observe(
                "l1_set_pressure", priv.l1.set_occupancy(laddr)
            )
        l2_vec = self._vector_if_tracked(vector, CacheLevel.L2)
        _, victim = priv.l2.insert(laddr, state, l2_vec)
        if victim is not None:
            self._evict_private_l2(core, victim, stats)
        l1_vec = self._vector_if_tracked(vector, CacheLevel.L1)
        _, victim = priv.l1.insert(laddr, state, l1_vec)
        if victim is not None:
            self._evict_private_l1(core, victim)

    # ------------------------------------------------------------------
    # directory-side helpers
    # ------------------------------------------------------------------
    def _invalidate_private(self, core: int, laddr: int) -> Tuple[int, bool]:
        """Remove a line from a core's private hierarchy.

        Returns ``(authoritative_vector, was_dirty)``.  The vector is only
        meaningful when the invalidated copy was the owner's; for plain
        sharers the caller discards it (paper footnote 1).
        """
        priv = self._privs[core]
        priv.mshr.retire(laddr)
        vector = recon_bits.ALL_CONCEALED
        dirty = False
        l1_line = priv.l1.remove(laddr)
        l2_line = priv.l2.remove(laddr)
        if l1_line is not None:
            vector = l1_line.reveal
            dirty = l1_line.dirty
        if l2_line is not None:
            if l1_line is None:
                vector = l2_line.reveal
            dirty = dirty or l2_line.dirty
        return vector, dirty

    def _evict_llc(self, victim: CacheLine) -> None:
        """Inclusive LLC eviction: recall every private copy, then DRAM."""
        dirty = victim.dirty
        holders = set(victim.sharers)
        if victim.owner is not None:
            holders.add(victim.owner)
        home = self.noc.home_node(victim.addr)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(CAT_CACHE, "evict", addr=victim.addr, value=3)
        for core in holders:
            _, was_dirty = self._invalidate_private(core, victim.addr)
            dirty = dirty or was_dirty
            self._hop(src=home, dst=core)
            self._stats[core].invalidations += 1
            if telemetry.enabled:
                telemetry.emit(
                    CAT_COHERENCE, "invalidate", core=core, addr=victim.addr
                )
        if dirty:
            self.dram.writeback()
        # Reveal information is lost: DRAM stores no bits.

    def _llc_fetch(
        self, laddr: int, stats: StatSet, core: Optional[int] = None
    ) -> Tuple[CacheLine, int]:
        """Ensure ``laddr`` is resident in the LLC; return (line, latency)."""
        latency = self.llc.params.latency + self._hop(
            src=core, dst=self.noc.home_node(laddr)
        )
        line = self.llc.lookup(laddr)
        if line is not None:
            stats.llc_hits += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_CACHE, "llc_hit", core=core or 0, addr=laddr
                )
            return line, latency
        stats.llc_misses += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                CAT_CACHE, "llc_miss", core=core or 0, addr=laddr
            )
        latency += self.dram.fetch(self._txn_now)
        line, victim = self.llc.insert(
            laddr, MESIState.SHARED, recon_bits.ALL_CONCEALED
        )
        if victim is not None:
            self._evict_llc(victim)
        return line, latency

    def _downgrade_owner(self, dir_line: CacheLine, stats: StatSet) -> int:
        """Owner writes data + vector back; becomes a sharer.  Returns cost."""
        owner = dir_line.owner
        assert owner is not None
        resp = self._transfer(
            PacketKind.SNOOP,
            owner,
            dir_line.addr,
            src=self.noc.home_node(dir_line.addr),
            dst=owner,
            vector=self._authoritative_vector(owner, dir_line.addr),
        )
        assert resp.latency is not None and resp.reveal_vector is not None
        latency = resp.latency + self.params.memory.l2.latency
        dir_line.reveal = self._vector_if_tracked(
            resp.reveal_vector, CacheLevel.LLC
        )
        priv = self._privs[owner]
        for array in (priv.l1, priv.l2):
            held = array.lookup(dir_line.addr, touch=False)
            if held is not None:
                if held.dirty:
                    dir_line.dirty = True
                    held.dirty = False
                held.state = MESIState.SHARED
        dir_line.sharers.add(owner)
        dir_line.owner = None
        stats.coherence_transactions += 1
        return latency

    # ------------------------------------------------------------------
    # the transaction engine
    # ------------------------------------------------------------------
    def submit(self, pkt: MemPacket) -> MemPacket:
        """Process one request packet; completes and returns it.

        The packet acquires the issuing core's master port (waiting for a
        grant when the port is width-bounded), walks the coherence
        protocol, and mutates into its response: ``latency`` is the full
        request-to-data time including every queueing delay, ``ready_at``
        the completion cycle.  The caller schedules ``pkt.fire()`` at
        ``ready_at`` for non-blocking completion delivery.
        """
        if not pkt.kind.is_request:
            raise ValueError(f"cannot submit a {pkt.kind} packet")
        stats = self._stats[pkt.core]
        priv = self._privs[pkt.core]
        wait = priv.port.acquire(pkt.issued_at)
        stats.port_stall_cycles += wait
        noc_q0 = self.noc.queue_cycles
        dram_q0 = self.dram.queue_cycles
        self._txn_now = pkt.issued_at + wait
        try:
            if pkt.kind is PacketKind.READ_REQ:
                self._do_read(pkt)
            elif pkt.kind is PacketKind.WRITE_REQ:
                self._do_write(pkt)
            elif pkt.kind is PacketKind.INVISIBLE_REQ:
                self._do_invisible(pkt)
            else:
                self._do_reveal(pkt)
            assert pkt.latency is not None
            pkt.latency += wait
        finally:
            now, self._txn_now = self._txn_now, None
        stats.noc_queue_cycles += self.noc.queue_cycles - noc_q0
        stats.dram_queue_cycles += self.dram.queue_cycles - dram_q0
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                CAT_MEM_TXN,
                pkt.kind.value,
                core=pkt.core,
                addr=pkt.addr,
                value=pkt.latency,
            )
            telemetry.observe("mshr_occupancy", priv.mshr.occupancy(now))
            telemetry.observe("noc_queue_depth", self.noc.queue_depth(now))
        return pkt

    # ------------------------------------------------------------------
    # legacy call surface (thin wrappers over submit)
    # ------------------------------------------------------------------
    def read(self, core: int, addr: int, now: int = 0) -> AccessResult:
        """A load accesses ``addr``; returns latency + the word's reveal bit."""
        pkt = self.submit(
            MemPacket.request(PacketKind.READ_REQ, core, addr, now)
        )
        assert pkt.latency is not None and pkt.level is not None
        return AccessResult(pkt.latency, pkt.revealed, pkt.level)

    def write(self, core: int, addr: int, now: int = 0) -> int:
        """A performed store writes ``addr``: obtain M, conceal the word."""
        pkt = self.submit(
            MemPacket.request(PacketKind.WRITE_REQ, core, addr, now)
        )
        assert pkt.latency is not None
        return pkt.latency

    def read_invisible(self, core: int, addr: int, now: int = 0) -> int:
        """An invisible (InvisiSpec-style) load: latency without state."""
        pkt = self.submit(
            MemPacket.request(PacketKind.INVISIBLE_REQ, core, addr, now)
        )
        assert pkt.latency is not None
        return pkt.latency

    def reveal(self, core: int, addr: int, now: int = 0) -> bool:
        """Mark ``addr``'s word revealed in the core's private copy.

        Returns False (and drops the request) if the line has left the
        private hierarchy — always safe, only a lost optimization
        (paper §5.1.1).
        """
        pkt = self.submit(
            MemPacket.request(PacketKind.REVEAL_REQ, core, addr, now)
        )
        return pkt.acknowledged

    def reveal_commit(self, core: int, addr: int, now: int) -> None:
        """Packet-free REVEAL_REQ for the hot path.

        Performs exactly the state and stat updates a submitted
        REVEAL_REQ would (port grant, private lookup with LRU touch,
        reveal bit, ``dropped_reveals``) without building a
        :class:`MemPacket` the caller would discard.  REVEAL_REQ never
        touches the NoC or DRAM, so the queue-cycle deltas ``submit``
        accumulates are identically zero here.  Not telemetry
        instrumented: traced runs go through :meth:`submit`.
        """
        priv = self._privs[core]
        port = priv.port
        if port.width is None:
            port.grants += 1
        else:
            self._stats[core].port_stall_cycles += port.acquire(now)
        line, level = self._private_lookup(core, line_addr(addr))
        if line is None or (level is not None and not self._tracks(level)):
            self.dropped_reveals += 1
            return
        line.reveal = recon_bits.reveal_word(line.reveal, addr)

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    @staticmethod
    def _observe_load(telemetry, latency: int, revealed: bool) -> None:
        """Record a completed load in the latency histograms."""
        telemetry.observe("load_latency", latency)
        if revealed:
            telemetry.observe("reveal_latency", latency)

    def _do_read(self, pkt: MemPacket) -> None:
        """Demand load: GetS on a private miss."""
        core, addr = pkt.core, pkt.addr
        stats = self._stats[core]
        laddr = pkt.line_addr
        priv = self._privs[core]
        now = self._txn_now
        assert now is not None

        telemetry = self.telemetry
        line, level = self._private_lookup(core, laddr)
        if level is CacheLevel.L1:
            stats.l1_hits += 1
            latency = self._pending_fill_latency(
                core, laddr, now, self.params.memory.l1.latency
            )
            revealed = recon_bits.is_word_revealed(line.reveal, addr)
            if telemetry.enabled:
                telemetry.emit(
                    CAT_CACHE, "l1_hit", core=core, addr=addr, value=latency
                )
                self._observe_load(telemetry, latency, revealed)
            pkt.complete(
                latency,
                level=level,
                reveal_vector=line.reveal,
                revealed=revealed,
            )
            return
        stats.l1_misses += 1
        if telemetry.enabled:
            telemetry.emit(CAT_CACHE, "l1_miss", core=core, addr=addr)
        if level is CacheLevel.L2:
            stats.l2_hits += 1
            assert line is not None
            vector = line.reveal
            revealed = recon_bits.is_word_revealed(vector, addr)
            # Promote into L1 (same coherence state).
            l1_line, victim = priv.l1.insert(
                laddr, line.state, self._vector_if_tracked(vector, CacheLevel.L1)
            )
            l1_line.dirty = line.dirty
            if victim is not None:
                self._evict_private_l1(core, victim)
            latency = self._pending_fill_latency(
                core, laddr, now, self.params.memory.l2.latency
            )
            if telemetry.enabled:
                telemetry.emit(
                    CAT_CACHE, "l2_hit", core=core, addr=addr, value=latency
                )
                self._observe_load(telemetry, latency, revealed)
            pkt.complete(
                latency, level=level, reveal_vector=vector, revealed=revealed
            )
            return
        stats.l2_misses += 1
        if telemetry.enabled:
            telemetry.emit(CAT_CACHE, "l2_miss", core=core, addr=addr)

        # Primary miss: claim an MSHR entry (stalls when the file is full),
        # then GetS to the directory.
        stall = priv.mshr.allocate(now)
        stats.mshr_stall_cycles += stall
        stats.coherence_transactions += 1
        dir_line, latency = self._llc_fetch(laddr, stats, core)
        if dir_line.owner is not None and dir_line.owner != core:
            latency += self._downgrade_owner(dir_line, stats)
        if dir_line.sharers - {core}:
            state = MESIState.SHARED
        else:
            state = MESIState.EXCLUSIVE
            # The directory tracks an E grant as ownership so a later GetS
            # knows whom to downgrade (E may silently have become M).
            dir_line.owner = core
        dir_line.sharers.add(core)
        vector = self._vector_if_tracked(dir_line.reveal, CacheLevel.LLC)
        revealed = recon_bits.is_word_revealed(vector, addr)
        self._fill_private(core, laddr, state, vector, stats)
        latency += stall
        priv.mshr.register_fill(laddr, now + latency, now)
        if self.params.memory.prefetch_next_line:
            self._prefetch(core, laddr + self.params.memory.l1.line_bytes, stats)
        if telemetry.enabled:
            self._observe_load(telemetry, latency, revealed)
        pkt.complete(
            latency,
            level=CacheLevel.LLC,
            reveal_vector=vector,
            revealed=revealed,
        )

    def _prefetch(self, core: int, laddr: int, stats: StatSet) -> None:
        """Pull ``laddr`` into the requester's L2 off the critical path.

        Only clean sharing is prefetched: if another core owns the line in
        E/M, the prefetch is dropped rather than forcing a downgrade.
        """
        line, _ = self._private_lookup(core, laddr)
        if line is not None:
            return
        dir_line = self.llc.lookup(laddr, touch=False)
        if dir_line is None:
            dir_line, _ = self._llc_fetch(laddr, stats, core)
        elif dir_line.owner is not None and dir_line.owner != core:
            return  # don't disturb a remote owner for a speculative fetch
        else:
            self._hop(src=core, dst=self.noc.home_node(laddr))
        state = (
            MESIState.EXCLUSIVE
            if not (dir_line.sharers - {core})
            else MESIState.SHARED
        )
        if state is MESIState.EXCLUSIVE:
            dir_line.owner = core
        dir_line.sharers.add(core)
        vector = self._vector_if_tracked(dir_line.reveal, CacheLevel.LLC)
        priv = self._privs[core]
        l2_vec = self._vector_if_tracked(vector, CacheLevel.L2)
        _, victim = priv.l2.insert(laddr, state, l2_vec)
        if victim is not None:
            self._evict_private_l2(core, victim, stats)

    def _do_write(self, pkt: MemPacket) -> None:
        """Performed store: obtain M, conceal the written word."""
        core, addr = pkt.core, pkt.addr
        stats = self._stats[core]
        laddr = pkt.line_addr
        priv = self._privs[core]
        now = self._txn_now
        assert now is not None
        line, level = self._private_lookup(core, laddr)

        if line is not None and line.state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
            # Hit with write permission (E upgrades to M silently).
            self._set_private_state(core, laddr, MESIState.MODIFIED)
            latency = self.params.memory.level(level).latency
        elif line is not None and line.state is MESIState.SHARED:
            # Upgrade: invalidate other sharers, take the directory vector.
            latency = self.params.memory.level(level).latency
            latency += self._acquire_modified(core, laddr, stats, own_vector=line.reveal)
        else:
            # Write miss: GetM.  Claims an MSHR entry (no merge target:
            # the ownership acquisition completes synchronously).
            stats.l1_misses += 1
            stats.l2_misses += 1
            if self.telemetry.enabled:
                self.telemetry.emit(CAT_CACHE, "l1_miss", core=core, addr=addr)
                self.telemetry.emit(CAT_CACHE, "l2_miss", core=core, addr=addr)
            stall = priv.mshr.allocate(now)
            stats.mshr_stall_cycles += stall
            latency = stall + self._acquire_modified(
                core, laddr, stats, own_vector=None
            )
            priv.mshr.register_write(laddr, now + latency, now)

        self._conceal_private(core, laddr, addr)
        stats.words_concealed += 1
        pkt.complete(latency, level=level)

    def _acquire_modified(
        self, core: int, laddr: int, stats: StatSet, own_vector: Optional[int]
    ) -> int:
        """GetM/upgrade: invalidate everyone else, install in M state."""
        stats.coherence_transactions += 1
        dir_line, latency = self._llc_fetch(laddr, stats, core)
        vector = dir_line.reveal
        if dir_line.owner is not None and dir_line.owner != core:
            # Owner passes data + vector straight to the next writer.
            owner = dir_line.owner
            owner_vec, owner_dirty = self._invalidate_private(owner, laddr)
            resp = self._transfer(
                PacketKind.RESP,
                owner,
                laddr,
                src=self.noc.home_node(laddr),
                dst=owner,
                vector=owner_vec,
            )
            assert resp.latency is not None and resp.reveal_vector is not None
            latency += resp.latency
            self._stats[owner].invalidations += 1
            vector = resp.reveal_vector
            dir_line.dirty = dir_line.dirty or owner_dirty
            dir_line.owner = None
            dir_line.sharers.discard(owner)
        for sharer in sorted(dir_line.sharers - {core}):
            # Invalidated readers lose their private vectors (footnote 1)
            # unless the preserve-on-invalidation optimization is on, in
            # which case the ack carries the vector to the writer (safe:
            # the writer conceals exactly the words it writes).
            sharer_vec, _ = self._invalidate_private(sharer, laddr)
            if self.params.preserve_invalidated_reveals:
                ack = self._transfer(
                    PacketKind.SNOOP,
                    sharer,
                    laddr,
                    src=self.noc.home_node(laddr),
                    dst=sharer,
                    vector=sharer_vec,
                )
                assert ack.latency is not None and ack.reveal_vector is not None
                vector = recon_bits.merge(vector, ack.reveal_vector)
                latency += ack.latency
            else:
                latency += self._hop(
                    src=self.noc.home_node(laddr), dst=sharer
                )
            self._stats[sharer].invalidations += 1
            stats.invalidations += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_COHERENCE, "invalidate", core=sharer, addr=laddr
                )
        dir_line.sharers = {core}
        dir_line.owner = core
        if own_vector is not None:
            # Upgrading sharer: keep its own reveals plus the directory's.
            vector = recon_bits.merge(own_vector, vector)
        self._fill_private(
            core,
            laddr,
            MESIState.MODIFIED,
            self._vector_if_tracked(vector, CacheLevel.LLC)
            if own_vector is None
            else vector,
            stats,
        )
        return latency

    def _set_private_state(self, core: int, laddr: int, state: MESIState) -> None:
        priv = self._privs[core]
        for array in (priv.l1, priv.l2):
            held = array.lookup(laddr, touch=False)
            if held is not None:
                held.state = state
                held.dirty = True
        dir_line = self.llc.lookup(laddr, touch=False)
        if dir_line is not None and state is MESIState.MODIFIED:
            dir_line.owner = core
            dir_line.sharers = {core}

    def _conceal_private(self, core: int, laddr: int, addr: int) -> None:
        priv = self._privs[core]
        for array in (priv.l1, priv.l2):
            held = array.lookup(laddr, touch=False)
            if held is not None:
                held.reveal = recon_bits.conceal_word(held.reveal, addr)
                held.dirty = True
        if self.telemetry.enabled:
            self.telemetry.emit(CAT_RECON, "conceal", core=core, addr=addr)

    def _do_invisible(self, pkt: MemPacket) -> None:
        """Invisible (InvisiSpec-style) load: latency without state.

        The value is obtained from wherever the line currently lives, but
        nothing is installed, no coherence state changes, no MSHR entry is
        made — so repeated speculative accesses to an uncached line pay
        the full distance every time.
        """
        core, addr = pkt.core, pkt.addr
        stats = self._stats[core]
        laddr = pkt.line_addr
        now = self._txn_now
        assert now is not None
        line, level = self._private_lookup(core, laddr)
        if level is CacheLevel.L1:
            pkt.complete(
                self._pending_fill_latency(
                    core, laddr, now, self.params.memory.l1.latency
                ),
                level=level,
            )
            return
        if level is CacheLevel.L2:
            pkt.complete(
                self._pending_fill_latency(
                    core, laddr, now, self.params.memory.l2.latency
                ),
                level=level,
            )
            return
        latency = self.params.memory.llc.latency + self._hop(
            src=core, dst=self.noc.home_node(laddr)
        )
        dir_line = self.llc.lookup(laddr, touch=False)
        if dir_line is None:
            stats.llc_misses += 1
            pkt.complete(
                latency + self.params.memory.dram_latency,
                level=CacheLevel.MEMORY,
            )
            return
        if dir_line.owner is not None and dir_line.owner != core:
            # Data comes from the remote owner (no downgrade: invisible).
            latency += (
                self._hop(
                    src=self.noc.home_node(laddr), dst=dir_line.owner
                )
                + self.params.memory.l2.latency
            )
        stats.llc_hits += 1
        pkt.complete(latency, level=CacheLevel.LLC)

    def _do_reveal(self, pkt: MemPacket) -> None:
        """LPT commit-time reveal of one word on the private copy."""
        core, addr = pkt.core, pkt.addr
        laddr = pkt.line_addr
        line, level = self._private_lookup(core, laddr)
        if line is None or (level is not None and not self._tracks(level)):
            self.dropped_reveals += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    CAT_RECON, "reveal_dropped", core=core, addr=addr
                )
            pkt.complete(0, level=level)
            return
        line.reveal = recon_bits.reveal_word(line.reveal, addr)
        if self.telemetry.enabled:
            self.telemetry.emit(CAT_RECON, "reveal", core=core, addr=addr)
        pkt.complete(0, level=level, reveal_vector=line.reveal, acknowledged=True)

    def peek_access(self, core: int, addr: int) -> "Tuple[bool, bool]":
        """Non-mutating probe: ``(would_hit_l1, word_revealed)``.

        Used by Delay-on-Miss-style policies that must decide *before*
        accessing the cache whether the access would be observable, and
        by ReCon-on-DoM to let revealed words miss under speculation.
        """
        laddr = line_addr(addr)
        priv = self._privs[core]
        l1_line = priv.l1.lookup(laddr, touch=False)
        if l1_line is not None:
            revealed = self._tracks(CacheLevel.L1) and recon_bits.is_word_revealed(
                l1_line.reveal, addr
            )
            return True, revealed
        return False, self.is_revealed_for(core, addr)

    # ------------------------------------------------------------------
    # introspection (tests, analysis)
    # ------------------------------------------------------------------
    def _pending_fill_latency(
        self, core: int, laddr: int, now: int, hit_latency: int
    ) -> int:
        """Merge with an in-flight fill of the same line (secondary miss)."""
        priv = self._privs[core]
        merged = priv.mshr.merge(laddr, now, hit_latency)
        if merged is None:
            return hit_latency
        self._stats[core].mshr_hits_under_miss += 1
        return merged

    def mshr_occupancy(self, core: int, now: int) -> int:
        """Outstanding MSHR entries of one core (telemetry/tests)."""
        return self._privs[core].mshr.occupancy(now)

    def private_line(
        self, core: int, addr: int, level: CacheLevel = CacheLevel.L1
    ) -> Optional[CacheLine]:
        """Peek a private line without touching LRU (tests only)."""
        priv = self._privs[core]
        array = priv.l1 if level is CacheLevel.L1 else priv.l2
        return array.lookup(line_addr(addr), touch=False)

    def llc_line(self, addr: int) -> Optional[CacheLine]:
        """Peek the LLC/directory line without touching LRU (tests only)."""
        return self.llc.lookup(line_addr(addr), touch=False)

    def is_revealed_for(self, core: int, addr: int) -> bool:
        """Would a load by ``core`` observe the word revealed right now?

        Non-mutating approximation used by tests: checks the private copy,
        then the directory copy (which is what a miss would return when no
        remote owner exists).
        """
        laddr = line_addr(addr)
        line, level = self._private_lookup(core, laddr)
        if line is not None and level is not None:
            if not self._tracks(level):
                return False
            return recon_bits.is_word_revealed(line.reveal, addr)
        dir_line = self.llc.lookup(laddr, touch=False)
        if dir_line is None or not self._tracks(CacheLevel.LLC):
            return False
        if dir_line.owner is not None and dir_line.owner != core:
            vector = self._authoritative_vector(dir_line.owner, laddr)
            return recon_bits.is_word_revealed(vector, addr)
        return recon_bits.is_word_revealed(dir_line.reveal, addr)

    def check_coherence_invariants(self) -> None:
        """Assert MESI safety invariants (property tests call this).

        * a line with an owner has no other sharers' copies in M/E;
        * at most one private copy is in M or E across all cores;
        * every private copy is backed by an LLC/directory line (inclusion);
        * directory sharer sets cover every core holding a copy;
        * no interconnect message fell back to the averaged-distance
          charge (every hop named real endpoints).
        """
        if self.noc.averaged_hops:
            raise AssertionError(
                f"{self.noc.averaged_hops} interconnect messages used the"
                " average-distance fallback instead of real endpoints"
            )
        held: Dict[int, List[Tuple[int, MESIState]]] = {}
        for core, priv in enumerate(self._privs):
            seen = set()
            for array in (priv.l1, priv.l2):
                for line in array:
                    if line.addr in seen:
                        continue
                    seen.add(line.addr)
                    held.setdefault(line.addr, []).append((core, line.state))
        for laddr, holders in held.items():
            dir_line = self.llc.lookup(laddr, touch=False)
            if dir_line is None:
                raise AssertionError(f"inclusion violated for {laddr:#x}")
            exclusive = [
                (core, st)
                for core, st in holders
                if st in (MESIState.MODIFIED, MESIState.EXCLUSIVE)
            ]
            if len(exclusive) > 1:
                raise AssertionError(
                    f"multiple exclusive copies of {laddr:#x}: {exclusive}"
                )
            if exclusive and len(holders) > 1:
                raise AssertionError(
                    f"exclusive copy of {laddr:#x} coexists with sharers"
                )
            if exclusive and dir_line.owner != exclusive[0][0]:
                raise AssertionError(
                    f"directory owner for {laddr:#x} is {dir_line.owner},"
                    f" but core {exclusive[0][0]} holds {exclusive[0][1].value}"
                )
            for core, _ in holders:
                if core not in dir_line.sharers and dir_line.owner != core:
                    raise AssertionError(
                        f"directory does not track core {core} for {laddr:#x}"
                    )
