"""On-chip interconnect models.

The paper uses GARNET for cycle-accurate network simulation; here the
network contributes per-message latency — constant for the default
crossbar, distance-dependent for the optional 2D mesh.  Both count
traffic so the coherence benches can report message volumes.

Node numbering: cores are nodes ``0..num_cores-1``; the directory/LLC is
addressed per line through :meth:`MeshInterconnect.home_node`, modeling
an address-interleaved banked LLC.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["FixedLatencyInterconnect", "MeshInterconnect"]


class FixedLatencyInterconnect:
    """Crossbar-ish network with constant per-message latency."""

    def __init__(self, hop_latency: int) -> None:
        if hop_latency < 0:
            raise ValueError("hop latency may not be negative")
        self.hop_latency = hop_latency
        self.messages = 0
        #: Messages that carried a ReCon bit-vector payload.
        self.bitvector_messages = 0

    def hop(
        self,
        carries_bitvector: bool = False,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> int:
        """Account one message; returns its latency contribution."""
        self.messages += 1
        if carries_bitvector:
            self.bitvector_messages += 1
        return self._latency(src, dst)

    def _latency(self, src: Optional[int], dst: Optional[int]) -> int:
        return self.hop_latency

    def home_node(self, line_addr: int) -> Optional[int]:
        """Directory bank for a line; a crossbar has a single home."""
        return None


class MeshInterconnect(FixedLatencyInterconnect):
    """A ``rows x cols`` 2D mesh with XY routing.

    Latency of a message is ``link_latency * manhattan_distance`` (with a
    one-link minimum); messages without endpoints pay the average
    distance, so protocol code that does not know its endpoints still
    accounts sanely.
    """

    def __init__(self, rows: int, cols: int, link_latency: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("mesh dimensions must be positive")
        super().__init__(link_latency)
        self.rows = rows
        self.cols = cols

    @property
    def nodes(self) -> int:
        return self.rows * self.cols

    def _coords(self, node: int) -> "tuple[int, int]":
        node %= self.nodes
        return node // self.cols, node % self.cols

    def distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes (minimum one link)."""
        r1, c1 = self._coords(src)
        r2, c2 = self._coords(dst)
        return max(1, abs(r1 - r2) + abs(c1 - c2))

    def home_node(self, line_addr: int) -> int:
        """Directory bank for a line (address-interleaved)."""
        return (line_addr >> 6) % self.nodes

    def _latency(self, src: Optional[int], dst: Optional[int]) -> int:
        if src is None or dst is None:
            # Average hop distance of a mesh ~ (rows+cols)/3, min 1.
            avg = max(1, (self.rows + self.cols) // 3)
            return self.hop_latency * avg
        return self.hop_latency * self.distance(src, dst)
