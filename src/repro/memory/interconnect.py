"""On-chip interconnect models.

The paper uses GARNET for cycle-accurate network simulation; here the
network contributes per-message latency — constant for the default
crossbar, distance-dependent for the optional 2D mesh.  Both count
traffic so the coherence benches can report message volumes.

Node numbering: cores are nodes ``0..num_cores-1``; the directory/LLC is
addressed per line through :meth:`MeshInterconnect.home_node`, modeling
an address-interleaved banked LLC.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["FixedLatencyInterconnect", "MeshInterconnect"]


class FixedLatencyInterconnect:
    """Crossbar-ish network with constant per-message latency.

    With ``link_width`` set, at most that many messages are injected per
    cycle; later messages queue and pay the wait on top of the wire
    latency.  Unbounded (``None``, the default) injection adds zero
    delay, which the contention-free parity suite relies on.
    """

    def __init__(
        self, hop_latency: int, link_width: Optional[int] = None
    ) -> None:
        if hop_latency < 0:
            raise ValueError("hop latency may not be negative")
        if link_width is not None and link_width <= 0:
            raise ValueError("link width must be positive (or None)")
        self.hop_latency = hop_latency
        self.link_width = link_width
        self.messages = 0
        #: Messages that carried a ReCon bit-vector payload.
        self.bitvector_messages = 0
        #: Messages charged the average-distance fallback because the
        #: caller did not supply endpoints.  Protocol code is expected to
        #: keep this at zero (asserted by the coherence invariants).
        self.averaged_hops = 0
        #: Total cycles messages spent queued for a link slot.
        self.queue_cycles = 0
        self._grants: Dict[int, int] = {}

    def hop(
        self,
        carries_bitvector: bool = False,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        now: Optional[int] = None,
    ) -> int:
        """Account one message; returns its latency contribution.

        ``now`` enables the bounded-bandwidth model: when the link width
        is exhausted for the current cycle the message is granted a slot
        on a later cycle and the wait is included in the returned
        latency.
        """
        self.messages += 1
        if carries_bitvector:
            self.bitvector_messages += 1
        wait = 0
        if self.link_width is not None and now is not None:
            wait = self._inject(now)
            self.queue_cycles += wait
        return wait + self._latency(src, dst)

    def _inject(self, now: int) -> int:
        """Grant a link slot at or after ``now``; return the wait."""
        if len(self._grants) > 4 * (self.link_width or 1) + 64:
            self._grants = {
                cycle: count
                for cycle, count in self._grants.items()
                if cycle >= now
            }
        cycle = now
        while self._grants.get(cycle, 0) >= self.link_width:
            cycle += 1
        self._grants[cycle] = self._grants.get(cycle, 0) + 1
        return cycle - now

    def queue_depth(self, now: int) -> int:
        """Messages already granted slots strictly after ``now``."""
        return sum(
            count for cycle, count in self._grants.items() if cycle > now
        )

    def _latency(self, src: Optional[int], dst: Optional[int]) -> int:
        return self.hop_latency

    def home_node(self, line_addr: int) -> Optional[int]:
        """Directory bank for a line; a crossbar has a single home."""
        return None


class MeshInterconnect(FixedLatencyInterconnect):
    """A ``rows x cols`` 2D mesh with XY routing.

    Latency of a message is ``link_latency * manhattan_distance`` (with a
    one-link minimum); messages without endpoints pay the average
    distance, so protocol code that does not know its endpoints still
    accounts sanely.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        link_latency: int,
        link_width: Optional[int] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("mesh dimensions must be positive")
        super().__init__(link_latency, link_width)
        self.rows = rows
        self.cols = cols

    @property
    def nodes(self) -> int:
        return self.rows * self.cols

    def _coords(self, node: int) -> "tuple[int, int]":
        node %= self.nodes
        return node // self.cols, node % self.cols

    def distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes (minimum one link)."""
        r1, c1 = self._coords(src)
        r2, c2 = self._coords(dst)
        return max(1, abs(r1 - r2) + abs(c1 - c2))

    def home_node(self, line_addr: int) -> int:
        """Directory bank for a line (address-interleaved)."""
        return (line_addr >> 6) % self.nodes

    def _latency(self, src: Optional[int], dst: Optional[int]) -> int:
        if src is None or dst is None:
            # Average hop distance of a mesh ~ (rows+cols)/3, min 1.
            # Counted so protocol code that loses its endpoints is caught
            # by the coherence invariants instead of silently mispricing.
            self.averaged_hops += 1
            avg = max(1, (self.rows + self.cols) // 3)
            return self.hop_latency * avg
        return self.hop_latency * self.distance(src, dst)
