"""Master/slave ports with bounded per-cycle bandwidth.

A core's LSU owns a :class:`MasterPort`; the hierarchy exposes one
:class:`SlavePort` per core.  A port pair admits at most ``width``
request packets per cycle — the (N+1)-th request of a cycle is granted a
start slot on a later cycle and pays the wait as extra latency.  With
``width=None`` (the default) grants are free and instantaneous, which is
the contention-free configuration the parity suite pins down.

The accounting is analytic rather than event-driven on purpose: the
grant table only records how many packets started on which cycle, so an
unbounded port costs nothing and a bounded one needs no global
arbitration pass.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["BandwidthPort", "MasterPort", "SlavePort"]


class BandwidthPort:
    """Grant counter for one direction of a port pair."""

    def __init__(self, width: Optional[int] = None) -> None:
        if width is not None and width <= 0:
            raise ValueError("port width must be positive (or None)")
        self.width = width
        self.grants = 0
        #: Total cycles packets waited for a grant.
        self.stall_cycles = 0
        self._granted: Dict[int, int] = {}

    def acquire(self, now: int) -> int:
        """Grant a slot at or after ``now``; return the wait in cycles."""
        self.grants += 1
        if self.width is None:
            return 0
        if len(self._granted) > 4 * self.width + 64:
            self._granted = {
                cycle: count
                for cycle, count in self._granted.items()
                if cycle >= now
            }
        cycle = now
        while self._granted.get(cycle, 0) >= self.width:
            cycle += 1
        self._granted[cycle] = self._granted.get(cycle, 0) + 1
        wait = cycle - now
        self.stall_cycles += wait
        return wait

    def pending(self, now: int) -> int:
        """Packets granted slots strictly after ``now``."""
        if self.width is None:
            return 0
        return sum(
            count for cycle, count in self._granted.items() if cycle > now
        )


class MasterPort(BandwidthPort):
    """Request side: the core injecting packets into the hierarchy."""


class SlavePort(BandwidthPort):
    """Response side: the hierarchy accepting packets from one core."""
