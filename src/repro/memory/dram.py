"""Main-memory model.

DRAM in this reproduction is a flat latency source: ReCon stores no reveal
bits in memory, so a line refetched from DRAM always arrives fully
concealed (paper §5.2).
"""

from __future__ import annotations

__all__ = ["MainMemory"]


class MainMemory:
    """Fixed-latency DRAM endpoint."""

    def __init__(self, latency: int) -> None:
        if latency <= 0:
            raise ValueError("DRAM latency must be positive")
        self.latency = latency
        self.reads = 0
        self.writebacks = 0

    def fetch(self) -> int:
        """Fetch a line; returns the access latency in cycles."""
        self.reads += 1
        return self.latency

    def writeback(self) -> int:
        """Write a dirty line back; returns the (posted) latency."""
        self.writebacks += 1
        return 0  # posted write: does not stall the evicting cache
