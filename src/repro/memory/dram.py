"""Main-memory model.

DRAM in this reproduction is a flat latency source: ReCon stores no reveal
bits in memory, so a line refetched from DRAM always arrives fully
concealed (paper §5.2).

With ``queue_depth`` bounded, the channel tracks outstanding reads: a
fetch issued while the queue is full waits for the earliest in-flight
read to complete before starting.  Unbounded (the default) fetches never
queue, preserving legacy latencies.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

__all__ = ["MainMemory"]


class MainMemory:
    """Fixed-latency DRAM endpoint with an optional bounded read queue."""

    def __init__(
        self, latency: int, queue_depth: Optional[int] = None
    ) -> None:
        if latency <= 0:
            raise ValueError("DRAM latency must be positive")
        if queue_depth is not None and queue_depth <= 0:
            raise ValueError("DRAM queue depth must be positive (or None)")
        self.latency = latency
        self.queue_depth = queue_depth
        self.reads = 0
        self.writebacks = 0
        #: Total cycles fetches spent waiting for a queue slot.
        self.queue_cycles = 0
        self._inflight: List[int] = []  # completion times, min-heap

    def fetch(self, now: Optional[int] = None) -> int:
        """Fetch a line; returns the access latency in cycles.

        ``now`` enables the bounded channel: with the queue full, the
        fetch starts when the earliest outstanding read retires, and the
        wait is included in the returned latency.
        """
        self.reads += 1
        if self.queue_depth is None or now is None:
            return self.latency
        while self._inflight and self._inflight[0] <= now:
            heapq.heappop(self._inflight)
        start = now
        if len(self._inflight) >= self.queue_depth:
            # Take over the slot of the earliest outstanding read: it has
            # completed by the time this fetch starts.
            start = max(start, heapq.heappop(self._inflight))
        heapq.heappush(self._inflight, start + self.latency)
        wait = start - now
        self.queue_cycles += wait
        return wait + self.latency

    def outstanding(self, now: int) -> int:
        """Reads still in flight at ``now`` (bounded channel only)."""
        return sum(1 for done in self._inflight if done > now)

    def writeback(self) -> int:
        """Write a dirty line back; returns the (posted) latency."""
        self.writebacks += 1
        return 0  # posted write: does not stall the evicting cache
