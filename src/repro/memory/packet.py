"""Typed memory packets.

Every request the pipeline sends into the memory hierarchy — and every
coherence message the hierarchy generates on its behalf — is modeled as
a :class:`MemPacket`.  Packets are the *only* carriers of ReCon reveal
bit-vectors between modules (paper §5.2–5.3: reveal/conceal state rides
on coherence transactions, never on a side channel), so the pipeline
reads reveal outcomes from the response payload rather than peeking at
cache internals.

A packet's life cycle::

    pkt = MemPacket.request(PacketKind.READ_REQ, core_id, addr, now)
    hierarchy.submit(pkt)          # turns the request into a response
    pkt.ready_at                   # completion time (issue + latency)
    pkt.word_revealed()            # ReCon payload consultation

``on_complete`` lets the issuer attach a callback fired by the event
queue when the response lands, which is how non-blocking loads deliver
their data without the core polling.

``MemPacket`` is a hand-written ``__slots__`` class rather than a
dataclass: one packet is allocated per memory transaction, which makes
construction cost part of the simulator's hot path (dataclass
``__init__`` plus ``__dict__`` allocation measurably slowed miss-heavy
cells; ``slots=True`` needs Python 3.10+ while CI still runs 3.9).
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.common.types import CacheLevel, line_addr
from repro.memory import recon_bits

__all__ = ["MemPacket", "PacketKind"]


class PacketKind(enum.Enum):
    """What a packet asks for (requests) or reports (responses)."""

    #: Demand load (GetS when it misses).
    READ_REQ = "read_req"
    #: Store/ownership acquisition (GetM/upgrade when needed).
    WRITE_REQ = "write_req"
    #: Invisible-speculation load: data without installing state.
    INVISIBLE_REQ = "invisible_req"
    #: LPT commit-time reveal of one word (paper §5.1).
    REVEAL_REQ = "reveal_req"
    #: Data/ack response to any of the above.
    RESP = "resp"
    #: Directory-initiated downgrade/invalidate probe.
    SNOOP = "snoop"
    #: Dirty-line eviction toward the next level / DRAM.
    WRITEBACK = "writeback"

    @property
    def is_request(self) -> bool:
        return self in _REQUEST_KINDS


_REQUEST_KINDS = frozenset(
    {
        PacketKind.READ_REQ,
        PacketKind.WRITE_REQ,
        PacketKind.INVISIBLE_REQ,
        PacketKind.REVEAL_REQ,
    }
)

_packet_ids = itertools.count()


class MemPacket:
    """One memory transaction (request that mutates into its response).

    ``src``/``dst`` are interconnect node ids: cores are nodes
    ``0..num_cores-1``; the directory bank of a line is
    ``interconnect.home_node(line_addr)`` (``None`` on a crossbar,
    which has a single home).  ``reveal_vector`` is the ReCon payload:
    the line's reveal bits as seen by the responder, ``None`` until a
    response carrying them arrives.
    """

    __slots__ = (
        "kind",
        "core",
        "addr",
        "issued_at",
        "src",
        "dst",
        "packet_id",
        "latency",
        "level",
        "reveal_vector",
        "revealed",
        "acknowledged",
        "on_complete",
    )

    def __init__(
        self,
        kind: PacketKind,
        core: int,
        addr: int,
        issued_at: int,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        packet_id: Optional[int] = None,
        latency: Optional[int] = None,
        level: Optional[CacheLevel] = None,
        reveal_vector: Optional[int] = None,
        revealed: bool = False,
        acknowledged: bool = False,
        on_complete: Optional[Callable[["MemPacket"], None]] = None,
    ) -> None:
        self.kind = kind
        self.core = core
        self.addr = addr
        self.issued_at = issued_at
        self.src = src
        self.dst = dst
        #: Monotonic id for tracing/debugging.
        self.packet_id = (
            next(_packet_ids) if packet_id is None else packet_id
        )
        #: Filled in by the hierarchy when the transaction completes.
        self.latency = latency
        self.level = level
        #: ReCon bit-vector payload (None = not carried / not applicable).
        self.reveal_vector = reveal_vector
        #: Whether the requested word was revealed *and* visible to the core.
        self.revealed = revealed
        #: For REVEAL_REQ: whether the reveal took effect (line present).
        self.acknowledged = acknowledged
        #: Fired by the event queue when the response lands.
        self.on_complete = on_complete

    @classmethod
    def request(
        cls,
        kind: PacketKind,
        core: int,
        addr: int,
        issued_at: int,
        on_complete: Optional[Callable[["MemPacket"], None]] = None,
    ) -> "MemPacket":
        """Build a request packet originating at ``core``'s node."""
        if kind not in _REQUEST_KINDS:
            raise ValueError(f"{kind} is not a request kind")
        return cls(
            kind,
            core,
            addr,
            issued_at,
            src=core,
            on_complete=on_complete,
        )

    @property
    def line_addr(self) -> int:
        return line_addr(self.addr)

    @property
    def is_response(self) -> bool:
        return self.latency is not None

    @property
    def ready_at(self) -> int:
        """Cycle the response data is available at the requester."""
        if self.latency is None:
            raise ValueError("packet has not completed yet")
        return self.issued_at + self.latency

    def word_revealed(self, addr: Optional[int] = None) -> bool:
        """Consult the carried bit-vector for one word's reveal state."""
        if self.reveal_vector is None:
            return False
        return recon_bits.is_word_revealed(
            self.reveal_vector, self.addr if addr is None else addr
        )

    def complete(
        self,
        latency: int,
        *,
        level: Optional[CacheLevel] = None,
        reveal_vector: Optional[int] = None,
        revealed: bool = False,
        acknowledged: bool = False,
    ) -> "MemPacket":
        """Mutate this request into its response; returns self."""
        self.latency = latency
        self.level = level
        self.reveal_vector = reveal_vector
        self.revealed = revealed
        self.acknowledged = acknowledged
        return self

    def fire(self) -> None:
        """Invoke the completion callback, if any (idempotent)."""
        callback, self.on_complete = self.on_complete, None
        if callback is not None:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"resp@{self.ready_at}" if self.latency is not None else "req"
        return (
            f"<MemPacket #{self.packet_id} {self.kind.value} core={self.core}"
            f" [{self.addr:#x}] {state}>"
        )
