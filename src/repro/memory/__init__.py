"""Memory hierarchy: caches, MESI directory coherence, ReCon bit-vectors."""

from repro.memory.cache import CacheArray, CacheLine
from repro.memory.dram import MainMemory
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.interconnect import FixedLatencyInterconnect

__all__ = [
    "AccessResult",
    "CacheArray",
    "CacheLine",
    "FixedLatencyInterconnect",
    "MainMemory",
    "MemoryHierarchy",
]
