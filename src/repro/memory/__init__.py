"""Memory hierarchy: caches, MESI directory coherence, ReCon bit-vectors.

The core-facing interface is the packet/port transaction engine:
:class:`MemPacket` requests submitted through
:meth:`MemoryHierarchy.submit`, with per-core :class:`MSHRFile` s and
bandwidth-bounded ports supplying the contention model.
"""

from repro.memory.cache import CacheArray, CacheLine
from repro.memory.dram import MainMemory
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.interconnect import FixedLatencyInterconnect, MeshInterconnect
from repro.memory.mshr import MSHRFile
from repro.memory.packet import MemPacket, PacketKind
from repro.memory.ports import BandwidthPort, MasterPort, SlavePort

__all__ = [
    "AccessResult",
    "BandwidthPort",
    "CacheArray",
    "CacheLine",
    "FixedLatencyInterconnect",
    "MSHRFile",
    "MainMemory",
    "MasterPort",
    "MemPacket",
    "MemoryHierarchy",
    "MeshInterconnect",
    "PacketKind",
    "SlavePort",
]
