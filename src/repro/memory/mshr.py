"""Miss Status Holding Registers.

One :class:`MSHRFile` per core tracks that core's outstanding misses,
replacing the ad-hoc ``fills`` dict of the pre-packet hierarchy:

* a **primary miss** allocates an entry holding the fill's completion
  time; with ``entries`` bounded and the file full, allocation stalls
  until enough outstanding fills retire to free a slot;
* a **secondary miss** (another access to a line whose fill is in
  flight) merges into the existing entry instead of re-requesting the
  line — the requester waits for the outstanding fill, paying
  ``max(hit_latency, ready - now)``, exactly the legacy
  hit-under-fill rule;
* entries retire implicitly when their fill time passes, and are
  dropped eagerly when the line leaves the private hierarchy
  (eviction/invalidation), so a re-fetched line is never merged into a
  stale fill.

Write misses occupy an entry (they hold an MSHR in real hardware) but
never become merge targets: the legacy model completes the ownership
acquisition synchronously and never registered write fills, and the
parity suite keeps it that way.

Expiry is batched through a min-heap of ``(ready, line, is_write)``
entries rather than rebuilding the occupancy dicts on every query (the
old ``_prune`` rebuilt both dicts per occupancy check, which showed up
in miss-heavy profiles).  Heap entries can go stale — a line retired
eagerly or re-registered with a new fill time leaves its old entry
behind — so a popped entry only deletes the dict slot when the recorded
ready time still matches.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

__all__ = ["MSHRFile"]


class MSHRFile:
    """Outstanding-miss tracking for one core's private hierarchy."""

    __slots__ = (
        "entries",
        "hits_under_miss",
        "stall_cycles",
        "peak_occupancy",
        "_fills",
        "_writes",
        "_expiry",
    )

    def __init__(self, entries: Optional[int] = None) -> None:
        if entries is not None and entries <= 0:
            raise ValueError("MSHR entries must be positive (or None)")
        self.entries = entries
        #: Secondary misses merged into an outstanding entry.
        self.hits_under_miss = 0
        #: Cycles primary misses stalled waiting for a free entry.
        self.stall_cycles = 0
        #: High-water mark of simultaneously occupied entries.
        self.peak_occupancy = 0
        self._fills: Dict[int, int] = {}  # line -> fill completion time
        self._writes: Dict[int, int] = {}  # line -> ack time (no merging)
        #: (ready, line, is_write) min-heap driving batched expiry.
        self._expiry: List[Tuple[int, int, bool]] = []

    # -- occupancy -----------------------------------------------------

    def _prune(self, now: int) -> None:
        expiry = self._expiry
        fills = self._fills
        writes = self._writes
        while expiry and expiry[0][0] <= now:
            ready, line, is_write = heappop(expiry)
            table = writes if is_write else fills
            if table.get(line) == ready:
                del table[line]

    def occupancy(self, now: int) -> int:
        """Entries outstanding at ``now``."""
        self._prune(now)
        return len(self._fills) + len(self._writes)

    # -- allocation ----------------------------------------------------

    def allocate(self, now: int) -> int:
        """Claim a free entry at or after ``now``; return the stall.

        Unbounded files never stall.  A full bounded file stalls the
        primary miss until the earliest outstanding fill retires.
        """
        if self.entries is None:
            return 0
        occupancy = self.occupancy(now)
        if occupancy < self.entries:
            return 0
        # Stall until enough of the earliest completions free a slot.
        readies = sorted(self._fills.values()) + sorted(
            self._writes.values()
        )
        readies.sort()
        free_at = readies[occupancy - self.entries]
        stall = max(0, free_at - now)
        self.stall_cycles += stall
        return stall

    def register_fill(self, line_addr: int, ready: int, now: int) -> None:
        """Record a read primary miss: line fills at ``ready``."""
        self._fills[line_addr] = ready
        heappush(self._expiry, (ready, line_addr, False))
        self._note_peak(now)

    def register_write(self, line_addr: int, ready: int, now: int) -> None:
        """Record a write miss: occupies an entry, never a merge target."""
        self._writes[line_addr] = ready
        heappush(self._expiry, (ready, line_addr, True))
        self._note_peak(now)

    def _note_peak(self, now: int) -> None:
        occupancy = self.occupancy(now)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy

    # -- secondary misses ----------------------------------------------

    def pending_ready(self, line_addr: int, now: int) -> Optional[int]:
        """Completion time of an in-flight fill for ``line_addr``.

        ``None`` when no fill is outstanding (or it already landed).
        """
        ready = self._fills.get(line_addr)
        if ready is not None and ready > now:
            return ready
        return None

    def merge(self, line_addr: int, now: int, hit_latency: int) -> Optional[int]:
        """Merge a secondary access into an outstanding fill.

        Returns the access latency (never less than ``hit_latency``), or
        ``None`` when there is nothing to merge into.
        """
        ready = self.pending_ready(line_addr, now)
        if ready is None:
            return None
        self.hits_under_miss += 1
        return max(hit_latency, ready - now)

    # -- retirement ----------------------------------------------------

    def retire(self, line_addr: int) -> None:
        """Drop the entry for a line leaving the private hierarchy."""
        self._fills.pop(line_addr, None)
        self._writes.pop(line_addr, None)
