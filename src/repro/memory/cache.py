"""Set-associative cache arrays.

:class:`CacheArray` is pure storage — tags, per-line metadata, true-LRU
replacement.  Coherence state transitions live in
:mod:`repro.memory.hierarchy`; this module only guarantees the structural
invariants (capacity, associativity, LRU order).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.common.params import CacheParams
from repro.common.types import MESIState

__all__ = ["CacheLine", "CacheArray"]


class CacheLine:
    """Metadata for one resident cache line.

    The simulator never stores data contents (values travel with the trace);
    a line is its tag plus coherence and ReCon metadata.  The directory
    fields (``owner``/``sharers``) are only used on LLC lines, where the
    in-cache directory lives.
    """

    __slots__ = ("addr", "state", "reveal", "dirty", "lru", "owner", "sharers")

    def __init__(self, addr: int, state: MESIState, reveal: int = 0) -> None:
        self.addr = addr
        self.state = state
        self.reveal = reveal
        self.dirty = False
        self.lru = 0
        self.owner: Optional[int] = None
        self.sharers: Set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Line {self.addr:#x} {self.state.value}"
            f" reveal={self.reveal:#04x}{' dirty' if self.dirty else ''}>"
        )


class CacheArray:
    """A set-associative array of :class:`CacheLine` with true LRU."""

    def __init__(self, params: CacheParams) -> None:
        params.validate()
        self.params = params
        self.num_sets = params.num_sets
        self.ways = params.ways
        self._line_shift = params.line_bytes.bit_length() - 1
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(self.num_sets)]
        self._tick = 0
        #: Capacity evictions performed by :meth:`insert` (telemetry).
        self.evictions = 0

    def _set_for(self, line_addr: int) -> Dict[int, CacheLine]:
        return self._sets[(line_addr >> self._line_shift) % self.num_sets]

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for ``line_addr`` or ``None``.

        ``touch`` updates the LRU position (set it False for directory
        snoops that should not perturb replacement).
        """
        line = self._set_for(line_addr).get(line_addr)
        if line is not None and touch:
            self._tick += 1
            line.lru = self._tick
        return line

    def insert(
        self, line_addr: int, state: MESIState, reveal: int = 0
    ) -> "tuple[CacheLine, Optional[CacheLine]]":
        """Insert a line, returning ``(new_line, victim_or_None)``.

        The victim is removed from the array; the caller is responsible for
        its writeback/coherence consequences.  Inserting an already-present
        address replaces its metadata in place (no victim).
        """
        target = self._set_for(line_addr)
        existing = target.get(line_addr)
        self._tick += 1
        if existing is not None:
            existing.state = state
            existing.reveal = reveal
            existing.lru = self._tick
            return existing, None
        victim = None
        if len(target) >= self.ways:
            victim_addr = min(target, key=lambda a: target[a].lru)
            victim = target.pop(victim_addr)
            self.evictions += 1
        line = CacheLine(line_addr, state, reveal)
        line.lru = self._tick
        target[line_addr] = line
        return line, victim

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        """Remove and return the line, or ``None`` if absent."""
        return self._set_for(line_addr).pop(line_addr, None)

    def __iter__(self) -> Iterator[CacheLine]:
        for cache_set in self._sets:
            yield from cache_set.values()

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def set_occupancy(self, line_addr: int) -> int:
        """Number of resident lines in ``line_addr``'s set (for tests)."""
        return len(self._set_for(line_addr))
