"""Reveal/conceal bit-vector helpers.

A bit-vector is stored as a plain ``int`` bitmask with one bit per aligned
8-byte word of a cache line (bit ``i`` set means word ``i`` is *revealed*).
A freshly fetched line is all zeros — everything concealed (paper §5.2).
"""

from __future__ import annotations

from repro.common.types import WORDS_PER_LINE, word_index

__all__ = [
    "ALL_CONCEALED",
    "FULL_MASK",
    "reveal_word",
    "conceal_word",
    "is_word_revealed",
    "merge",
    "popcount",
]

#: Vector value with every word concealed.
ALL_CONCEALED = 0

#: Mask with a bit for every word in a line.
FULL_MASK = (1 << WORDS_PER_LINE) - 1


def reveal_word(vector: int, addr: int) -> int:
    """Return ``vector`` with the bit for ``addr``'s word set."""
    return vector | (1 << word_index(addr))


def conceal_word(vector: int, addr: int) -> int:
    """Return ``vector`` with the bit for ``addr``'s word cleared."""
    return vector & ~(1 << word_index(addr)) & FULL_MASK


def is_word_revealed(vector: int, addr: int) -> bool:
    """True if the word containing ``addr`` is revealed in ``vector``."""
    return bool(vector & (1 << word_index(addr)))


def merge(a: int, b: int) -> int:
    """OR-merge two vectors (the eviction rule of paper §5.3)."""
    return (a | b) & FULL_MASK


def popcount(vector: int) -> int:
    """Number of revealed words in ``vector``."""
    return bin(vector & FULL_MASK).count("1")
