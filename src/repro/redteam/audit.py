"""Second-order metadata audit: is the protection's own metadata a channel?

A scheme that blocks the cache side channel can still leak through its
*protection metadata*: which loads it delayed and for how long, how many
reveal-bit lookups hit, how much taint it propagated.  An attacker who
can see those signals (a co-tenant reading shared performance counters,
a profiling interface) would learn the secret without ever touching the
cache.

The audit plays that attacker.  For each protected scheme it runs
matched pairs of gadget trials — same benign noise seed, *different
secret value* — with telemetry enabled, extracts a feature vector of
scheme-visible metadata per run (delay/taint/reveal counters plus the
per-load ``delay_cycles`` histogram buckets), and scores every feature
as a one-dimensional classifier of "which secret was it?" via the
Mann-Whitney U statistic (midrank AUC).  If the metadata is independent
of the secret, matched trials produce *identical* features and every
AUC is exactly 0.5; the acceptance band is ``[0.4, 0.6]``.

The positive control (:func:`control_audit`) proves the classifier has
teeth: under the unsafe baseline with *timing* features and a secret
that selects a warm vs. cold transmit target, the AUC saturates.

The audit always runs with telemetry, which forces the reference core
(the optimized FastCore carries no instrumentation) — see
:func:`repro.redteam.harness.hotpath_note`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import SystemParams
from repro.common.types import SchemeKind
from repro.redteam.harness import hotpath_note
from repro.sim.system import System
from repro.telemetry.events import TelemetryConfig
from repro.workloads.gadgets import build_gadget, get_gadget

__all__ = [
    "AUDIT_STAT_FEATURES",
    "AuditResult",
    "PROTECTED_SCHEMES",
    "audit_all",
    "audit_scheme",
    "control_audit",
    "mann_whitney_auc",
]

#: The matrix's protected columns — every one must pass the audit.
PROTECTED_SCHEMES: Tuple[SchemeKind, ...] = (
    SchemeKind.NDA,
    SchemeKind.STT,
    SchemeKind.NDA_RECON,
    SchemeKind.STT_RECON,
    SchemeKind.DOM,
)

#: StatSet fields that are protection metadata (visible to a co-tenant
#: through scheme-level counters, unlike raw cache contents).
AUDIT_STAT_FEATURES: Tuple[str, ...] = (
    "delayed_loads",
    "delay_cycles",
    "tainted_loads",
    "deferred_broadcasts",
    "reveal_hits",
    "reveal_misses",
    "load_pairs_detected",
    "lpt_conflicts",
    "words_concealed",
    "bitvector_merges",
)

#: Timing/footprint features for the unsafe positive control.
_CONTROL_FEATURES: Tuple[str, ...] = (
    "cycles",
    "l1_hits",
    "l1_misses",
    "l2_misses",
    "llc_misses",
)

#: The two candidate secrets: word-aligned pointers to two different
#: always-cold lines (matched trials differ in nothing else).
_SECRET_A = 0x7000
_SECRET_B = 0x7800


def mann_whitney_auc(xs: Sequence[float], ys: Sequence[float]) -> float:
    """AUC of "larger value => class y" with midrank tie handling.

    Equals the Mann-Whitney U statistic normalized by ``len(xs) *
    len(ys)``; 0.5 means the feature carries no class information,
    0.0/1.0 mean perfect (anti-)separation.
    """
    if not xs or not ys:
        raise ValueError("both classes need at least one sample")
    greater = ties = 0
    for x in xs:
        for y in ys:
            if y > x:
                greater += 1
            elif y == x:
                ties += 1
    return (greater + 0.5 * ties) / (len(xs) * len(ys))


@dataclasses.dataclass(frozen=True)
class AuditResult:
    """AUC audit outcome for one (scheme, gadget)."""

    scheme: SchemeKind
    gadget: str
    trials: int
    #: Per-feature AUC (feature -> AUC of secret-A vs secret-B samples).
    feature_aucs: Dict[str, float]
    #: The feature with the largest deviation from 0.5, and its AUC.
    worst_feature: str
    worst_auc: float

    @property
    def ok(self) -> bool:
        """True when even the most discriminative feature is in band."""
        return 0.4 <= self.worst_auc <= 0.6

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary of the audit outcome."""
        return {
            "scheme": self.scheme.value,
            "gadget": self.gadget,
            "trials": self.trials,
            "feature_aucs": dict(sorted(self.feature_aucs.items())),
            "worst_feature": self.worst_feature,
            "worst_auc": self.worst_auc,
            "ok": self.ok,
        }


def _run_trial(
    gadget: str,
    scheme: SchemeKind,
    *,
    secret_value: int,
    noise_seed: int,
    warm_line: Optional[int] = None,
) -> Tuple[object, object]:
    """One telemetry-enabled in-process run; returns (stats, telemetry)."""
    kwargs: Dict[str, object] = {
        "secret_value": secret_value,
        "noise_seed": noise_seed,
    }
    if warm_line is not None:
        kwargs["warm_line"] = warm_line
    built = build_gadget(gadget, **kwargs)
    # Telemetry forces the reference core (System never hands a traced
    # run to FastCore), so this is safe under any REPRO_HOTPATH.
    result = System(
        SystemParams(num_cores=built.threads),
        [prog.trace() for prog in built.programs],
        scheme,
        warmup_uops=0,
        telemetry=TelemetryConfig(sample_rate=1),
    ).run()
    return result.aggregate, result.telemetry


def _metadata_features(stats, telemetry) -> Dict[str, float]:
    """Protection-metadata feature vector for one run."""
    features = {name: float(getattr(stats, name)) for name in AUDIT_STAT_FEATURES}
    histogram = None
    if telemetry is not None:
        histogram = telemetry.metrics.get("histograms", {}).get("delay_cycles")
    if histogram:
        for i, count in enumerate(histogram.get("counts", [])):
            features[f"delay_hist_{i}"] = float(count)
        features["delay_hist_sum"] = float(histogram.get("sum", 0))
    return features


def _timing_features(stats, _telemetry) -> Dict[str, float]:
    """Timing/footprint feature vector (the positive control's view)."""
    return {name: float(getattr(stats, name)) for name in _CONTROL_FEATURES}


def _score(
    class_a: List[Dict[str, float]], class_b: List[Dict[str, float]]
) -> Tuple[Dict[str, float], str, float]:
    names = sorted(set().union(*class_a, *class_b))
    aucs = {
        name: mann_whitney_auc(
            [sample.get(name, 0.0) for sample in class_a],
            [sample.get(name, 0.0) for sample in class_b],
        )
        for name in names
    }
    worst = max(aucs, key=lambda name: abs(aucs[name] - 0.5))
    return aucs, worst, aucs[worst]


def audit_scheme(
    scheme: SchemeKind,
    gadget: str = "v1_bounds_bypass",
    *,
    trials: int = 6,
) -> AuditResult:
    """Audit one protected scheme's metadata on one gadget.

    Runs ``trials`` matched pairs (secret A vs secret B, shared noise
    seed) and scores every metadata feature.  The gadget must accept a
    tunable secret (``GadgetCase.secret_tunable``).
    """
    case = get_gadget(gadget)
    if not case.secret_tunable:
        raise ValueError(f"gadget {gadget!r} has no tunable secret to audit")
    if trials < 2:
        raise ValueError("need at least 2 trials for a meaningful AUC")
    hotpath_note()
    class_a: List[Dict[str, float]] = []
    class_b: List[Dict[str, float]] = []
    for trial in range(trials):
        for secret, bucket in ((_SECRET_A, class_a), (_SECRET_B, class_b)):
            stats, telemetry = _run_trial(
                gadget, scheme, secret_value=secret, noise_seed=trial
            )
            bucket.append(_metadata_features(stats, telemetry))
    aucs, worst, worst_auc = _score(class_a, class_b)
    return AuditResult(
        scheme=scheme,
        gadget=gadget,
        trials=trials,
        feature_aucs=aucs,
        worst_feature=worst,
        worst_auc=worst_auc,
    )


def audit_all(
    schemes: Sequence[SchemeKind] = PROTECTED_SCHEMES,
    gadget: str = "v1_bounds_bypass",
    *,
    trials: int = 6,
) -> List[AuditResult]:
    """Audit every scheme in ``schemes`` (default: all protected ones)."""
    return [audit_scheme(scheme, gadget, trials=trials) for scheme in schemes]


def control_audit(*, trials: int = 6) -> AuditResult:
    """Positive control: the classifier must detect a real channel.

    Unsafe baseline, timing features, and a secret that points at a
    *warmed* line (class A) vs. a cold one (class B): the transmitter's
    hit/miss difference shows up in cycles and miss counters, so the
    worst-feature AUC should saturate.  Both classes run structurally
    identical programs (the same line is warmed in both), so the only
    difference is the secret value itself.
    """
    if trials < 2:
        raise ValueError("need at least 2 trials for a meaningful AUC")
    hotpath_note()
    gadget = "v1_bounds_bypass"
    class_a: List[Dict[str, float]] = []
    class_b: List[Dict[str, float]] = []
    for trial in range(trials):
        for secret, bucket in ((_SECRET_A, class_a), (_SECRET_B, class_b)):
            stats, telemetry = _run_trial(
                gadget,
                SchemeKind.UNSAFE,
                secret_value=secret,
                noise_seed=trial,
                warm_line=_SECRET_A,  # warm the class-A target in BOTH classes
            )
            bucket.append(_timing_features(stats, telemetry))
    aucs, worst, worst_auc = _score(class_a, class_b)
    return AuditResult(
        scheme=SchemeKind.UNSAFE,
        gadget=gadget,
        trials=trials,
        feature_aucs=aucs,
        worst_feature=worst,
        worst_auc=worst_auc,
    )
