"""Adversarial red-team harness for the security schemes.

Runs the :mod:`repro.workloads.gadgets` catalog across the scheme
matrix, classifies each cell as leak / protected / benign from
speculation-tagged cache-observation telemetry plus an architectural
Clueless DIFT pass, and audits each protected scheme's own metadata for
secret-dependence with a Mann-Whitney AUC classifier (which must stay
≈ 0.5).  See ``docs/security.md`` for the methodology.
"""

from repro.redteam.audit import (
    AUDIT_STAT_FEATURES,
    AuditResult,
    PROTECTED_SCHEMES,
    audit_all,
    audit_scheme,
    control_audit,
    mann_whitney_auc,
)
from repro.redteam.harness import (
    CellOutcome,
    MatrixResult,
    arch_leaked_words,
    hotpath_note,
    run_matrix,
)

__all__ = [
    "AUDIT_STAT_FEATURES",
    "AuditResult",
    "CellOutcome",
    "MatrixResult",
    "PROTECTED_SCHEMES",
    "arch_leaked_words",
    "audit_all",
    "audit_scheme",
    "control_audit",
    "hotpath_note",
    "mann_whitney_auc",
    "run_matrix",
]
