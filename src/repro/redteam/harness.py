"""The red-team harness: gadget x scheme verdict matrix.

:func:`run_matrix` routes every (gadget, scheme) cell through the
existing experiment engine — each cell is a telemetry-enabled
:class:`~repro.sim.engine.RunSpec` executed by
:func:`~repro.sim.engine.execute_specs` (or the fault-tolerant
:class:`~repro.sim.supervisor.Supervisor`), so the matrix fans out over
worker processes, benefits from the engine's crash handling, and lands
in a :class:`~repro.sim.engine.SuiteResult` like any benchmark grid.
Telemetry-enabled specs always bypass the result store, so verdicts can
never be served stale.

A cell's verdict combines two analyses:

* the **cache-observability probe** — the pipeline's ``security/observe``
  telemetry event, one per real cache access by a load, recording
  whether the access ran under a speculation shadow and whether it hit
  in the L1.  *Transmission* means a speculative access that missed
  (perturbed attacker-visible cache state); a speculative L1 hit leaves
  no footprint.
* the **Clueless DIFT analyzer** over the gadget's architectural prefix
  — the committed, non-speculative part of the trace — deciding whether
  the secret word was already public at attack time (the SPT/ReCon
  threat model: architecturally leaked data is public).

``transmitted and not public``  -> LEAK;
``transmitted and public``      -> BENIGN;
``not transmitted``             -> PROTECTED.

The harness forces the telemetry-instrumented reference core: attaching
a :class:`~repro.telemetry.events.TelemetryConfig` makes
:class:`~repro.sim.system.System` select the reference ``Core`` (the
optimized FastCore carries no instrumentation and refuses telemetry),
regardless of ``REPRO_HOTPATH``.  When that variable requests another
backend, :func:`hotpath_note` says so in one line instead of letting a
worker raise.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.clueless import Clueless
from repro.common.types import SchemeKind
from repro.core.hotpath import HOTPATH_ENV
from repro.sim.config import RunConfig
from repro.sim.engine import RunSpec, SuiteResult, execute_specs
from repro.sim.runner import RunResult
from repro.sim.supervisor import FaultPolicy, RunFailure
from repro.telemetry.events import (
    CAT_RECON,
    CAT_REDTEAM,
    CAT_SECURITY,
    TelemetryCollector,
    TelemetryConfig,
)
from repro.workloads.gadgets import (
    CATALOG,
    MATRIX_SCHEMES,
    BuiltGadget,
    GadgetCase,
    Verdict,
    build_gadget,
    gadget_profile,
    get_gadget,
)

__all__ = [
    "CellOutcome",
    "MatrixResult",
    "arch_leaked_words",
    "hotpath_note",
    "run_matrix",
]

#: Telemetry collected inside each matrix cell: the observe probe plus
#: ReCon reveal traffic (enough for verdicts; small ring footprint).
_CELL_TELEMETRY = TelemetryConfig(
    sample_rate=1, categories=frozenset({CAT_SECURITY, CAT_RECON})
)


def hotpath_note(stream=None) -> Optional[str]:
    """One-line note when ``REPRO_HOTPATH`` requests a non-reference core.

    The red-team matrix and the AUC audit need telemetry, which only the
    reference core carries; the harness therefore always runs on it.
    Returns the note (also printed to ``stream``, default stderr) or
    ``None`` when the environment is compatible.
    """
    backend = os.environ.get(HOTPATH_ENV, "").strip().lower()
    if not backend or backend in ("legacy", "auto"):
        return None
    note = (
        f"redteam: {HOTPATH_ENV}={backend} ignored — the gadget matrix and "
        f"AUC audit require telemetry, which only the reference core "
        f"carries; using the reference (legacy) core."
    )
    print(note, file=stream if stream is not None else sys.stderr)
    return note


def arch_leaked_words(built: BuiltGadget) -> FrozenSet[int]:
    """Words architecturally public at attack time, per Clueless DIFT.

    Each core's *architectural prefix* (the leading micro-ops modeling
    committed non-speculative execution) runs through its own
    :class:`Clueless` instance — register namespaces are per-core — and
    the leaked sets are unioned: a word any core made public is public
    system-wide (that is what the coherent reveal bits implement).
    """
    leaked: set = set()
    for prog, end in zip(built.programs, built.prefix_ends):
        analyzer = Clueless()
        for uop in prog.trace()[:end]:
            analyzer.step(uop)
        leaked |= analyzer.dift_leaked
    return frozenset(leaked)


@dataclasses.dataclass(frozen=True)
class CellOutcome:
    """One (gadget, scheme) cell of the verdict matrix."""

    gadget: str
    scheme: SchemeKind
    verdict: Verdict
    expected: Verdict
    #: The transmitter performed a real cache access at some point.
    observed: bool
    #: ...while a speculation shadow was up (hit or miss).
    observed_speculative: bool
    #: ...speculatively AND missing in the L1 (perturbed cache state).
    transmitted: bool
    #: The secret word was architecturally public at attack time.
    secret_arch_leaked: bool
    cycles: int
    reveal_hits: int
    reveal_misses: int
    delayed_loads: int
    tainted_loads: int

    @property
    def ok(self) -> bool:
        return self.verdict is self.expected

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready cell record (enums as strings, plus ``ok``)."""
        d = dataclasses.asdict(self)
        d["scheme"] = self.scheme.value
        d["verdict"] = self.verdict.value
        d["expected"] = self.expected.value
        d["ok"] = self.ok
        return d


@dataclasses.dataclass
class MatrixResult:
    """The full verdict matrix plus its engine-level provenance."""

    cells: List[CellOutcome]
    suite: SuiteResult
    #: CAT_REDTEAM event counts from the harness's own collector.
    event_counts: Dict[str, int]
    wall_time_s: float
    #: Cells that failed to execute under supervision (spec label list).
    failed_cells: List[Tuple[str, str]] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed_cells and all(cell.ok for cell in self.cells)

    @property
    def mismatches(self) -> List[CellOutcome]:
        return [cell for cell in self.cells if not cell.ok]

    def cell(self, gadget: str, scheme: SchemeKind) -> Optional[CellOutcome]:
        """The outcome for one (gadget, scheme); ``None`` when absent."""
        for c in self.cells:
            if c.gadget == gadget and c.scheme is scheme:
                return c
        return None

    def verdict_map(self) -> Dict[str, Dict[str, str]]:
        """``{gadget: {scheme value: verdict value}}`` (JSON-friendly)."""
        out: Dict[str, Dict[str, str]] = {}
        for c in self.cells:
            out.setdefault(c.gadget, {})[c.scheme.value] = c.verdict.value
        return out

    def to_dict(self) -> Dict[str, object]:
        """The JSON-ready artifact payload (``results/BENCH_gadgets.json``)."""
        return {
            "version": 1,
            "cells": [c.as_dict() for c in self.cells],
            "verdicts": self.verdict_map(),
            "event_counts": dict(self.event_counts),
            "failed_cells": [list(fc) for fc in self.failed_cells],
            "summary": {
                "cells": len(self.cells),
                "mismatches": len(self.mismatches),
                "ok": self.ok,
            },
            "wall_time_s": self.wall_time_s,
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write the matrix artifact (``BENCH_gadgets.json``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        tmp.replace(path)
        return path


def _classify(
    built: BuiltGadget, result: RunResult, public: bool
) -> Tuple[Verdict, bool, bool, bool]:
    """Verdict + (observed, observed_speculative, transmitted) for a cell."""
    observed = spec_any = spec_miss = False
    telemetry = result.telemetry
    events = telemetry.events if telemetry is not None else []
    for ev in events:
        if (
            ev.category == CAT_SECURITY
            and ev.kind == "observe"
            and ev.core == built.transmit_core
            and ev.seq == built.transmit_seq
        ):
            observed = True
            if ev.value & 2:
                spec_any = True
                if not (ev.value & 1):
                    spec_miss = True
    if spec_miss:
        verdict = Verdict.BENIGN if public else Verdict.LEAK
    else:
        verdict = Verdict.PROTECTED
    return verdict, observed, spec_any, spec_miss


def run_matrix(
    gadgets: Optional[Iterable[str]] = None,
    schemes: Optional[Sequence[SchemeKind]] = None,
    *,
    jobs: Optional[int] = None,
    supervise: Union[bool, FaultPolicy] = False,
    progress: bool = False,
) -> MatrixResult:
    """Run the gadget x scheme matrix through the experiment engine.

    Args:
        gadgets: gadget names (default: the whole catalog).
        schemes: matrix columns (default: :data:`MATRIX_SCHEMES`).
        jobs: engine worker processes (``None`` honours ``REPRO_JOBS``).
        supervise: route execution through the fault-tolerant supervisor
            (``True`` = default :class:`FaultPolicy`); failed cells land
            in :attr:`MatrixResult.failed_cells` instead of raising.
        progress: per-run progress lines on stderr.
    """
    hotpath_note()
    cases: List[GadgetCase] = (
        [get_gadget(name) for name in gadgets] if gadgets else list(CATALOG)
    )
    scheme_list: Tuple[SchemeKind, ...] = tuple(schemes or MATRIX_SCHEMES)

    specs: List[RunSpec] = []
    meta: List[Tuple[GadgetCase, BuiltGadget]] = []
    for case in cases:
        built = build_gadget(case.name)
        config = RunConfig(
            threads=built.threads, warmup_uops=0, telemetry=_CELL_TELEMETRY
        )
        for scheme in scheme_list:
            specs.append(
                RunSpec.build(gadget_profile(case.name), scheme, built.length, config)
            )
            meta.append((case, built))

    start = time.perf_counter()
    failures: List[RunFailure] = []
    if supervise:
        from repro.sim.supervisor import Supervisor

        policy = supervise if isinstance(supervise, FaultPolicy) else None
        supervisor = Supervisor(policy, jobs=jobs, store=None, progress=progress)
        results, records, failures = supervisor.execute(specs)
    else:
        results, records = execute_specs(
            specs, jobs=jobs, store=None, progress=progress
        )
    wall = time.perf_counter() - start

    collector = TelemetryCollector(
        TelemetryConfig(categories=frozenset({CAT_REDTEAM}))
    )
    cells: List[CellOutcome] = []
    failed: List[Tuple[str, str]] = []
    public_cache: Dict[str, FrozenSet[int]] = {}
    for index, (spec, (case, built), result) in enumerate(
        zip(specs, meta, results)
    ):
        if result is None:
            failed.append((case.name, spec.scheme.value))
            continue
        if case.name not in public_cache:
            public_cache[case.name] = arch_leaked_words(built)
        public = built.secret_word in public_cache[case.name]
        verdict, observed, spec_any, transmitted = _classify(built, result, public)
        cell = CellOutcome(
            gadget=case.name,
            scheme=spec.scheme,
            verdict=verdict,
            expected=case.expected[spec.scheme],
            observed=observed,
            observed_speculative=spec_any,
            transmitted=transmitted,
            secret_arch_leaked=public,
            cycles=result.cycles,
            reveal_hits=result.stats.reveal_hits,
            reveal_misses=result.stats.reveal_misses,
            delayed_loads=result.stats.delayed_loads,
            tainted_loads=result.stats.tainted_loads,
        )
        cells.append(cell)
        collector.emit(
            CAT_REDTEAM, "verdict", seq=index, value=1 if cell.ok else 0
        )
        if not cell.ok:
            collector.emit(CAT_REDTEAM, "verdict_mismatch", seq=index)

    counts: Dict[str, int] = {}
    for ev in collector.events:
        counts[ev.kind] = counts.get(ev.kind, 0) + 1

    mapping: Dict[Tuple[str, SchemeKind], RunResult] = {
        (case.name, spec.scheme): result
        for spec, (case, _), result in zip(specs, meta, results)
        if result is not None
    }
    suite = SuiteResult(
        mapping, records, wall_time_s=wall, failures=failures
    )
    return MatrixResult(
        cells=cells,
        suite=suite,
        event_counts=counts,
        wall_time_s=wall,
        failed_cells=failed,
    )
