#!/usr/bin/env python3
"""Multicore demo: reveal bits travel with the coherence protocol.

Paper §5.3: ReCon keeps reveal/conceal bit-vectors coherent by
piggybacking them on MESI transactions and OR-merging them into the
in-cache directory, so leakage knowledge gained by one core optimizes
the others.  This example runs a canneal-like parallel pointer-chase on
four cores and reports, per scheme, the execution time and how many
reveal hits each core saw — including hits on words another core
revealed.

Run:  python examples/multicore_sharing.py
"""

from repro import SchemeKind, SystemParams, get_benchmark
from repro.sim import System, format_table
from repro.workloads import build_parallel_traces

THREADS = 4
LENGTH = 5_000


def main() -> None:
    profile = get_benchmark("parsec", "canneal")
    print(
        f"benchmark: {profile.label}  threads: {THREADS}  "
        f"length/thread: {LENGTH}\n"
    )
    traces = [prog.trace() for prog in build_parallel_traces(profile, THREADS, LENGTH)]

    rows = []
    baseline_cycles = None
    for scheme in (
        SchemeKind.UNSAFE,
        SchemeKind.NDA,
        SchemeKind.NDA_RECON,
        SchemeKind.STT,
        SchemeKind.STT_RECON,
    ):
        system = System(SystemParams(num_cores=THREADS), traces, scheme)
        result = system.run()
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        aggregate = result.aggregate
        rows.append(
            [
                scheme.value,
                str(result.cycles),
                f"{result.cycles / baseline_cycles:.3f}",
                str(aggregate.reveal_hits),
                str(aggregate.coherence_transactions),
                str(aggregate.invalidations),
            ]
        )
    print(
        format_table(
            [
                "scheme",
                "cycles",
                "time vs unsafe",
                "reveal hits",
                "coherence msgs",
                "invalidations",
            ],
            rows,
        )
    )
    print(
        "\nReveal bit-vectors ride on the coherence transactions shown"
        "\nabove (GetS/GetM responses, downgrades, writebacks, eviction"
        "\nmerges), which is how one core benefits from pointers another"
        "\ncore already dereferenced — without any new protocol states."
    )


if __name__ == "__main__":
    main()
