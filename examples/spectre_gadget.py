#!/usr/bin/env python3
"""Security demo: a Spectre-v1 gadget under each scheme.

Builds the paper's motivating pattern (§1):

    // non-speculative execution
    PC1: load r1, [0x13]      ; the pointer at PTR leaks...
    PC2: load r2, [r1]        ; ...because PC2 dereferences it

    // speculative execution (under an unresolved bounds check)
    PC3: load r3, [0x13]      ; safe to read: already revealed
    PC4: load r4, [r3]        ; safe to transmit: nothing new leaks

and a true Spectre gadget on a *never-leaked* secret.  For each scheme it
reports whether the transmitter was observable (accessed the cache) while
speculative:

* unsafe baseline — leaks the secret;
* STT / NDA — never transmit speculatively;
* STT/NDA + ReCon — still never transmit an unleaked secret, but DO
  transmit the already-public pointer (that is the optimization).

Run:  python examples/spectre_gadget.py
"""

from repro import Program, SchemeKind, StatSet, SystemParams
from repro.core import Core
from repro.memory import MemoryHierarchy
from repro.security import make_policy

SLOW = 0x40000      # cold line: keeps the bounds check unresolved
PTR = 0x1000        # a pointer that the program dereferences architecturally
SECRET = 0x5000     # a secret that never leaks non-speculatively


def build_gadget(reveal_first: bool, target: int) -> "tuple[Program, int]":
    """The gadget; returns (program, seq of the transmitter load)."""
    prog = Program()
    prog.poke(PTR, 0x2000)
    prog.poke(SECRET, 0x7000)

    if reveal_first:
        # Non-speculative execution dereferences the pointer: PC1/PC2.
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)
        # Serialize so the reveal is ancient history before the gadget.
        prog.branch(3, mispredict=True)

    # if (x < size) { y = B[A[x]]; }  — the bounds check stays unresolved
    # while the body runs speculatively.
    prog.li(4, SLOW)
    prog.load(5, base=4)
    prog.branch(5)
    prog.li(6, target)
    prog.load(7, base=6)                  # speculative access
    transmit = prog.load(8, base=7)       # the transmitter
    return prog, transmit.seq


def run(scheme: SchemeKind, reveal_first: bool, target: int) -> str:
    prog, transmit_seq = build_gadget(reveal_first, target)
    params = SystemParams()
    stats = StatSet()
    core = Core(
        0,
        params,
        prog.trace(),
        MemoryHierarchy(params),
        make_policy(scheme, stats),
        stats,
    )
    core.run()
    for obs in core.observations:
        if obs.seq == transmit_seq:
            if obs.speculative:
                return "TRANSMITTED while speculative"
            return "transmitted only after the shadow resolved"
    return "never transmitted"


def main() -> None:
    schemes = (
        SchemeKind.UNSAFE,
        SchemeKind.NDA,
        SchemeKind.STT,
        SchemeKind.NDA_RECON,
        SchemeKind.STT_RECON,
    )
    print("=== gadget on a NEVER-LEAKED secret ===")
    for scheme in schemes:
        print(f"  {scheme.value:10s}: {run(scheme, False, SECRET)}")
    print("\n=== gadget on an ALREADY-REVEALED pointer ===")
    print("(the pointer leaked non-speculatively; per the SPT/ReCon threat")
    print(" model it is public, so transmitting it loses nothing)")
    for scheme in schemes:
        print(f"  {scheme.value:10s}: {run(scheme, True, PTR)}")


if __name__ == "__main__":
    main()
