#!/usr/bin/env python3
"""Security demo: Spectre-v1 gadgets from the catalog under each scheme.

Thin wrapper over the gadget catalog (:mod:`repro.workloads.gadgets`)
and the red-team harness (:func:`repro.api.run_redteam`).  Two catalog
entries reproduce the paper's motivating pattern (§1):

* ``v1_bounds_bypass`` — a bounds-check-bypass gadget on a secret that
  never leaks non-speculatively;
* ``reveal_rederef`` — the same transmitter, but the pointer it
  dereferences was already revealed by committed execution (PC1/PC2 of
  the paper), so per the SPT/ReCon threat model it is public.

For each scheme the harness reports whether the transmitter accessed
the cache while speculative:

* unsafe baseline — leaks the secret;
* STT / NDA — never transmit speculatively;
* STT/NDA + ReCon — still never transmit an unleaked secret, but DO
  transmit the already-public pointer (that is the optimization).

Run:  python examples/spectre_gadget.py
"""

from repro.api import SchemeKind, run_redteam

SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.STT,
    SchemeKind.NDA_RECON,
    SchemeKind.STT_RECON,
)


def describe(cell) -> str:
    """One line of transmitter behaviour for a matrix cell."""
    if cell is None:
        return "n/a"
    if cell.observed_speculative:
        return "TRANSMITTED while speculative"
    if cell.observed:
        return "transmitted only after the shadow resolved"
    return "never transmitted"


def main() -> None:
    matrix = run_redteam(
        gadgets=["v1_bounds_bypass", "reveal_rederef"], schemes=SCHEMES
    )
    print("=== gadget on a NEVER-LEAKED secret ===")
    for scheme in SCHEMES:
        cell = matrix.cell("v1_bounds_bypass", scheme)
        print(f"  {scheme.value:10s}: {describe(cell)}")
    print("\n=== gadget on an ALREADY-REVEALED pointer ===")
    print("(the pointer leaked non-speculatively; per the SPT/ReCon threat")
    print(" model it is public, so transmitting it loses nothing)")
    for scheme in SCHEMES:
        cell = matrix.cell("reveal_rederef", scheme)
        print(f"  {scheme.value:10s}: {describe(cell)}")
    assert matrix.ok, "verdict matrix diverged from the catalog expectations"


if __name__ == "__main__":
    main()
