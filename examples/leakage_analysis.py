#!/usr/bin/env python3
"""Clueless demo: characterize non-speculative leakage of the suites.

Reproduces the paper's §6.2 methodology in miniature: for a few
benchmarks, run the Clueless analyzer over the trace — via the stable
:func:`repro.api.leakage_report` facade — and report what fraction of
the program's memory footprint leaks its contents through *any*
dependence chain (global DIFT) and through *direct load pairs* only —
the subset ReCon detects with the load-pair table.

Run:  python examples/leakage_analysis.py
"""

from repro.api import format_table, leakage_report

LENGTH = 8_000

BENCHMARKS = (
    "spec2017/mcf",
    "spec2017/gcc",
    "spec2017/xalancbmk",
    "spec2017/deepsjeng",
    "spec2017/cactuBSSN",
    "spec2017/lbm",
)


def main() -> None:
    rows = []
    for label in BENCHMARKS:
        report = leakage_report(label, LENGTH)
        rows.append(
            [
                label,
                str(report.footprint_words),
                f"{report.dift_fraction:.1%}",
                f"{report.pair_fraction:.1%}",
                f"{report.pair_coverage:.1%}",
            ]
        )
    print(
        format_table(
            [
                "benchmark",
                "footprint (words)",
                "DIFT leaked",
                "load-pair leaked",
                "pairs / DIFT",
            ],
            rows,
        )
    )
    print(
        "\n'pairs / DIFT' is the share of all explicit leakage that the"
        "\nload-pair table captures (Fig. 4 / Fig. 9 of the paper):"
        "\nhigh for pointer codes (mcf, gcc, xalancbmk), low where"
        "\ndereferences go through computation first (deepsjeng,"
        "\ncactuBSSN), and moot for streaming codes (lbm)."
    )


if __name__ == "__main__":
    main()
