#!/usr/bin/env python3
"""Build your own benchmark: custom profiles and trace files.

Shows the extension surface a downstream user works with:

1. define a new :class:`~repro.workloads.BenchmarkProfile` (here: a
   database-like mix of hash probes and index scans);
2. generate its trace, save it to disk, and reload it (the trace-file
   workflow used to share workloads between machines);
3. run it under STT with and without ReCon and inspect the leakage
   profile that explains the result.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import (
    BenchmarkProfile,
    Clueless,
    SchemeKind,
    StatSet,
    SystemParams,
    build_trace,
)
from repro.core import Core
from repro.isa import load_trace, save_trace
from repro.memory import MemoryHierarchy
from repro.security import make_policy
from repro.sim import format_table

LENGTH = 8_000

#: A b-tree-ish "database" workload: hash-bucket probes over shared
#: structures, index scans, and a sprinkle of data-dependent branches.
DATABASE = BenchmarkProfile(
    name="minidb",
    suite="custom",
    seed=4242,
    kernel_weights={"hash": 0.45, "indexed": 0.35, "branchy": 0.2},
    chains=4,
    chain_nodes=96,
    array_words=768,
    mispredict_rate=0.04,
    value_branch_rate=0.25,
    data_branch_fraction=0.2,
    indirect_fraction=0.08,
    store_rate=0.03,
    compute_depth=3,
)


def run_trace(trace, scheme):
    params = SystemParams()
    stats = StatSet()
    core = Core(
        0, params, trace, MemoryHierarchy(params),
        make_policy(scheme, stats), stats,
        warmup_uops=LENGTH // 3,
    )
    core.run()
    return core.measured


def main() -> None:
    print(f"profile: {DATABASE.label}  kernels: {dict(DATABASE.kernel_weights)}\n")

    # 2. generate, save, reload — the trace survives the round trip.
    program = build_trace(DATABASE, LENGTH)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "minidb.trace"
        save_trace(program.trace(), path)
        print(f"saved {len(program)} micro-ops to {path.name} "
              f"({path.stat().st_size // 1024} KiB)")
        trace = load_trace(path)

    # 3. leakage profile...
    report = Clueless().run(trace)
    print(
        f"leakage: {report.dift_fraction:.1%} of the footprint (DIFT), "
        f"{report.pair_fraction:.1%} via direct load pairs "
        f"({report.pair_coverage:.0%} coverage)\n"
    )

    # ...and the scheme comparison it predicts.
    rows = []
    baseline = None
    for scheme in (SchemeKind.UNSAFE, SchemeKind.STT, SchemeKind.STT_RECON):
        measured = run_trace(list(trace), scheme)
        if baseline is None:
            baseline = measured.ipc
        rows.append(
            [
                scheme.value,
                f"{measured.ipc:.3f}",
                f"{measured.ipc / baseline:.3f}",
                str(measured.tainted_loads),
                str(measured.reveal_hits),
            ]
        )
    print(format_table(
        ["scheme", "IPC", "vs unsafe", "tainted", "reveal hits"], rows
    ))


if __name__ == "__main__":
    main()
