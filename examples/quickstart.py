#!/usr/bin/env python3
"""Quickstart: run one benchmark under every scheme and compare.

Builds a synthetic `mcf`-like pointer-chasing workload, runs it on the
simulated out-of-order core under the unsafe baseline, NDA, STT, and both
with ReCon, and prints normalized performance plus the ReCon activity
counters — a miniature of the paper's Figures 5-7.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, SchemeKind, get_benchmark, run_benchmark
from repro.sim import format_table
from repro.sim.runner import TraceCache

LENGTH = 12_000

SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.NDA_RECON,
    SchemeKind.STT,
    SchemeKind.STT_RECON,
)


def main() -> None:
    profile = get_benchmark("spec2017", "mcf")
    print(f"benchmark: {profile.label}  trace length: {LENGTH} micro-ops\n")

    config = RunConfig(cache=TraceCache())  # every scheme: identical trace
    results = {
        scheme: run_benchmark(profile, scheme, LENGTH, config=config)
        for scheme in SCHEMES
    }
    baseline = results[SchemeKind.UNSAFE].ipc

    rows = []
    for scheme in SCHEMES:
        result = results[scheme]
        stats = result.stats
        rows.append(
            [
                scheme.value,
                f"{result.ipc:.3f}",
                f"{result.ipc / baseline:.3f}",
                str(stats.tainted_loads),
                str(stats.load_pairs_detected),
                str(stats.reveal_hits),
            ]
        )
    print(
        format_table(
            ["scheme", "IPC", "vs unsafe", "tainted", "pairs", "reveal hits"],
            rows,
        )
    )

    stt = results[SchemeKind.STT].ipc / baseline
    recon = results[SchemeKind.STT_RECON].ipc / baseline
    if stt < 1.0:
        recovered = (recon - stt) / (1 - stt)
        print(
            f"\nReCon recovered {recovered:.0%} of STT's "
            f"{1 - stt:.1%} performance loss."
        )


if __name__ == "__main__":
    main()
