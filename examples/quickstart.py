#!/usr/bin/env python3
"""Quickstart: run one benchmark under every scheme and compare.

Builds a synthetic `mcf`-like pointer-chasing workload, runs it on the
simulated out-of-order core under the unsafe baseline, NDA, STT, and both
with ReCon, and prints normalized performance plus the ReCon activity
counters — a miniature of the paper's Figures 5-7.

Everything here imports from ``repro.api``, the stable programmatic
surface — the rest of the package is internal and may move.

Run:  python examples/quickstart.py
"""

from repro.api import RunRequest, SchemeKind, run_single

LENGTH = 12_000
BENCH = "spec2017/mcf"

SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.NDA_RECON,
    SchemeKind.STT,
    SchemeKind.STT_RECON,
)


def main() -> None:
    print(f"benchmark: {BENCH}  trace length: {LENGTH} micro-ops\n")

    results = {
        scheme: run_single(RunRequest(BENCH, scheme, LENGTH))
        for scheme in SCHEMES
    }
    baseline = results[SchemeKind.UNSAFE].ipc

    header = f"{'scheme':12s} {'IPC':>6s} {'vs unsafe':>10s} {'tainted':>8s} {'pairs':>6s} {'reveal hits':>12s}"
    print(header)
    print("-" * len(header))
    for scheme in SCHEMES:
        record = results[scheme]
        stats = record.stats
        print(
            f"{scheme.value:12s} {record.ipc:6.3f} "
            f"{record.ipc / baseline:10.3f} {stats.tainted_loads:8d} "
            f"{stats.load_pairs_detected:6d} {stats.reveal_hits:12d}"
        )

    stt = results[SchemeKind.STT].ipc / baseline
    recon = results[SchemeKind.STT_RECON].ipc / baseline
    if stt < 1.0:
        recovered = (recon - stt) / (1 - stt)
        print(
            f"\nReCon recovered {recovered:.0%} of STT's "
            f"{1 - stt:.1%} performance loss."
        )


if __name__ == "__main__":
    main()
