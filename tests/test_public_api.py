"""Public-API surface checks.

Everything a downstream user is documented to import must import, and
the README's quickstart must execute.
"""

import importlib

import pytest


class TestExports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.common",
            "repro.isa",
            "repro.core",
            "repro.memory",
            "repro.security",
            "repro.analysis",
            "repro.workloads",
            "repro.sim",
            "repro.cli",
        ],
    )
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_version_present(self):
        import repro

        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import SchemeKind, get_benchmark, run_benchmark

        profile = get_benchmark("spec2017", "mcf")
        unsafe = run_benchmark(profile, SchemeKind.UNSAFE, length=2_000)
        stt = run_benchmark(profile, SchemeKind.STT, length=2_000)
        recon = run_benchmark(profile, SchemeKind.STT_RECON, length=2_000)
        assert 0 < stt.ipc / unsafe.ipc <= 1.2
        assert 0 < recon.ipc / unsafe.ipc <= 1.2

    def test_micro_program_snippet(self):
        from repro import Program, SchemeKind, StatSet, SystemParams
        from repro.core import Core
        from repro.memory import MemoryHierarchy
        from repro.security import make_policy

        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)

        params = SystemParams()
        stats = StatSet()
        core = Core(
            0,
            params,
            prog.trace(),
            MemoryHierarchy(params),
            make_policy(SchemeKind.STT_RECON, stats),
            stats,
        )
        core.run()
        assert stats.load_pairs_detected == 1
