"""Public-API surface checks.

Everything a downstream user is documented to import must import, and
the README's quickstart must execute.
"""

import importlib

import pytest


class TestExports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.common",
            "repro.isa",
            "repro.core",
            "repro.memory",
            "repro.security",
            "repro.analysis",
            "repro.workloads",
            "repro.sim",
            "repro.api",
            "repro.cli",
        ],
    )
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_version_present(self):
        import repro

        assert repro.__version__


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro.api import RunRequest, run_single

        unsafe = run_single(RunRequest("spec2017/mcf", "unsafe", 2_000), store=False)
        stt = run_single(RunRequest("spec2017/mcf", "stt", 2_000), store=False)
        recon = run_single(RunRequest("spec2017/mcf", "stt+recon", 2_000), store=False)
        assert 0 < stt.ipc / unsafe.ipc <= 1.2
        assert 0 < recon.ipc / unsafe.ipc <= 1.2

    def test_suite_snippet(self):
        from repro.api import RunRequest, SchemeKind, run_suite

        requests = [
            RunRequest(f"spec2017/{name}", scheme, 800)
            for name in ("mcf", "gcc")
            for scheme in ("unsafe", "stt+recon")
        ]
        suite = run_suite(requests, store=False)
        assert suite.get("mcf", SchemeKind.STT_RECON).ipc > 0
        norm = suite.normalized_ipc()[("mcf", SchemeKind.STT_RECON)]
        assert 0 < norm <= 1.2

    def test_micro_program_snippet(self):
        from repro import Program, SchemeKind, StatSet, SystemParams
        from repro.core import Core
        from repro.memory import MemoryHierarchy
        from repro.security import make_policy

        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)

        params = SystemParams()
        stats = StatSet()
        core = Core(
            0,
            params,
            prog.trace(),
            MemoryHierarchy(params),
            make_policy(SchemeKind.STT_RECON, stats),
            stats,
        )
        core.run()
        assert stats.load_pairs_detected == 1
