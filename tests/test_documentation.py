"""Documentation-quality gates.

Every public item (everything exported through a module's ``__all__``)
must carry a docstring, and every module must have a module docstring —
deliverable (e) of a credible open-source release.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(
                    obj, inspect.isfunction
                ):
                    if meth_name.startswith("_"):
                        continue
                    if meth.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited implementation
                    if meth.__doc__ and meth.__doc__.strip():
                        continue
                    # An override may rely on the base class's docstring.
                    inherited = any(
                        getattr(base, meth_name, None) is not None
                        and getattr(base, meth_name).__doc__
                        for base in obj.__mro__[1:]
                    )
                    if not inherited:
                        undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )
