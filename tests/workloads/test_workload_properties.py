"""Property-based checks on every benchmark profile's generated traces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import OpClass
from repro.workloads import all_benchmarks, build_trace

PROFILES = {p.label: p for p in all_benchmarks()}


@pytest.mark.parametrize("label", sorted(PROFILES))
def test_trace_is_well_formed(label):
    """Every profile yields structurally valid micro-ops."""
    profile = PROFILES[label]
    trace = build_trace(profile, 1200).trace()
    assert len(trace) >= 1200
    for uop in trace:
        if uop.opclass.is_memory:
            assert uop.addr is not None and uop.addr >= 0
        if uop.opclass is OpClass.LOAD:
            assert uop.dest is not None
        for reg in uop.srcs + uop.data_srcs:
            assert 0 <= reg < 32
        if uop.dest is not None:
            assert 0 <= uop.dest < 32


@pytest.mark.parametrize("label", sorted(PROFILES))
def test_trace_has_plausible_mix(label):
    """Loads exist everywhere; branch/store rates stay sane."""
    trace = build_trace(PROFILES[label], 2000).trace()
    counts = {}
    for uop in trace:
        counts[uop.opclass] = counts.get(uop.opclass, 0) + 1
    total = len(trace)
    assert counts.get(OpClass.LOAD, 0) / total > 0.02
    assert counts.get(OpClass.BRANCH, 0) / total < 0.5
    assert counts.get(OpClass.STORE, 0) / total < 0.5


@given(seed_shift=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_any_seed_generates_and_simulates(seed_shift):
    """Arbitrary seeds must not break generation or simulation."""
    import dataclasses

    from repro.common import SchemeKind
    from repro.sim import RunConfig
    from repro.sim.runner import TraceCache, run_benchmark

    base = PROFILES["spec2017/xalancbmk"]
    profile = dataclasses.replace(base, seed=base.seed + seed_shift)
    result = run_benchmark(
        profile,
        SchemeKind.STT_RECON,
        600,
        config=RunConfig(cache=TraceCache(), warmup_uops=0),
    )
    assert result.stats.committed_uops >= 600


def test_pointer_chains_are_cyclic_and_closed():
    """Chain layout: following `next` pointers stays inside the chain."""
    from repro.workloads.kernels import WorkloadBuilder

    profile = PROFILES["spec2017/mcf"]
    builder = WorkloadBuilder(profile)
    for chain in builder._chains:
        node_set = set(chain.nodes)
        cursor = chain.nodes[0]
        for _ in range(len(chain.nodes) * 2):
            cursor = builder.prog.peek(cursor)
            assert cursor in node_set


def test_sticky_indirect_is_deterministic_per_address():
    from repro.workloads.kernels import WorkloadBuilder

    profile = PROFILES["spec2017/deepsjeng"]
    builder = WorkloadBuilder(profile)
    sample = [0x1000 + i * 8 for i in range(200)]
    first = [builder._sticky_indirect(a) for a in sample]
    second = [builder._sticky_indirect(a) for a in sample]
    assert first == second
    frac = sum(first) / len(first)
    assert abs(frac - profile.indirect_fraction) < 0.2
