"""Unit tests for the synthetic workload generator."""

import pytest

from repro.analysis import Clueless
from repro.common import OpClass
from repro.workloads import (
    BenchmarkProfile,
    all_benchmarks,
    build_parallel_traces,
    build_trace,
    get_benchmark,
    parsec_suite,
    spec2006_suite,
    spec2017_suite,
)


class TestSuites:
    def test_suite_sizes(self):
        assert len(spec2017_suite()) >= 14
        assert len(spec2006_suite()) >= 10
        assert len(parsec_suite()) >= 8

    def test_unique_labels(self):
        labels = [p.label for p in all_benchmarks()]
        assert len(labels) == len(set(labels))

    def test_get_benchmark(self):
        profile = get_benchmark("spec2017", "mcf")
        assert profile.name == "mcf"
        with pytest.raises(KeyError):
            get_benchmark("spec2017", "doom")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", suite="x", kernel_weights={"nope": 1.0})
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", suite="x", kernel_weights={})


class TestTraceGeneration:
    def test_reaches_requested_length(self):
        profile = get_benchmark("spec2017", "gcc")
        trace = build_trace(profile, 2000).trace()
        assert len(trace) >= 2000

    def test_deterministic(self):
        profile = get_benchmark("spec2017", "xalancbmk")
        a = build_trace(profile, 1500).trace()
        b = build_trace(profile, 1500).trace()
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert (x.opclass, x.dest, x.srcs, x.addr, x.mispredict) == (
                y.opclass,
                y.dest,
                y.srcs,
                y.addr,
                y.mispredict,
            )

    def test_different_seeds_differ(self):
        import dataclasses

        profile = get_benchmark("spec2017", "gcc")
        other = dataclasses.replace(profile, seed=999)
        a = build_trace(profile, 1000).trace()
        b = build_trace(other, 1000).trace()
        assert any(
            x.addr != y.addr for x, y in zip(a, b) if x.opclass is OpClass.LOAD
        )

    def test_pointer_chase_has_real_dereferences(self):
        """The chase loads real pointers: loaded value == next address."""
        profile = get_benchmark("spec2017", "mcf")
        prog = build_trace(profile, 1000)
        report = Clueless().run(prog.trace())
        assert report.pair_leaked_words > 10

    def test_streaming_benchmark_has_no_pairs(self):
        profile = get_benchmark("spec2017", "lbm")
        prog = build_trace(profile, 2000)
        report = Clueless().run(prog.trace())
        assert report.pair_fraction < 0.02

    def test_pair_coverage_ordering_matches_paper(self):
        """gcc/mcf/xalancbmk: pairs ~= all leakage; deepsjeng: much less."""
        def coverage(name):
            profile = get_benchmark("spec2017", name)
            return Clueless().run(build_trace(profile, 4000).trace()).pair_coverage

        assert coverage("gcc") > 0.85
        assert coverage("mcf") > 0.85
        assert coverage("xalancbmk") > 0.85
        assert coverage("deepsjeng") < coverage("gcc")

    def test_mix_contains_expected_opclasses(self):
        profile = get_benchmark("spec2017", "xalancbmk")
        trace = build_trace(profile, 3000).trace()
        classes = {op.opclass for op in trace}
        assert OpClass.LOAD in classes
        assert OpClass.BRANCH in classes
        assert OpClass.ALU in classes


class TestParallelTraces:
    def test_one_trace_per_thread(self):
        profile = get_benchmark("parsec", "canneal")
        traces = build_parallel_traces(profile, num_threads=4, length=800)
        assert len(traces) == 4
        assert all(len(t) >= 800 for t in traces)

    def test_threads_share_addresses(self):
        """canneal threads chase the same shared pointer structures."""
        profile = get_benchmark("parsec", "canneal")
        traces = build_parallel_traces(profile, num_threads=2, length=2000)

        def load_addrs(prog):
            return {
                op.addr for op in prog.trace() if op.opclass is OpClass.LOAD
            }

        shared = load_addrs(traces[0]) & load_addrs(traces[1])
        assert len(shared) > 20

    def test_private_benchmark_shares_little(self):
        profile = get_benchmark("parsec", "swaptions")
        traces = build_parallel_traces(profile, num_threads=2, length=2000)

        def mem_addrs(prog):
            return {op.addr for op in prog.trace() if op.addr is not None}

        shared = mem_addrs(traces[0]) & mem_addrs(traces[1])
        total = len(mem_addrs(traces[0])) or 1
        assert len(shared) / total < 0.35

    def test_thread_streams_differ(self):
        profile = get_benchmark("parsec", "canneal")
        a, b = build_parallel_traces(profile, num_threads=2, length=1000)
        ops_a = [(op.opclass, op.addr) for op in a.trace()[:500]]
        ops_b = [(op.opclass, op.addr) for op in b.trace()[:500]]
        assert ops_a != ops_b
