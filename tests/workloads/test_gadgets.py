"""Unit tests for the attack-scenario gadget catalog."""

import pytest

from repro.workloads import build_parallel_traces, build_trace, get_benchmark
from repro.workloads.gadgets import (
    CATALOG,
    GADGET_SUITE,
    MATRIX_SCHEMES,
    Verdict,
    build_gadget,
    build_gadget_trace,
    gadget_catalog,
    gadget_profile,
    gadget_profiles,
    get_gadget,
)


class TestCatalogIntegrity:
    def test_catalog_is_nonempty_and_unique(self):
        names = [case.name for case in CATALOG]
        assert len(names) >= 10
        assert len(set(names)) == len(names)

    def test_every_case_declares_every_matrix_column(self):
        for case in CATALOG:
            assert set(case.expected) == set(MATRIX_SCHEMES), case.name
            for verdict in case.expected.values():
                assert isinstance(verdict, Verdict)

    def test_unsafe_never_protects(self):
        """The baseline column proves each gadget actually transmits."""
        for case in CATALOG:
            unsafe = case.expected[MATRIX_SCHEMES[0]]
            assert unsafe in (Verdict.LEAK, Verdict.BENIGN), case.name

    def test_secure_schemes_never_leak_a_secret(self):
        """No protected scheme may have an expected LEAK anywhere."""
        for case in CATALOG:
            for scheme in MATRIX_SCHEMES[1:]:
                assert case.expected[scheme] is not Verdict.LEAK, (
                    case.name,
                    scheme,
                )

    def test_expected_verdicts_are_immutable(self):
        case = CATALOG[0]
        with pytest.raises(TypeError):
            case.expected[MATRIX_SCHEMES[0]] = Verdict.LEAK

    def test_get_gadget_unknown_name(self):
        with pytest.raises(KeyError, match="v1_bounds_bypass"):
            get_gadget("nonexistent_gadget")

    def test_gadget_catalog_matches_registry(self):
        listing = gadget_catalog()
        assert tuple(listing) == tuple(CATALOG)
        assert all(get_gadget(case.name) is case for case in listing)


class TestBuildGadget:
    @pytest.mark.parametrize("case", CATALOG, ids=lambda case: case.name)
    def test_build_is_deterministic(self, case):
        first = build_gadget(case.name)
        second = build_gadget(case.name)
        assert len(first.programs) == case.threads
        assert first.transmit_seq == second.transmit_seq
        assert first.secret_word == second.secret_word
        for a, b in zip(first.programs, second.programs):
            assert [u.seq for u in a.trace()] == [u.seq for u in b.trace()]

    @pytest.mark.parametrize("case", CATALOG, ids=lambda case: case.name)
    def test_site_is_inside_the_trace(self, case):
        built = build_gadget(case.name)
        assert 0 <= built.transmit_core < built.threads
        trace = built.programs[built.transmit_core].trace()
        assert any(uop.seq == built.transmit_seq for uop in trace)
        for prog, end in zip(built.programs, built.prefix_ends):
            assert 0 <= end <= len(prog.trace())

    def test_secret_tunable_changes_the_image(self):
        base = build_gadget("v1_bounds_bypass", secret_value=0x7000)
        other = build_gadget("v1_bounds_bypass", secret_value=0x7800)
        word = base.secret_word
        assert base.programs[0].memory[word] == 0x7000
        assert other.programs[0].memory[word] == 0x7800

    def test_noise_seed_perturbs_without_moving_the_site(self):
        a = build_gadget("v1_bounds_bypass", noise_seed=0)
        b = build_gadget("v1_bounds_bypass", noise_seed=3)
        assert a.secret_word == b.secret_word
        assert len(a.programs[0].trace()) != len(b.programs[0].trace())


class TestEngineDispatch:
    def test_gadget_profile_routes_through_get_benchmark(self):
        profile = get_benchmark(GADGET_SUITE, "v1_indexed")
        assert profile.suite == GADGET_SUITE
        assert profile.name == "v1_indexed"

    def test_profiles_cover_the_catalog(self):
        assert {p.name for p in gadget_profiles()} == {
            case.name for case in CATALOG
        }

    def test_build_trace_fills_to_length(self):
        profile = gadget_profile("v1_bounds_bypass")
        prog = build_trace(profile, 500)
        assert len(prog.trace()) >= 500

    def test_parallel_fill_matches_thread_count(self):
        profile = gadget_profile("multicore_secret_sharing")
        progs = build_parallel_traces(profile, 2, 300)
        assert len(progs) == 2
        assert min(len(p.trace()) for p in progs) >= 300

    def test_single_thread_guard(self):
        profile = gadget_profile("multicore_secret_sharing")
        with pytest.raises(ValueError, match="--threads"):
            build_gadget_trace(profile, 200)

    def test_wrong_thread_count_guard(self):
        profile = gadget_profile("v1_bounds_bypass")
        with pytest.raises(ValueError):
            build_parallel_traces(profile, 4, 200)
