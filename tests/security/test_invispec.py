"""Tests for InvisiSpec-style invisible speculation and ReCon on top."""

import pytest

from repro.common import SchemeKind, StatSet
from repro.isa import Program
from repro.security import InvisiSpecPolicy, make_policy
from tests.helpers import run_program

PTR = 0x1000
SLOW = 0x40000


class TestPolicyUnit:
    def test_flags(self):
        policy = InvisiSpecPolicy(StatSet())
        assert policy.invisible_speculation
        assert not policy.gates_on_miss
        assert not policy.load_issue_blocked(frozenset({1}))

    def test_invisibility_decision(self):
        plain = InvisiSpecPolicy(StatSet())
        recon = InvisiSpecPolicy(StatSet(), use_recon=True)
        assert not plain.load_must_be_invisible(False, False)
        assert plain.load_must_be_invisible(True, False)
        assert plain.load_must_be_invisible(True, True)  # no recon: hide
        assert not recon.load_must_be_invisible(True, True)  # lifted
        assert recon.load_must_be_invisible(True, False)

    def test_make_policy(self):
        assert isinstance(
            make_policy(SchemeKind.INVISPEC, StatSet()), InvisiSpecPolicy
        )
        assert SchemeKind.INVISPEC_RECON.base is SchemeKind.INVISPEC
        assert SchemeKind.INVISPEC_RECON.uses_recon


def shadowed_load(warm_cache=False):
    prog = Program()
    prog.poke(PTR, 0x2000)
    if warm_cache:
        prog.li(1, PTR)
        prog.load(9, base=1)
        prog.branch(9, mispredict=True)
    prog.li(4, SLOW)
    prog.load(5, base=4)
    prog.branch(5)                 # long shadow
    prog.li(1, PTR)
    target = prog.load(2, base=1)  # speculative
    return prog, target


class TestInvisiblePipeline:
    def test_invisible_load_leaves_no_cache_state(self):
        prog, target = shadowed_load()
        core = run_program(prog, SchemeKind.INVISPEC)
        # The speculative load produced no observable access...
        assert not any(o.seq == target.seq for o in core.observations)
        # ...and the value still arrived: the trace committed fully.
        assert core.stats.committed_uops == len(prog)

    def test_exposure_installs_after_visibility(self):
        prog, target = shadowed_load()
        core = run_program(prog, SchemeKind.INVISPEC)
        # After the run, the exposed line is resident.
        assert core.hierarchy.private_line(0, PTR) is not None

    def test_repeated_speculative_misses_pay_full_latency(self):
        """Without caching, each speculative access repays the distance.

        A self-pointing word is chased serially: the unsafe baseline
        misses once and then hits the L1; InvisiSpec re-pays the whole
        memory distance on every hop because nothing is ever installed.
        """

        def build():
            prog = Program()
            prog.poke(PTR, PTR)  # *PTR == PTR: a self-loop
            prog.li(4, SLOW)
            prog.load(5, base=4)
            prog.branch(5)
            prog.li(1, PTR)
            reg = 1
            for _ in range(6):
                prog.load(2, base=reg)  # serial: address = previous value
                reg = 2
            return prog

        invis = run_program(build(), SchemeKind.INVISPEC)
        unsafe = run_program(build(), SchemeKind.UNSAFE)
        assert invis.stats.cycles > unsafe.stats.cycles + 50

    def test_recon_restores_caching_for_revealed_words(self):
        def build():
            prog = Program()
            prog.poke(PTR, 0x2000)
            # Reveal PTR non-speculatively, then speculatively chase it.
            prog.li(1, PTR)
            prog.load(2, base=1)
            prog.load(3, base=2)
            prog.branch(3, mispredict=True)
            prog.li(4, SLOW)
            prog.load(5, base=4)
            prog.branch(5)
            prog.li(1, PTR)
            for _ in range(6):
                prog.load(2, base=1)
                prog.alu(3, 2)
            return prog

        plain = run_program(build(), SchemeKind.INVISPEC)
        recon = run_program(build(), SchemeKind.INVISPEC_RECON)
        assert recon.stats.cycles <= plain.stats.cycles
        assert recon.stats.reveal_hits > 0

    def test_never_leaked_secret_stays_invisible_with_recon(self):
        prog, target = shadowed_load()
        core = run_program(prog, SchemeKind.INVISPEC_RECON)
        assert not any(o.seq == target.seq for o in core.observations)

    def test_whole_benchmark_runs(self):
        from repro.sim import RunConfig
        from repro.sim.runner import TraceCache, run_benchmark
        from repro.workloads import get_benchmark

        profile = get_benchmark("spec2017", "xalancbmk")
        config = RunConfig(cache=TraceCache())
        unsafe = run_benchmark(profile, SchemeKind.UNSAFE, 4000, config=config)
        invis = run_benchmark(profile, SchemeKind.INVISPEC, 4000, config=config)
        recon = run_benchmark(
            profile, SchemeKind.INVISPEC_RECON, 4000, config=config
        )
        assert invis.cycles > unsafe.cycles
        assert recon.cycles <= invis.cycles + 30


class TestInvisibleMulticore:
    def test_invisible_read_from_remote_owner(self):
        """An invisible load sources a remote M line without downgrading it."""
        from repro.common import MESIState, StatSet, SystemParams
        from repro.memory import MemoryHierarchy

        params = SystemParams(num_cores=2)
        hier = MemoryHierarchy(params)
        hier.write(1, 0x40)  # core 1 owns in M
        latency = hier.read_invisible(0, 0x40, now=100)
        assert latency > params.memory.llc.latency  # remote sourcing cost
        line = hier.private_line(1, 0x40)
        assert line is not None and line.state is MESIState.MODIFIED

    def test_parallel_invispec_benchmark(self):
        from repro.sim import RunConfig
        from repro.sim.runner import TraceCache, run_benchmark
        from repro.workloads import get_benchmark

        result = run_benchmark(
            get_benchmark("parsec", "canneal"),
            SchemeKind.INVISPEC_RECON,
            1200,
            config=RunConfig(threads=4, cache=TraceCache(), warmup_uops=0),
        )
        assert result.stats.committed_uops >= 4 * 1200
