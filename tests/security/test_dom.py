"""Tests for the Delay-on-Miss policy and its ReCon optimization."""

import pytest

from repro.common import SchemeKind, StatSet
from repro.isa import Program
from repro.security import DomPolicy, make_policy
from tests.helpers import run_program

PTR = 0x1000
SLOW = 0x40000


class TestDomPolicyUnit:
    def test_nonspeculative_always_allowed(self):
        policy = DomPolicy(StatSet())
        assert policy.may_issue_load(False, False, False)

    def test_speculative_hit_allowed(self):
        policy = DomPolicy(StatSet())
        assert policy.may_issue_load(True, True, False)

    def test_speculative_miss_blocked(self):
        policy = DomPolicy(StatSet())
        assert not policy.may_issue_load(True, False, False)

    def test_revealed_miss_allowed_only_with_recon(self):
        assert not DomPolicy(StatSet()).may_issue_load(True, False, True)
        assert DomPolicy(StatSet(), use_recon=True).may_issue_load(
            True, False, True
        )

    def test_no_taint_machinery(self):
        policy = DomPolicy(StatSet())
        assert not policy.load_issue_blocked(frozenset({3}))
        assert not policy.branch_resolution_blocked(frozenset({3}))
        assert policy.gates_on_miss

    def test_make_policy(self):
        assert isinstance(make_policy(SchemeKind.DOM, StatSet()), DomPolicy)
        recon = make_policy(SchemeKind.DOM_RECON, StatSet())
        assert isinstance(recon, DomPolicy) and recon.use_recon
        assert SchemeKind.DOM_RECON.base is SchemeKind.DOM
        assert SchemeKind.DOM_RECON.uses_recon


def shadowed_miss_program(warm=False, reveal=False):
    """A speculative load that misses (unless warmed) under a long shadow."""
    prog = Program()
    prog.poke(PTR, 0x2000)
    if reveal:
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)
        prog.branch(3, mispredict=True)  # serialize past the reveal
    elif warm:
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.branch(2, mispredict=True)
    prog.li(4, SLOW)
    prog.load(5, base=4)
    prog.branch(5)               # long shadow
    prog.li(1, PTR)
    target = prog.load(2, base=1)
    return prog, target


class TestDomPipeline:
    def test_speculative_miss_delayed(self):
        prog, target = shadowed_miss_program()
        core = run_program(prog, SchemeKind.DOM)
        obs = [o for o in core.observations if o.seq == target.seq]
        assert obs and not obs[0].speculative
        assert core.stats.delayed_loads >= 1

    def test_speculative_hit_proceeds(self):
        prog, target = shadowed_miss_program(warm=True)
        core = run_program(prog, SchemeKind.DOM)
        obs = [o for o in core.observations if o.seq == target.seq]
        assert obs and obs[0].speculative  # L1 hit: allowed while speculative

    def test_recon_lifts_revealed_miss(self):
        """ReCon-on-DoM: a revealed word may miss under speculation.

        The reveal warm-up leaves the line in the cache, so evict it from
        the private hierarchy first via the L2/LLC path: we rely on the
        reveal bit surviving in L2/LLC while the L1 copy is gone.
        """
        prog, target = shadowed_miss_program(reveal=True)
        core = run_program(prog, SchemeKind.DOM_RECON)
        obs = [o for o in core.observations if o.seq == target.seq]
        assert obs  # the load accessed memory
        # With the line still private this is a hit anyway; the key
        # property: the run is never slower than plain DoM.
        plain_prog, _ = shadowed_miss_program(reveal=True)
        plain = run_program(plain_prog, SchemeKind.DOM)
        assert core.stats.cycles <= plain.stats.cycles

    def test_dom_commits_whole_trace(self):
        prog, _ = shadowed_miss_program()
        core = run_program(prog, SchemeKind.DOM)
        assert core.stats.committed_uops == len(prog)

    def test_dom_slower_than_unsafe_on_pointer_code(self):
        from repro.sim import RunConfig
        from repro.sim.runner import TraceCache, run_benchmark
        from repro.workloads import get_benchmark

        profile = get_benchmark("spec2017", "xalancbmk")
        config = RunConfig(cache=TraceCache())
        unsafe = run_benchmark(profile, SchemeKind.UNSAFE, 4000, config=config)
        dom = run_benchmark(profile, SchemeKind.DOM, 4000, config=config)
        recon = run_benchmark(profile, SchemeKind.DOM_RECON, 4000, config=config)
        assert dom.cycles > unsafe.cycles
        # At this short, cold length ReCon has nothing to lift yet;
        # it must simply never be meaningfully slower.
        assert recon.cycles <= dom.cycles + 30
