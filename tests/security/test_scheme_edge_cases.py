"""Edge cases of the scheme/pipeline interaction."""

import dataclasses

import pytest

from repro.common import CacheLevel, SchemeKind, SystemParams
from repro.isa import Program
from tests.helpers import make_core, run_program, small_system_params

SLOW = 0x40000
PTR = 0x1000


class TestAbsoluteLoads:
    def test_absolute_load_pair_reveals(self):
        """load_abs -> load is still a pair (dest entry, then src check)."""
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.load_abs(2, PTR)
        prog.load(3, base=2)
        core = run_program(prog, SchemeKind.STT_RECON)
        assert core.stats.load_pairs_detected == 1
        assert core.hierarchy.is_revealed_for(0, PTR)

    def test_absolute_second_load_is_not_a_pair(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load_abs(3, 0x3000)  # no source register: no pair
        core = run_program(prog, SchemeKind.STT_RECON)
        assert core.stats.load_pairs_detected == 0


class TestTaintThroughForwarding:
    def test_forwarded_secret_still_protected(self):
        """A speculative secret stored then forwarded stays tainted."""
        from repro.common import MemPrediction

        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(4, SLOW)
        prog.load(5, base=4)
        prog.branch(5)                # long shadow
        prog.li(1, PTR)
        prog.load(2, base=1)          # speculative load (root)
        prog.li(6, 0x3000)
        prog.store(2, base=6)         # store the secret
        prog.load(
            7, base=6, forced_prediction=MemPrediction.STF
        )                              # forward it back
        transmit = prog.load(8, base=7)  # dereference the forwarded secret
        core = run_program(prog, SchemeKind.STT)
        obs = [o for o in core.observations if o.seq == transmit.seq]
        assert not obs or not obs[0].speculative

    def test_forwarded_data_never_lifts_defenses(self):
        """§4.4.2: loads fed from SQ/SB always see concealed data, even if
        the memory copy of the word is revealed."""
        from repro.common import MemPrediction

        prog = Program()
        prog.poke(PTR, 0x2000)
        # Reveal PTR non-speculatively.
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)
        prog.branch(3, mispredict=True)  # serialize
        # Under a shadow: store to PTR, then load it with forwarding.
        prog.li(4, SLOW)
        prog.load(5, base=4)
        prog.branch(5)
        prog.li(6, 0x2000)
        prog.store(6, base=1)            # store to PTR (SQ/SB)
        prog.load(
            7, base=1, forced_prediction=MemPrediction.STF
        )                                 # forwarded: concealed
        transmit = prog.load(8, base=7)
        core = run_program(prog, SchemeKind.STT_RECON)
        obs = [o for o in core.observations if o.seq == transmit.seq]
        assert not obs or not obs[0].speculative


class TestNdaDeferredBroadcastOrdering:
    def test_deferred_value_arrives_before_commit(self):
        """A load deferred by NDA must still broadcast by its commit."""
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(4, SLOW)
        prog.load(5, base=4)
        prog.branch(5)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.alu(3, 2)  # consumer of the deferred value
        core = run_program(prog, SchemeKind.NDA)
        assert core.stats.committed_uops == len(prog)
        assert core.stats.deferred_broadcasts >= 1


class TestReconWithTinyStructures:
    def test_single_entry_lpt_still_safe_and_correct(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.poke(0x2000, 0x3000)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)
        prog.load(4, base=3)
        params = dataclasses.replace(small_system_params(), lpt_entries=1)
        core = make_core(prog, SchemeKind.STT_RECON, params=params)
        core.run()
        assert core.stats.committed_uops == len(prog)
        # A 1-entry table can still catch back-to-back pairs.
        assert core.stats.load_pairs_detected >= 1

    def test_recon_levels_none_vs_all_equivalent(self):
        def run_with(levels):
            prog = Program()
            prog.poke(PTR, 0x2000)
            prog.li(1, PTR)
            for _ in range(20):
                prog.load(2, base=1)
                prog.load(3, base=2)
            params = dataclasses.replace(
                small_system_params(), recon_levels=levels
            )
            core = make_core(prog, SchemeKind.STT_RECON, params=params)
            core.run()
            return core.stats.cycles

        all_levels = (CacheLevel.L1, CacheLevel.L2, CacheLevel.LLC)
        assert run_with(None) == run_with(all_levels)


class TestMispredictedTaintedBranch:
    def test_recon_shortens_mispredict_bubble(self):
        """A mispredicted branch on a revealed pointer resolves early."""

        def build(reveal):
            prog = Program()
            prog.poke(PTR, 0x2000)
            if reveal:
                prog.li(1, PTR)
                prog.load(2, base=1)
                prog.load(3, base=2)
                prog.branch(3, mispredict=True)
            prog.li(4, SLOW)
            prog.load(5, base=4)
            prog.branch(5)
            prog.li(1, PTR)
            prog.load(2, base=1)
            prog.branch(2, mispredict=True)  # tainted unless revealed
            for i in range(30):
                prog.li(6, i)
            return prog

        # Compare the *suffix* cost: warm run minus cold run isolates the
        # revealed-branch benefit poorly, so compare against plain STT.
        recon = run_program(build(True), SchemeKind.STT_RECON).stats.cycles
        stt_prog = build(True)
        stt = run_program(stt_prog, SchemeKind.STT).stats.cycles
        assert recon <= stt
