"""Pipeline-level behaviour of NDA, STT, and ReCon.

These tests build the paper's motivating patterns as micro-programs and
check both *timing* (who is delayed) and *observability* (which loads
access the cache while speculative).
"""

import pytest

from repro.common import SchemeKind
from repro.isa import Program
from tests.helpers import run_program

#: A cold line whose load miss keeps a branch unresolved for a long time.
SLOW_ADDR = 0x40000
#: The pointer location (the "secret" address for the gadget tests).
PTR_ADDR = 0x1000
#: Where the pointer points (the transmitted address).
TARGET_ADDR = 0x2000


def shadowed_load_pair(extra_warmup=None):
    """A load pair executing under a long-lived branch shadow.

    Returns (program, transmit_load_op): the second load of the pair is the
    transmitter whose behaviour differs across schemes.
    """
    prog = Program()
    prog.poke(PTR_ADDR, TARGET_ADDR)
    if extra_warmup is not None:
        extra_warmup(prog)
    prog.li(4, SLOW_ADDR)
    prog.load(5, base=4)        # long miss
    prog.branch(5)              # shadow stays up until the miss returns
    prog.li(1, PTR_ADDR)
    prog.load(2, base=1)        # speculative access to the pointer
    transmit = prog.load(3, base=2)  # transmitter: dereferences it
    return prog, transmit


def reveal_warmup(prog: Program) -> None:
    """Non-speculative execution of the same load pair: reveals PTR_ADDR.

    Ends with a serializing mispredicted branch dependent on the pair, so
    the pair has committed (and the reveal has been sent to the L1) before
    any later micro-op dispatches.
    """
    prog.li(1, PTR_ADDR)
    prog.load(2, base=1)
    prog.load(3, base=2)
    prog.branch(3, mispredict=True)


def observation_of(core, op):
    matches = [o for o in core.observations if o.seq == op.seq]
    return matches[0] if matches else None


class TestUnsafeBaseline:
    def test_transmitter_observed_speculatively(self):
        prog, transmit = shadowed_load_pair()
        core = run_program(prog, SchemeKind.UNSAFE)
        obs = observation_of(core, transmit)
        assert obs is not None and obs.speculative


class TestStt:
    def test_transmitter_not_observed_while_speculative(self):
        prog, transmit = shadowed_load_pair()
        core = run_program(prog, SchemeKind.STT)
        obs = observation_of(core, transmit)
        assert obs is not None
        assert not obs.speculative  # delayed until the shadow resolved
        assert core.stats.tainted_loads >= 1
        assert core.stats.delayed_loads >= 1

    def test_stt_slower_than_unsafe(self):
        prog_a, _ = shadowed_load_pair()
        prog_b, _ = shadowed_load_pair()
        unsafe = run_program(prog_a, SchemeKind.UNSAFE).stats.cycles
        stt = run_program(prog_b, SchemeKind.STT).stats.cycles
        assert stt > unsafe

    def test_independent_load_not_delayed(self):
        """STT lets independent loads execute under speculation."""
        prog = Program()
        prog.li(4, SLOW_ADDR)
        prog.load(5, base=4)
        prog.branch(5)
        prog.li(1, PTR_ADDR)
        independent = prog.load(2, base=1)  # no dependence on a spec load
        core = run_program(prog, SchemeKind.STT)
        obs = observation_of(core, independent)
        assert obs is not None and obs.speculative

    def test_tainted_branch_resolution_delayed(self):
        """Implicit channel: a branch fed by a tainted value resolves late."""

        def build():
            prog = Program()
            prog.poke(PTR_ADDR, TARGET_ADDR)
            prog.li(4, SLOW_ADDR)
            prog.load(5, base=4)
            prog.branch(5)
            prog.li(1, PTR_ADDR)
            prog.load(2, base=1)
            prog.branch(2, mispredict=True)  # tainted branch
            for i in range(30):
                prog.li(6, i)
            return prog

        stt = run_program(build(), SchemeKind.STT).stats.cycles
        unsafe = run_program(build(), SchemeKind.UNSAFE).stats.cycles
        assert stt > unsafe


class TestNda:
    def test_transmitter_not_observed_while_speculative(self):
        prog, transmit = shadowed_load_pair()
        core = run_program(prog, SchemeKind.NDA)
        obs = observation_of(core, transmit)
        assert obs is not None
        assert not obs.speculative
        assert core.stats.deferred_broadcasts >= 1

    def test_nda_delays_plain_dependents_too(self):
        """NDA blocks even non-transmitting dependents (unlike STT)."""

        def build():
            prog = Program()
            prog.li(4, SLOW_ADDR)
            prog.load(5, base=4)
            prog.branch(5)
            prog.li(1, PTR_ADDR)
            prog.load(2, base=1)
            for _ in range(40):
                prog.alu(3, 2)  # pure computation on the loaded value
            return prog

        nda = run_program(build(), SchemeKind.NDA).stats.cycles
        stt = run_program(build(), SchemeKind.STT).stats.cycles
        assert nda >= stt

    def test_nda_at_least_as_slow_as_unsafe(self):
        prog_a, _ = shadowed_load_pair()
        prog_b, _ = shadowed_load_pair()
        unsafe = run_program(prog_a, SchemeKind.UNSAFE).stats.cycles
        nda = run_program(prog_b, SchemeKind.NDA).stats.cycles
        assert nda > unsafe


@pytest.mark.parametrize("scheme", [SchemeKind.STT_RECON, SchemeKind.NDA_RECON])
class TestRecon:
    def test_pair_detected_and_revealed_nonspeculatively(self, scheme):
        prog = Program()
        prog.poke(PTR_ADDR, TARGET_ADDR)
        reveal_warmup(prog)
        core = run_program(prog, scheme)
        assert core.stats.load_pairs_detected >= 1
        assert core.hierarchy.is_revealed_for(0, PTR_ADDR)

    def test_revealed_word_lifts_defense(self, scheme):
        """After a non-speculative reveal, the pair runs speculatively."""
        prog, transmit = shadowed_load_pair(extra_warmup=reveal_warmup)
        core = run_program(prog, scheme)
        obs = observation_of(core, transmit)
        assert obs is not None
        assert obs.speculative  # defense lifted: transmitted under shadow
        assert core.stats.reveal_hits >= 1

    def test_without_reveal_protection_intact(self, scheme):
        prog, transmit = shadowed_load_pair()  # no warm-up
        core = run_program(prog, scheme)
        obs = observation_of(core, transmit)
        assert obs is not None
        assert not obs.speculative
        assert core.stats.reveal_misses >= 1

    def test_store_conceals_and_restores_protection(self, scheme):
        """A store to the revealed word re-conceals it (section 4.4)."""

        def warmup_then_store(prog: Program) -> None:
            reveal_warmup(prog)
            prog.li(7, 0xBEEF)
            prog.store(7, base=1)  # overwrite PTR_ADDR: conceal
            prog.alu(6, 7)
            prog.branch(6, mispredict=True)  # serialize past the store

        prog, transmit = shadowed_load_pair(extra_warmup=warmup_then_store)
        core = run_program(prog, scheme)
        obs = observation_of(core, transmit)
        # The dependent load exists but must not be observed speculatively.
        assert obs is None or not obs.speculative

    def test_recon_recovers_performance(self, scheme):
        """With reveals, the secure scheme approaches the unsafe baseline."""

        def build():
            prog = Program()
            prog.poke(PTR_ADDR, TARGET_ADDR)
            reveal_warmup(prog)
            for i in range(10):
                prog.li(4, SLOW_ADDR + i * 0x40)
                prog.load(5, base=4)
                prog.branch(5)
                prog.li(1, PTR_ADDR)
                prog.load(2, base=1)
                prog.load(3, base=2)
            return prog

        base = run_program(build(), scheme.base).stats.cycles
        recon = run_program(build(), scheme).stats.cycles
        unsafe = run_program(build(), SchemeKind.UNSAFE).stats.cycles
        assert recon < base
        assert recon >= unsafe


class TestSpectreGadget:
    """Spectre-v1: bounds-check bypass reading a never-leaked secret."""

    SECRET_ADDR = 0x5000

    def gadget(self):
        """The bounds-check-bypass body, modeled as under-shadow code.

        The trace-driven model executes only the correct path, so the
        "transient" body is expressed as code running under a long-lived
        unresolved branch shadow — which is exactly the window a Spectre
        attack exploits and the window the secure schemes must close.
        """
        prog = Program()
        prog.poke(self.SECRET_ADDR, 0x7000)  # the secret (as a pointer)
        prog.li(4, SLOW_ADDR)
        prog.load(5, base=4)              # size: a slow load
        prog.branch(5)                    # bounds check, unresolved
        prog.li(1, self.SECRET_ADDR)
        prog.load(2, base=1)              # speculative secret access
        transmit = prog.load(3, base=2)   # transmit via cache channel
        return prog, transmit

    @pytest.mark.parametrize(
        "scheme",
        [
            SchemeKind.STT,
            SchemeKind.NDA,
            SchemeKind.STT_RECON,
            SchemeKind.NDA_RECON,
        ],
    )
    def test_secret_never_transmitted_speculatively(self, scheme):
        prog, transmit = self.gadget()
        core = run_program(prog, scheme)
        obs = observation_of(core, transmit)
        assert obs is None or not obs.speculative

    def test_unsafe_baseline_leaks(self):
        prog, transmit = self.gadget()
        core = run_program(prog, SchemeKind.UNSAFE)
        obs = observation_of(core, transmit)
        assert obs is not None and obs.speculative
