"""Unit tests for the security-policy objects in isolation."""

from repro.common import StatSet
from repro.security import NdaPolicy, SttPolicy, UnsafePolicy


class TestUnsafePolicy:
    def test_never_blocks(self):
        policy = UnsafePolicy(StatSet())
        assert not policy.load_issue_blocked(frozenset({1}))
        assert not policy.branch_resolution_blocked(frozenset({1}))
        broadcast, taint = policy.on_load_value(5, True, False, frozenset())
        assert broadcast and taint == frozenset()


class TestNdaPolicy:
    def test_defers_speculative_load(self):
        stats = StatSet()
        policy = NdaPolicy(stats)
        broadcast, taint = policy.on_load_value(5, True, False, frozenset())
        assert not broadcast
        assert stats.deferred_broadcasts == 1

    def test_safe_load_broadcasts(self):
        policy = NdaPolicy(StatSet())
        broadcast, _ = policy.on_load_value(5, False, False, frozenset())
        assert broadcast

    def test_revealed_speculative_load_broadcasts(self):
        stats = StatSet()
        policy = NdaPolicy(stats, use_recon=True)
        broadcast, _ = policy.on_load_value(5, True, True, frozenset())
        assert broadcast
        assert stats.deferred_broadcasts == 0

    def test_never_gates_issue(self):
        policy = NdaPolicy(StatSet())
        assert not policy.load_issue_blocked(frozenset({3}))
        assert not policy.branch_resolution_blocked(frozenset({3}))


class TestSttPolicy:
    def test_speculative_load_tainted(self):
        stats = StatSet()
        policy = SttPolicy(stats)
        broadcast, taint = policy.on_load_value(5, True, False, frozenset())
        assert broadcast  # STT propagates; it gates transmitters instead
        assert taint == frozenset({5})
        assert stats.tainted_loads == 1
        assert policy.effectively_tainted(taint)

    def test_transmitters_blocked_while_root_unsafe(self):
        policy = SttPolicy(StatSet())
        _, taint = policy.on_load_value(5, True, False, frozenset())
        assert policy.load_issue_blocked(taint)
        assert policy.store_issue_blocked(taint)
        assert policy.branch_resolution_blocked(taint)

    def test_visibility_untaints(self):
        policy = SttPolicy(StatSet())
        _, taint = policy.on_load_value(5, True, False, frozenset())
        policy.on_visibility(6)
        assert not policy.effectively_tainted(taint)
        assert not policy.load_issue_blocked(taint)

    def test_visibility_frontier_is_exclusive(self):
        policy = SttPolicy(StatSet())
        _, taint = policy.on_load_value(5, True, False, frozenset())
        policy.on_visibility(5)  # frontier AT the load: still unsafe
        assert policy.effectively_tainted(taint)

    def test_revealed_load_not_tainted(self):
        stats = StatSet()
        policy = SttPolicy(stats, use_recon=True)
        broadcast, taint = policy.on_load_value(5, True, True, frozenset())
        assert broadcast and taint == frozenset()
        assert stats.tainted_loads == 0

    def test_taint_propagates_through_dataflow(self):
        policy = SttPolicy(StatSet())
        _, taint = policy.on_load_value(5, True, False, frozenset())
        derived = policy.propagate_taint(taint | frozenset())
        assert policy.effectively_tainted(derived)

    def test_forwarded_taint_carried_through_safe_load(self):
        policy = SttPolicy(StatSet())
        _, root = policy.on_load_value(5, True, False, frozenset())
        # A later load forwards store data derived from root 5.
        _, taint = policy.on_load_value(9, False, False, root)
        assert policy.effectively_tainted(taint)

    def test_union_of_roots(self):
        policy = SttPolicy(StatSet())
        _, t1 = policy.on_load_value(5, True, False, frozenset())
        _, t2 = policy.on_load_value(7, True, False, frozenset())
        both = t1 | t2
        policy.on_visibility(6)  # only root 5 safe
        assert policy.effectively_tainted(both)
        policy.on_visibility(8)
        assert not policy.effectively_tainted(both)
