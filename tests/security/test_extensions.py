"""Tests for the paper's extension points implemented in this repo.

* multi-source load pairs (§5.1.1, left as future work by the paper);
* preservation of invalidated readers' reveal vectors (footnote 1);
* the speculation-model knob (Spectre / control+store / Futuristic).
"""

import dataclasses

import pytest

from repro.common import (
    SchemeKind,
    SpeculationModel,
    StatSet,
    SystemParams,
)
from repro.isa import Program
from repro.memory import MemoryHierarchy
from repro.security import LoadPairTable
from tests.helpers import make_core, run_program, small_system_params

PTR_A = 0x1000
PTR_B = 0x3000
SLOW = 0x40000


class TestMultiSourceLpt:
    def test_both_operands_can_reveal(self):
        lpt = LoadPairTable(entries=16)
        lpt.on_load_commit(dest_phys=3, src_phys=None, load_addr=PTR_A)
        lpt.on_load_commit(dest_phys=4, src_phys=None, load_addr=PTR_B)
        reveals = lpt.on_load_commit_multi(
            dest_phys=7, src_phys=(3, 4), load_addr=0x9000
        )
        assert sorted(reveals) == sorted([PTR_A, PTR_B])
        assert lpt.pairs_detected == 2

    def test_single_source_config_checks_first_operand_only(self):
        prog = Program()
        prog.poke(PTR_A, 0x100)
        prog.poke(PTR_B, 0x200)
        prog.li(1, PTR_A)
        prog.li(2, PTR_B)
        prog.load(3, base=1)            # r3 = scaled value
        prog.load(4, base=2)            # r4 = scaled value
        prog.load_indexed(5, base=3, index=4)  # two load-derived operands
        single = dataclasses.replace(small_system_params(), lpt_sources=1)
        core = make_core(prog, SchemeKind.STT_RECON, params=single)
        core.run()
        assert core.stats.load_pairs_detected == 1  # only via operand 0

    def test_multi_source_config_detects_both(self):
        prog = Program()
        prog.poke(PTR_A, 0x100)
        prog.poke(PTR_B, 0x200)
        prog.li(1, PTR_A)
        prog.li(2, PTR_B)
        prog.load(3, base=1)
        prog.load(4, base=2)
        prog.load_indexed(5, base=3, index=4)
        multi = dataclasses.replace(small_system_params(), lpt_sources=2)
        core = make_core(prog, SchemeKind.STT_RECON, params=multi)
        core.run()
        assert core.stats.load_pairs_detected == 2
        assert core.hierarchy.is_revealed_for(0, PTR_A)
        assert core.hierarchy.is_revealed_for(0, PTR_B)

    def test_clueless_counts_both_operands(self):
        from repro.analysis import Clueless

        prog = Program()
        prog.poke(PTR_A, 0x100)
        prog.poke(PTR_B, 0x200)
        prog.li(1, PTR_A)
        prog.li(2, PTR_B)
        prog.load(3, base=1)
        prog.load(4, base=2)
        prog.load_indexed(5, base=3, index=4)
        report = Clueless().run(prog.trace())
        assert report.pair_leaked_words == 2
        assert report.dift_leaked_words == 2


class TestPreserveInvalidatedReveals:
    def _hier(self, preserve):
        params = dataclasses.replace(
            small_system_params(num_cores=2),
            preserve_invalidated_reveals=preserve,
        )
        return MemoryHierarchy(params)

    def test_reveal_survives_remote_write_of_other_word(self):
        hier = self._hier(preserve=True)
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)          # core 0 reveals word 0
        hier.write(1, 0x38)          # core 1 writes word 7
        assert hier.read(1, 0x0, now=500).revealed  # word 0 preserved
        assert not hier.read(1, 0x38, now=500).revealed

    def test_written_word_still_concealed(self):
        hier = self._hier(preserve=True)
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        hier.write(1, 0x0)           # the written word itself
        assert not hier.read(0, 0x0, now=500).revealed
        assert not hier.read(1, 0x0, now=500).revealed

    def test_default_drops_invalidated_vectors(self):
        """True S-state sharers lose their vectors on invalidation.

        (A sole E/M holder is different: it answers the GetM with data,
        and its vector travels with that response in both configs.)
        """
        hier = self._hier(preserve=False)
        hier.read(0, 0x0)
        hier.read(1, 0x0)   # two sharers: the line is in S everywhere
        hier.reveal(0, 0x0)
        hier.write(1, 0x38)
        assert not hier.read(1, 0x0, now=500).revealed

    def test_preserve_keeps_s_state_sharer_vectors(self):
        hier = self._hier(preserve=True)
        hier.read(0, 0x0)
        hier.read(1, 0x0)
        hier.reveal(0, 0x0)
        hier.write(1, 0x38)
        assert hier.read(1, 0x0, now=500).revealed

    def test_soundness_property_with_preservation(self):
        """The conceal-soundness oracle still holds with footnote-1 on."""
        from repro.common import word_addr

        hier = self._hier(preserve=True)
        may_reveal = {}
        ops = [
            ("r", 0, 0x0), ("v", 0, 0x0), ("w", 1, 0x8), ("r", 1, 0x0),
            ("w", 0, 0x0), ("r", 1, 0x0), ("v", 1, 0x8), ("w", 0, 0x8),
            ("r", 1, 0x8), ("r", 0, 0x8),
        ]
        now = 0
        for kind, core, addr in ops:
            now += 300
            if kind == "r":
                if hier.read(core, addr, now=now).revealed:
                    assert may_reveal.get(word_addr(addr), False)
            elif kind == "w":
                hier.write(core, addr, now=now)
                may_reveal[word_addr(addr)] = False
            else:
                if hier.reveal(core, addr):
                    may_reveal[word_addr(addr)] = True
        hier.check_coherence_invariants()


class TestSpeculationModels:
    def _overhead(self, model):
        def build():
            prog = Program()
            prog.poke(PTR_A, 0x2000)
            for i in range(25):
                prog.li(4, SLOW + i * 0x40)
                prog.load(5, base=4)
                prog.branch(5)
                prog.li(1, PTR_A)
                prog.load(2, base=1)
                prog.load(3, base=2)
                prog.li(6, 0x8000 + i * 8)
                prog.store(3, base=6)
            return prog

        params = dataclasses.replace(
            small_system_params(), speculation_model=model
        )
        unsafe = make_core(build(), SchemeKind.UNSAFE, params=params)
        unsafe.run()
        stt = make_core(build(), SchemeKind.STT, params=params)
        stt.run()
        return stt.stats.cycles / unsafe.stats.cycles

    def test_model_ordering(self):
        """Spectre <= control+store <= Futuristic overhead (paper §6.1)."""
        control = self._overhead(SpeculationModel.CONTROL_ONLY)
        default = self._overhead(SpeculationModel.CONTROL_AND_STORE)
        futuristic = self._overhead(SpeculationModel.FUTURISTIC)
        assert control <= default + 0.01
        assert default <= futuristic + 0.01
        assert futuristic > 1.0

    def test_control_only_ignores_store_shadows(self):
        prog = Program()
        prog.li(1, 0x8000)
        prog.li(2, 5)
        prog.store(2, base=1)
        prog.li(3, PTR_A)
        prog.load(4, base=3)
        params = dataclasses.replace(
            small_system_params(),
            speculation_model=SpeculationModel.CONTROL_ONLY,
        )
        core = make_core(prog, SchemeKind.STT, params=params)
        core.run()
        # No branch in flight: the load is never speculative.
        assert core.stats.tainted_loads == 0

    def test_futuristic_taints_under_load_shadows(self):
        prog = Program()
        prog.poke(PTR_A, 0x2000)
        prog.poke(SLOW, SLOW + 0x1000)
        prog.li(1, PTR_A)
        prog.load(9, base=1)   # warm the line (non-speculative)
        prog.alu(9, 9)
        prog.li(4, SLOW)
        prog.load(5, base=4)   # DRAM miss...
        prog.load(6, base=5)   # ...chained into a second one: long shadow
        prog.load(2, base=1)   # returns well inside the load shadow
        prog.load(3, base=2)
        params = dataclasses.replace(
            small_system_params(),
            speculation_model=SpeculationModel.FUTURISTIC,
        )
        core = make_core(prog, SchemeKind.STT, params=params)
        core.run()
        assert core.stats.tainted_loads >= 1
