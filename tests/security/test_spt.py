"""Tests for the SPT-lite continuous-tracking policies."""

from repro.common import SchemeKind, StatSet, SystemParams
from repro.core import Core
from repro.isa import Program
from repro.memory import MemoryHierarchy
from repro.security import SptNdaPolicy, SptSttPolicy, make_policy

PTR = 0x1000
SLOW = 0x40000


def run_with(policy_cls, prog):
    params = SystemParams()
    stats = StatSet()
    core = Core(
        0,
        params,
        prog.trace(),
        MemoryHierarchy(params),
        policy_cls(stats),
        stats,
    )
    core.run()
    return core


def indirect_reveal_then_speculative_pair():
    """The pointer leaks *indirectly* (ALU in between): ReCon's LPT cannot
    see it, SPT's global DIFT can."""
    prog = Program()
    prog.poke(PTR, 0x2000)
    prog.li(1, PTR)
    prog.load(2, base=1)
    prog.add_imm(3, 2, 0)        # indirect
    prog.load(4, base=3)         # leaks PTR via DIFT only
    prog.branch(4, mispredict=True)  # serialize past commit
    prog.li(4, SLOW)
    prog.load(5, base=4)
    prog.branch(5)               # long shadow
    prog.li(1, PTR)
    prog.load(2, base=1)         # speculative
    transmit = prog.load(3, base=2)
    return prog, transmit


class TestSptTracking:
    def test_commit_stream_feeds_leak_map(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)
        core = run_with(SptSttPolicy, prog)
        assert core.policy.word_is_public(PTR)
        assert core.policy.leaked_words == 1

    def test_store_conceals_in_leak_map(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)
        prog.li(4, 7)
        prog.store(4, base=1)
        core = run_with(SptSttPolicy, prog)
        assert not core.policy.word_is_public(PTR)

    def test_spt_lifts_indirect_leakage_recon_cannot(self):
        prog, transmit = indirect_reveal_then_speculative_pair()
        spt_core = run_with(SptSttPolicy, prog)
        obs = [o for o in spt_core.observations if o.seq == transmit.seq]
        assert obs and obs[0].speculative  # SPT lifted the defense

        prog2, transmit2 = indirect_reveal_then_speculative_pair()
        params = SystemParams()
        stats = StatSet()
        recon_core = Core(
            0,
            params,
            prog2.trace(),
            MemoryHierarchy(params),
            make_policy(SchemeKind.STT_RECON, stats),
            stats,
        )
        recon_core.run()
        obs2 = [o for o in recon_core.observations if o.seq == transmit2.seq]
        assert not obs2 or not obs2[0].speculative  # ReCon could not

    def test_spt_protects_never_leaked_secrets(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(4, SLOW)
        prog.load(5, base=4)
        prog.branch(5)
        prog.li(1, PTR)
        prog.load(2, base=1)          # speculative, never leaked before
        transmit = prog.load(3, base=2)
        core = run_with(SptSttPolicy, prog)
        obs = [o for o in core.observations if o.seq == transmit.seq]
        assert not obs or not obs[0].speculative

    def test_spt_nda_variant_broadcasts_public_values(self):
        prog, transmit = indirect_reveal_then_speculative_pair()
        core = run_with(SptNdaPolicy, prog)
        obs = [o for o in core.observations if o.seq == transmit.seq]
        assert obs and obs[0].speculative

    def test_spt_uses_no_lpt(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)
        core = run_with(SptSttPolicy, prog)
        assert core.lpt is None
        assert core.stats.load_pairs_detected == 0


class TestSptSchemeKind:
    def test_make_policy_builds_spt(self):
        from repro.common import SchemeKind
        from repro.security import SptNdaPolicy, SptSttPolicy, make_policy

        assert isinstance(
            make_policy(SchemeKind.STT_SPT, StatSet()), SptSttPolicy
        )
        assert isinstance(
            make_policy(SchemeKind.NDA_SPT, StatSet()), SptNdaPolicy
        )

    def test_base_property(self):
        from repro.common import SchemeKind

        assert SchemeKind.STT_SPT.base is SchemeKind.STT
        assert SchemeKind.NDA_SPT.base is SchemeKind.NDA
        assert not SchemeKind.STT_SPT.uses_recon

    def test_spt_runs_through_system(self):
        from repro.common import SchemeKind
        from repro.sim import RunConfig
        from repro.sim.runner import TraceCache, run_benchmark
        from repro.workloads import get_benchmark

        result = run_benchmark(
            get_benchmark("spec2017", "omnetpp"),
            SchemeKind.STT_SPT,
            1500,
            config=RunConfig(cache=TraceCache(), warmup_uops=0),
        )
        assert result.stats.committed_uops >= 1500
