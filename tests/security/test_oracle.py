"""Tests for the oracle ablation machinery."""

from repro.analysis.oracle import oracle_revealed_loads
from repro.common import SchemeKind, StatSet, SystemParams
from repro.core import Core
from repro.isa import Program
from repro.memory import MemoryHierarchy
from repro.security.oracle import OracleNdaPolicy, OracleSttPolicy
from tests.helpers import run_program

PTR = 0x1000
SLOW = 0x40000


class TestOracleSet:
    def test_detects_prior_leak(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(1, PTR)
        prog.load(2, base=1)       # not leaked yet at this load
        prog.load(3, base=2)       # leaks PTR
        third = prog.load(4, base=1)  # PTR already leaked here
        oracle = oracle_revealed_loads(prog.trace())
        assert third.seq in oracle
        assert len(oracle) == 1

    def test_store_conceals_for_oracle(self):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.load(3, base=2)       # leak PTR
        prog.li(5, 7)
        prog.store(5, base=1)      # conceal PTR
        later = prog.load(6, base=1)
        oracle = oracle_revealed_loads(prog.trace())
        assert later.seq not in oracle

    def test_indirect_leak_included(self):
        """The oracle sees DIFT leakage that the LPT cannot."""
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(1, PTR)
        prog.load(2, base=1)
        prog.add_imm(3, 2, 0)      # indirect: breaks the pair
        prog.load(4, base=3)       # leaks PTR via DIFT only
        later = prog.load(5, base=1)
        oracle = oracle_revealed_loads(prog.trace())
        assert later.seq in oracle


class TestOraclePolicies:
    def _run(self, policy_cls, oracle):
        prog = Program()
        prog.poke(PTR, 0x2000)
        prog.li(4, SLOW)
        prog.load(5, base=4)
        prog.branch(5)              # long shadow
        prog.li(1, PTR)
        prog.load(2, base=1)        # speculative
        transmit = prog.load(3, base=2)
        params = SystemParams()
        stats = StatSet()
        core = Core(
            0,
            params,
            prog.trace(),
            MemoryHierarchy(params),
            policy_cls(stats, oracle),
            stats,
        )
        core.run()
        return core, transmit.seq

    def test_oracle_lifts_when_word_known_leaked(self):
        # Pretend the oracle says the pointer load (seq of load r2) leaked.
        # Build once to find the seq, then run with that oracle set.
        core, transmit_seq = self._run(OracleSttPolicy, set())
        pointer_load_seq = transmit_seq - 1
        core2, transmit_seq2 = self._run(
            OracleSttPolicy, {pointer_load_seq}
        )
        spec2 = [o for o in core2.observations if o.seq == transmit_seq2]
        assert spec2 and spec2[0].speculative  # lifted
        spec1 = [o for o in core.observations if o.seq == transmit_seq]
        assert not spec1 or not spec1[0].speculative  # protected

    def test_oracle_nda_policy_defers_without_knowledge(self):
        core, _ = self._run(OracleNdaPolicy, set())
        assert core.stats.deferred_broadcasts >= 1

    def test_oracle_never_slower_than_plain_scheme(self):
        prog_cycles = {}
        for label, scheme in (("stt", SchemeKind.STT),):
            prog = Program()
            prog.poke(PTR, 0x2000)
            prog.li(1, PTR)
            prog.load(2, base=1)
            prog.load(3, base=2)
            prog.branch(3, mispredict=True)
            prog.li(4, SLOW)
            prog.load(5, base=4)
            prog.branch(5)
            prog.li(1, PTR)
            prog.load(2, base=1)
            prog.load(3, base=2)
            oracle = oracle_revealed_loads(prog.trace())
            params = SystemParams()
            plain_stats = StatSet()
            from repro.security import make_policy

            core_plain = Core(
                0,
                params,
                prog.trace(),
                MemoryHierarchy(params),
                make_policy(scheme, plain_stats),
                plain_stats,
            )
            core_plain.run()
            stats = StatSet()
            prog2 = Program()  # rebuild identical program
            prog2.poke(PTR, 0x2000)
            prog2.li(1, PTR)
            prog2.load(2, base=1)
            prog2.load(3, base=2)
            prog2.branch(3, mispredict=True)
            prog2.li(4, SLOW)
            prog2.load(5, base=4)
            prog2.branch(5)
            prog2.li(1, PTR)
            prog2.load(2, base=1)
            prog2.load(3, base=2)
            core_oracle = Core(
                0,
                params,
                prog2.trace(),
                MemoryHierarchy(params),
                OracleSttPolicy(stats, oracle),
                stats,
            )
            core_oracle.run()
            # Lifting defenses shifts issue timing, which at micro scale
            # can cost a few cycles through second-order effects (memory
            # ordering, fetch bubbles); allow that slack.
            assert core_oracle.stats.cycles <= core_plain.stats.cycles + 30
