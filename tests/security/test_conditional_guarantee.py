"""The conditional security guarantee of paper §3.2.

Programs with secret-dependent *non-speculative* behaviour have made
their secrets public — ReCon (like SPT) will not protect them.  Programs
written with constant-time discipline keep their security premise
unchanged.  This test reproduces the paper's AES key-selection example
in both forms and checks what each reveals.
"""

from repro.analysis import Clueless
from repro.common import SchemeKind
from repro.isa import Program
from tests.helpers import run_program

KEYS_BASE = 0x2000        # AES_KEYS[0..7]
SELECTOR_ADDR = 0x1000    # key_selector[iteration]
NUM_KEYS = 8


def leaky_selection() -> Program:
    """key = AES_KEYS[selector] — the selector indexes memory directly."""
    prog = Program()
    prog.poke(SELECTOR_ADDR, 3 * 8)  # scaled secret selector
    for i in range(NUM_KEYS):
        prog.poke(KEYS_BASE + i * 8, 0xAA00 + i)
    # Obfuscation attempt: touch all keys first (lines 1-3 of the paper).
    prog.li(1, KEYS_BASE)
    for i in range(NUM_KEYS):
        prog.load(2, base=1, offset=i * 8)
    # selector = key_selector[it]; key = AES_KEYS[selector] (lines 4-5).
    prog.li(3, SELECTOR_ADDR)
    prog.load(4, base=3)                    # the secret selector
    prog.load(5, base=4, offset=KEYS_BASE)  # secret-dependent access!
    return prog


def constant_time_selection() -> Program:
    """Branchless masked accumulation: the selector never forms an address."""
    prog = Program()
    prog.poke(SELECTOR_ADDR, 3)
    for i in range(NUM_KEYS):
        prog.poke(KEYS_BASE + i * 8, 0xAA00 + i)
    prog.li(3, SELECTOR_ADDR)
    prog.load(4, base=3)         # the secret selector (a plain value)
    prog.li(6, 0)                # key accumulator
    prog.li(1, KEYS_BASE)
    for i in range(NUM_KEYS):
        prog.load(2, base=1, offset=i * 8)  # access every key
        prog.li(7, i)
        prog.alu(8, 4, 7)        # cmp = f(selector, i)
        prog.alu(9, 8, 2)        # mask & key
        prog.alu(6, 6, 9)        # key |= ...
    return prog


class TestLeakySelection:
    def test_selector_leaks_nonspeculatively(self):
        report = Clueless().run(leaky_selection().trace())
        # The selector's home address is a leakage point (DIFT and pair).
        prog = leaky_selection()
        analyzer = Clueless()
        for uop in prog.trace():
            analyzer.step(uop)
        assert analyzer._dift.leaked  # selector word leaked
        assert report.pair_leaked_words >= 1

    def test_recon_marks_selector_revealed(self):
        """Under ReCon the selector's address becomes revealed: future
        speculative replays of the gadget are *not* protected — exactly
        the paper's warning about secret-dependent behaviour."""
        core = run_program(leaky_selection(), SchemeKind.STT_RECON)
        assert core.hierarchy.is_revealed_for(0, SELECTOR_ADDR)


class TestConstantTimeSelection:
    def test_selector_never_leaks(self):
        report = Clueless().run(constant_time_selection().trace())
        assert report.dift_leaked_words == 0
        assert report.pair_leaked_words == 0

    def test_recon_never_reveals_selector(self):
        core = run_program(constant_time_selection(), SchemeKind.STT_RECON)
        assert not core.hierarchy.is_revealed_for(0, SELECTOR_ADDR)
        assert core.stats.load_pairs_detected == 0

    def test_constant_time_still_protected_speculatively(self):
        """A later speculative read of the selector stays defended."""
        prog = constant_time_selection()
        prog.li(10, 0x40000)
        prog.load(11, base=10)
        prog.branch(11)               # long shadow
        prog.load(12, base=3)         # speculative selector read
        transmit = prog.load(13, base=12, offset=KEYS_BASE)
        core = run_program(prog, SchemeKind.STT_RECON)
        obs = [o for o in core.observations if o.seq == transmit.seq]
        assert not obs or not obs[0].speculative
