"""Unit tests for the load-pair table (paper section 5.1, Figure 3)."""

from repro.security import LoadPairTable


class TestFullSizeLpt:
    def test_pair_detected(self):
        lpt = LoadPairTable(entries=16)
        # LD1: load p5, [0x1000]  — writes entry for p5.
        assert lpt.on_load_commit(dest_phys=5, src_phys=None, load_addr=0x1000) is None
        # LD2: load p7, [p5]  — source entry active: reveal LD1's address.
        assert lpt.on_load_commit(dest_phys=7, src_phys=5, load_addr=0x2000) == 0x1000
        assert lpt.pairs_detected == 1

    def test_chain_of_dereferences(self):
        lpt = LoadPairTable(entries=16)
        lpt.on_load_commit(1, None, 0xA0)
        assert lpt.on_load_commit(2, 1, 0xB0) == 0xA0
        assert lpt.on_load_commit(3, 2, 0xC0) == 0xB0

    def test_intervening_alu_clears_entry(self):
        """load r1; add r1, ...; load [r1] is NOT a direct pair."""
        lpt = LoadPairTable(entries=16)
        lpt.on_load_commit(dest_phys=5, src_phys=None, load_addr=0x1000)
        lpt.on_other_commit(dest_phys=9)  # add p9 <- p5, ...
        # The dependent load's source is p9 (the ALU result), not p5.
        assert lpt.on_load_commit(dest_phys=7, src_phys=9, load_addr=0x2000) is None

    def test_non_load_commit_deactivates_own_dest(self):
        lpt = LoadPairTable(entries=16)
        lpt.on_load_commit(dest_phys=5, src_phys=None, load_addr=0x1000)
        lpt.on_other_commit(dest_phys=5)  # p5 rewritten by a non-load
        assert lpt.on_load_commit(dest_phys=7, src_phys=5, load_addr=0x2000) is None

    def test_inactive_source_no_pair(self):
        lpt = LoadPairTable(entries=16)
        assert lpt.on_load_commit(dest_phys=7, src_phys=3, load_addr=0x2000) is None
        assert lpt.pairs_detected == 0

    def test_absolute_load_writes_dest_only(self):
        lpt = LoadPairTable(entries=16)
        lpt.on_load_commit(dest_phys=4, src_phys=None, load_addr=0x3000)
        active, addr = lpt.entry_state(4)
        assert active and addr == 0x3000


class TestHashedLpt:
    def test_conflict_drops_reveal_safely(self):
        lpt = LoadPairTable(entries=4)
        lpt.on_load_commit(dest_phys=1, src_phys=None, load_addr=0x1000)
        # phys 5 hashes to the same entry as phys 1 (5 % 4 == 1).
        lpt.on_load_commit(dest_phys=5, src_phys=None, load_addr=0x5000)
        # A consumer of phys 1 now misses: the entry is tagged 5.
        assert lpt.on_load_commit(dest_phys=2, src_phys=1, load_addr=0x2000) is None
        assert lpt.conflicts == 1

    def test_tag_prevents_false_reveal(self):
        """A conflicting entry must never reveal the wrong address."""
        lpt = LoadPairTable(entries=2)
        lpt.on_load_commit(dest_phys=4, src_phys=None, load_addr=0xAAAA)
        # Consumer of phys 6 (same index as 4): must not reveal 0xAAAA.
        assert lpt.on_load_commit(dest_phys=1, src_phys=6, load_addr=0x1) is None

    def test_self_aliasing_indices_cannot_fabricate_pair(self):
        """dest and src hashing to one entry: src checked before overwrite."""
        lpt = LoadPairTable(entries=1)
        lpt.on_load_commit(dest_phys=3, src_phys=None, load_addr=0x3000)
        # This load's dest (7) and src (3) share the single entry.
        assert lpt.on_load_commit(dest_phys=7, src_phys=3, load_addr=0x7000) == 0x3000
        # Now the entry is tagged 7; a consumer of 3 must miss.
        assert lpt.on_load_commit(dest_phys=9, src_phys=3, load_addr=0x9000) is None

    def test_other_commit_with_mismatched_tag_preserves_entry(self):
        lpt = LoadPairTable(entries=2)
        lpt.on_load_commit(dest_phys=2, src_phys=None, load_addr=0x2000)
        lpt.on_other_commit(dest_phys=4)  # same index, different tag
        assert lpt.on_load_commit(dest_phys=5, src_phys=2, load_addr=0x5) == 0x2000

    def test_rejects_nonpositive_size(self):
        import pytest

        with pytest.raises(ValueError):
            LoadPairTable(entries=0)
