"""Integration: unusual-but-supported configurations run end to end."""

import dataclasses

import pytest

from repro.common import (
    MemoryParams,
    SchemeKind,
    SpeculationModel,
    SystemParams,
)
from repro.sim import RunConfig
from repro.sim.runner import TraceCache, run_benchmark
from repro.workloads import get_benchmark

LENGTH = 1_500


def run_with(params, scheme=SchemeKind.STT_RECON, threads=1, name="omnetpp"):
    suite = "parsec" if threads > 1 else "spec2017"
    bench = "canneal" if threads > 1 else name
    return run_benchmark(
        get_benchmark(suite, bench),
        scheme,
        LENGTH,
        config=RunConfig(
            params=params, threads=threads, cache=TraceCache(), warmup_uops=0
        ),
    )


class TestConfigMatrix:
    def test_mesh_multicore_recon(self):
        params = SystemParams(
            num_cores=4,
            memory=dataclasses.replace(
                SystemParams().memory, topology="mesh", mesh_rows=2, mesh_cols=2
            ),
        )
        result = run_with(params, threads=4)
        assert result.stats.committed_uops >= 4 * LENGTH
        assert result.stats.load_pairs_detected > 0

    def test_prefetch_plus_recon(self):
        params = SystemParams(
            memory=dataclasses.replace(
                SystemParams().memory, prefetch_next_line=True
            )
        )
        result = run_with(params)
        assert result.stats.committed_uops >= LENGTH

    def test_futuristic_plus_recon(self):
        params = SystemParams(speculation_model=SpeculationModel.FUTURISTIC)
        result = run_with(params)
        assert result.stats.committed_uops >= LENGTH
        # Futuristic shadows make almost every load speculative.
        assert result.stats.reveal_hits + result.stats.reveal_misses > 0

    def test_dom_on_mesh_with_prefetch(self):
        params = SystemParams(
            memory=dataclasses.replace(
                SystemParams().memory,
                topology="mesh",
                prefetch_next_line=True,
            )
        )
        result = run_with(params, scheme=SchemeKind.DOM_RECON)
        assert result.stats.committed_uops >= LENGTH

    def test_tiny_lpt_futuristic_l1_only(self):
        from repro.common import CacheLevel

        params = SystemParams(
            speculation_model=SpeculationModel.FUTURISTIC,
            recon_levels=(CacheLevel.L1,),
            lpt_entries=2,
        )
        result = run_with(params)
        assert result.stats.committed_uops >= LENGTH

    def test_all_schemes_on_one_config(self):
        params = SystemParams()
        cycles = {}
        for scheme in SchemeKind:
            result = run_with(params, scheme=scheme, name="xalancbmk")
            cycles[scheme] = result.cycles
            assert result.stats.committed_uops >= LENGTH
        assert cycles[SchemeKind.UNSAFE] == min(cycles.values())
