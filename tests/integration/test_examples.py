"""Smoke tests: every example script runs to completion and prints what
its docstring promises."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, timeout=600):
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "stt+recon" in out
        assert "ReCon recovered" in out

    def test_spectre_gadget(self):
        out = run_example("spectre_gadget.py")
        # The unsafe baseline leaks the never-leaked secret...
        never = out.split("ALREADY-REVEALED")[0]
        assert "unsafe    : TRANSMITTED while speculative" in never
        # ...the secure schemes do not...
        assert never.count("TRANSMITTED while speculative") == 1
        # ...and ReCon lifts only for the already-revealed pointer.
        revealed = out.split("ALREADY-REVEALED")[1]
        assert "stt+recon : TRANSMITTED while speculative" in revealed
        assert "nda+recon : TRANSMITTED while speculative" in revealed
        assert "stt       : transmitted only after" in revealed

    def test_multicore_sharing(self):
        out = run_example("multicore_sharing.py")
        assert "reveal hits" in out
        assert "canneal" in out

    def test_leakage_analysis(self):
        out = run_example("leakage_analysis.py")
        assert "spec2017/mcf" in out
        assert "pairs / DIFT" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "custom/minidb" in out
        assert "saved 8000 micro-ops" in out
