"""End-to-end integration tests across the whole stack.

These are the behaviours the figure benches depend on, checked at small
scale so the main suite stays fast.
"""

import pytest

from repro import RunConfig, SchemeKind, get_benchmark, run_benchmark
from repro.sim.runner import TraceCache

LENGTH = 4_000
ALL_SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.NDA_RECON,
    SchemeKind.STT,
    SchemeKind.STT_RECON,
)


@pytest.fixture(scope="module")
def pointer_results():
    """xalancbmk-like run under every scheme, on identical traces."""
    profile = get_benchmark("spec2017", "xalancbmk")
    cache = TraceCache()
    return {
        scheme: run_benchmark(profile, scheme, LENGTH, config=RunConfig(cache=cache))
        for scheme in ALL_SCHEMES
    }


class TestSchemeOrdering:
    def test_every_scheme_commits_the_whole_trace(self, pointer_results):
        counts = {
            s: r.stats.committed_uops for s, r in pointer_results.items()
        }
        assert len(set(counts.values())) == 1

    def test_unsafe_is_fastest(self, pointer_results):
        unsafe = pointer_results[SchemeKind.UNSAFE].cycles
        for scheme in ALL_SCHEMES[1:]:
            assert pointer_results[scheme].cycles >= unsafe

    def test_recon_recovers_on_pointer_code(self, pointer_results):
        assert (
            pointer_results[SchemeKind.STT_RECON].cycles
            <= pointer_results[SchemeKind.STT].cycles
        )
        assert (
            pointer_results[SchemeKind.NDA_RECON].cycles
            <= pointer_results[SchemeKind.NDA].cycles
        )

    def test_recon_reduces_tainted_loads(self, pointer_results):
        stt = pointer_results[SchemeKind.STT].stats.tainted_loads
        recon = pointer_results[SchemeKind.STT_RECON].stats.tainted_loads
        assert stt > 0
        assert recon < stt

    def test_recon_detects_pairs_and_hits(self, pointer_results):
        stats = pointer_results[SchemeKind.STT_RECON].stats
        assert stats.load_pairs_detected > 0
        assert stats.reveal_hits > 0


class TestStreamingBenchmark:
    def test_no_overhead_without_pointer_leakage(self):
        profile = get_benchmark("spec2017", "lbm")
        cache = TraceCache()
        config = RunConfig(cache=cache)
        unsafe = run_benchmark(profile, SchemeKind.UNSAFE, LENGTH, config=config)
        stt = run_benchmark(profile, SchemeKind.STT, LENGTH, config=config)
        assert stt.cycles <= unsafe.cycles * 1.03


class TestMulticoreCoherentReveals:
    def test_parallel_pointer_benchmark_recovers(self):
        profile = get_benchmark("parsec", "canneal")
        cache = TraceCache()
        results = {
            scheme: run_benchmark(
                profile, scheme, 1500, config=RunConfig(threads=4, cache=cache)
            )
            for scheme in (SchemeKind.UNSAFE, SchemeKind.STT, SchemeKind.STT_RECON)
        }
        assert results[SchemeKind.STT].cycles > results[SchemeKind.UNSAFE].cycles
        assert (
            results[SchemeKind.STT_RECON].cycles
            <= results[SchemeKind.STT].cycles
        )
        assert results[SchemeKind.STT_RECON].stats.reveal_hits > 0

    def test_coherence_invariants_after_full_parallel_run(self):
        from repro.common import SystemParams
        from repro.sim import System
        from repro.workloads import build_parallel_traces

        profile = get_benchmark("parsec", "dedup")
        traces = [
            p.trace() for p in build_parallel_traces(profile, 4, 1200)
        ]
        system = System(SystemParams(num_cores=4), traces, SchemeKind.STT_RECON)
        system.run()
        system.hierarchy.check_coherence_invariants()


class TestLptSizeSafety:
    def test_tiny_lpt_only_loses_performance_never_pairs_from_wrong_reg(self):
        import dataclasses

        from repro.common import SystemParams

        profile = get_benchmark("spec2017", "mcf")
        cache = TraceCache()
        full = run_benchmark(
            profile, SchemeKind.STT_RECON, LENGTH, config=RunConfig(cache=cache)
        )
        tiny = run_benchmark(
            profile,
            SchemeKind.STT_RECON,
            LENGTH,
            config=RunConfig(params=SystemParams(lpt_entries=4), cache=cache),
        )
        # Fewer (never more) pairs detected with a conflict-prone table.
        assert tiny.stats.load_pairs_detected <= full.stats.load_pairs_detected
        assert tiny.stats.lpt_conflicts > 0


class TestReconLevelsEndToEnd:
    def test_restricting_levels_reduces_hits(self):
        import dataclasses

        from repro.common import CacheLevel, SystemParams

        profile = get_benchmark("spec2017", "omnetpp")
        cache = TraceCache()
        full = run_benchmark(
            profile, SchemeKind.STT_RECON, LENGTH, config=RunConfig(cache=cache)
        )
        l1only = run_benchmark(
            profile,
            SchemeKind.STT_RECON,
            LENGTH,
            config=RunConfig(
                params=SystemParams(recon_levels=(CacheLevel.L1,)), cache=cache
            ),
        )
        assert l1only.stats.reveal_hits <= full.stats.reveal_hits
