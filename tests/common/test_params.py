"""Unit tests for configuration dataclasses."""

import dataclasses

import pytest

from repro.common import CacheLevel, CacheParams, CoreParams, MemoryParams, SystemParams


class TestCoreParams:
    def test_defaults_match_table2(self):
        core = CoreParams()
        assert core.decode_width == 8
        assert core.issue_width == 8
        assert core.commit_width == 8
        assert core.iq_entries == 160
        assert core.rob_entries == 352
        assert core.lq_entries == 128
        assert core.sq_entries == 72

    def test_validate_rejects_zero_width(self):
        with pytest.raises(ValueError):
            dataclasses.replace(CoreParams(), decode_width=0).validate()

    def test_validate_rejects_too_few_phys_regs(self):
        with pytest.raises(ValueError):
            dataclasses.replace(CoreParams(), phys_regs=16, arch_regs=32).validate()


class TestCacheParams:
    def test_geometry(self):
        cache = CacheParams(size_bytes=64 * 1024, ways=8, latency=2)
        assert cache.num_lines == 1024
        assert cache.num_sets == 128

    def test_validate_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheParams(size_bytes=3 * 64 * 10, ways=2, latency=1).validate()

    def test_validate_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            CacheParams(size_bytes=100, ways=2, latency=1).validate()


class TestSystemParams:
    def test_defaults_validate(self):
        SystemParams().validate()

    def test_recon_visible_everywhere_by_default(self):
        params = SystemParams()
        assert params.recon_visible_at(CacheLevel.L1)
        assert params.recon_visible_at(CacheLevel.L2)
        assert params.recon_visible_at(CacheLevel.LLC)
        assert not params.recon_visible_at(CacheLevel.MEMORY)

    def test_recon_l1_only(self):
        params = SystemParams(recon_levels=(CacheLevel.L1,))
        assert params.recon_visible_at(CacheLevel.L1)
        assert not params.recon_visible_at(CacheLevel.L2)
        assert not params.recon_visible_at(CacheLevel.LLC)

    def test_lpt_defaults_to_phys_regs(self):
        params = SystemParams()
        assert params.effective_lpt_entries == params.core.phys_regs
        assert SystemParams(lpt_entries=28).effective_lpt_entries == 28

    def test_rejects_memory_recon_level(self):
        with pytest.raises(ValueError):
            SystemParams(recon_levels=(CacheLevel.MEMORY,)).validate()

    def test_memory_latencies_match_table2(self):
        mem = MemoryParams()
        assert mem.l1.latency == 2
        assert mem.l2.latency == 6
        assert mem.llc.latency == 16


class TestStatSet:
    def test_ipc(self):
        from repro.common import StatSet

        stats = StatSet()
        stats.cycles = 100
        stats.committed_uops = 250
        assert stats.ipc == 2.5

    def test_ipc_zero_cycles(self):
        from repro.common import StatSet

        assert StatSet().ipc == 0.0

    def test_merge_adds_counters_and_maxes_cycles(self):
        from repro.common import StatSet

        a = StatSet()
        a.cycles, a.committed_uops, a.l1_hits = 100, 50, 7
        b = StatSet()
        b.cycles, b.committed_uops, b.l1_hits = 80, 60, 3
        a.merge(b)
        assert a.cycles == 100
        assert a.committed_uops == 110
        assert a.l1_hits == 10
