"""Unit tests for the shared discrete-event queue."""

from repro.common import EventQueue


class TestEventQueue:
    def test_empty_queue_is_inert(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert queue.next_cycle() is None
        assert queue.service(100) is False

    def test_fires_at_or_before_cycle(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda now: fired.append(("a", now)))
        queue.schedule(10, lambda now: fired.append(("b", now)))
        assert queue.service(4) is False
        assert queue.service(5) is True
        assert fired == [("a", 5)]
        # An event whose cycle was skipped over still fires (late).
        assert queue.service(30) is True
        assert fired == [("a", 5), ("b", 30)]
        assert len(queue) == 0

    def test_same_cycle_fires_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            queue.schedule(7, lambda now, tag=tag: fired.append(tag))
        queue.service(7)
        assert fired == ["first", "second", "third"]

    def test_next_cycle_tracks_earliest(self):
        queue = EventQueue()
        queue.schedule(20, lambda now: None)
        queue.schedule(3, lambda now: None)
        assert queue.next_cycle() == 3
        queue.service(3)
        assert queue.next_cycle() == 20

    def test_callback_may_reschedule(self):
        queue = EventQueue()
        fired = []

        def chain(now):
            fired.append(now)
            if now < 3:
                queue.schedule(now + 1, chain)

        queue.schedule(1, chain)
        for cycle in range(5):
            queue.service(cycle)
        assert fired == [1, 2, 3]

    def test_service_is_idempotent(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2, lambda now: fired.append(now))
        queue.service(2)
        queue.service(2)
        assert fired == [2]
