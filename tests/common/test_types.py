"""Unit tests for the shared vocabulary types."""

import pytest

from repro.common import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    CacheLevel,
    OpClass,
    SchemeKind,
    line_addr,
    word_addr,
    word_index,
)


class TestAddressHelpers:
    def test_line_addr_masks_low_bits(self):
        assert line_addr(0x1234) == 0x1200
        assert line_addr(0x1200) == 0x1200
        assert line_addr(0x123F) == 0x1200

    def test_word_index_spans_line(self):
        assert word_index(0x1200) == 0
        assert word_index(0x1208) == 1
        assert word_index(0x1238) == 7

    def test_word_index_sub_word_offsets(self):
        # Any byte of a word maps to that word's index.
        assert word_index(0x1209) == 1
        assert word_index(0x120F) == 1

    def test_word_addr_aligns_down(self):
        assert word_addr(0x1209) == 0x1208
        assert word_addr(0x1208) == 0x1208

    def test_constants_consistent(self):
        assert LINE_BYTES == WORD_BYTES * WORDS_PER_LINE
        assert WORDS_PER_LINE == 8


class TestOpClass:
    def test_memory_classification(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.ALU.is_memory
        assert not OpClass.BRANCH.is_memory


class TestSchemeKind:
    @pytest.mark.parametrize(
        "scheme,expected",
        [
            (SchemeKind.UNSAFE, False),
            (SchemeKind.NDA, False),
            (SchemeKind.STT, False),
            (SchemeKind.NDA_RECON, True),
            (SchemeKind.STT_RECON, True),
        ],
    )
    def test_uses_recon(self, scheme, expected):
        assert scheme.uses_recon is expected

    def test_base_strips_recon(self):
        assert SchemeKind.NDA_RECON.base is SchemeKind.NDA
        assert SchemeKind.STT_RECON.base is SchemeKind.STT
        assert SchemeKind.STT.base is SchemeKind.STT
        assert SchemeKind.UNSAFE.base is SchemeKind.UNSAFE


class TestCacheLevel:
    def test_ordering_by_distance(self):
        assert CacheLevel.L1 < CacheLevel.L2 < CacheLevel.LLC < CacheLevel.MEMORY
