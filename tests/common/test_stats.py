"""Unit tests for StatSet snapshot/delta and merge semantics."""

from repro.common import StatSet


class TestSnapshotDelta:
    def test_snapshot_is_independent_copy(self):
        stats = StatSet()
        stats.l1_hits = 5
        snap = stats.snapshot()
        stats.l1_hits = 9
        assert snap.l1_hits == 5

    def test_delta_subtracts_everything(self):
        stats = StatSet()
        stats.cycles, stats.committed_uops, stats.reveal_hits = 100, 50, 7
        snap = stats.snapshot()
        stats.cycles, stats.committed_uops, stats.reveal_hits = 180, 90, 10
        delta = stats.delta(snap)
        assert delta.cycles == 80
        assert delta.committed_uops == 40
        assert delta.reveal_hits == 3

    def test_delta_ipc(self):
        stats = StatSet()
        stats.cycles, stats.committed_uops = 100, 100
        snap = stats.snapshot()
        stats.cycles, stats.committed_uops = 150, 300
        assert abs(stats.delta(snap).ipc - 4.0) < 1e-12

    def test_delta_of_self_is_zero(self):
        stats = StatSet()
        stats.l2_misses = 3
        delta = stats.delta(stats.snapshot())
        assert all(v == 0 for v in delta.as_dict().values())


class TestMerge:
    def test_merge_is_commutative_for_counters(self):
        a, b = StatSet(), StatSet()
        a.tainted_loads, b.tainted_loads = 3, 4
        a.cycles, b.cycles = 10, 20
        a2, b2 = a.snapshot(), b.snapshot()
        a.merge(b)
        b2.merge(a2)
        assert a.tainted_loads == b2.tainted_loads == 7
        assert a.cycles == b2.cycles == 20

    def test_as_dict_round_trips_fields(self):
        stats = StatSet()
        stats.load_pairs_detected = 12
        d = stats.as_dict()
        assert d["load_pairs_detected"] == 12
        assert "cycles" in d and "ipc" not in d


class TestFieldParticipation:
    """Every StatSet field must participate in merge/delta/as_dict.

    Guards against a new counter being added to the dataclass but
    silently dropped by one of the aggregation paths.
    """

    @staticmethod
    def _distinct():
        import dataclasses

        stats = StatSet()
        for i, field in enumerate(dataclasses.fields(StatSet)):
            setattr(stats, field.name, (i + 1) * 10)
        return stats

    def test_as_dict_covers_every_field(self):
        import dataclasses

        names = {f.name for f in dataclasses.fields(StatSet)}
        assert set(self._distinct().as_dict()) == names
        assert "mem_order_violations" in names

    def test_delta_subtracts_every_field(self):
        import dataclasses

        stats = self._distinct()
        base = StatSet()
        for field in dataclasses.fields(StatSet):
            setattr(base, field.name, 1)
        delta = stats.delta(base)
        for field in dataclasses.fields(StatSet):
            assert (
                getattr(delta, field.name)
                == getattr(stats, field.name) - 1
            ), field.name

    def test_merge_accumulates_every_field(self):
        import dataclasses

        a, b = self._distinct(), self._distinct()
        expect = a.snapshot()
        a.merge(b)
        for field in dataclasses.fields(StatSet):
            before = getattr(expect, field.name)
            after = getattr(a, field.name)
            if field.name == "cycles":
                assert after == before, "cycles merge with max, not sum"
            else:
                assert after == 2 * before, field.name
