"""Tests for SamplingConfig, the spec-string parser, and RunConfig wiring."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import DEFAULT_SAMPLING_SPEC, SamplingConfig, parse_sampling
from repro.sim import RunConfig

settings.register_profile(
    "repro", settings(max_examples=50, derandomize=True, deadline=None)
)
settings.load_profile("repro")


class TestParseSampling:
    @pytest.mark.parametrize("spec", [None, "off", "none", "exact", "", "  "])
    def test_exact_mode_spellings(self, spec):
        assert parse_sampling(spec) is None

    @pytest.mark.parametrize("spec", ["on", "default", "defaults", "ON"])
    def test_default_spellings(self, spec):
        assert parse_sampling(spec) == SamplingConfig()

    def test_config_passthrough(self):
        cfg = SamplingConfig(target_ci=0.05)
        assert parse_sampling(cfg) is cfg

    def test_default_spec_constant(self):
        assert parse_sampling(DEFAULT_SAMPLING_SPEC) == SamplingConfig()

    def test_full_spec(self):
        cfg = parse_sampling(
            "ci=0.05,conf=0.9,min=8,max=32,unit=200,warm=64,"
            "warmup=cold,bias=0.02,memoize=0"
        )
        assert cfg == SamplingConfig(
            target_ci=0.05,
            confidence=0.9,
            min_units=8,
            max_units=32,
            unit_uops=200,
            unit_warm=64,
            warmup_mode="cold",
            bias_floor=0.02,
            memoize_warm=False,
        )

    def test_long_aliases(self):
        short = parse_sampling("ci=0.03,conf=0.9,min=4,max=8,unit=100,warm=20")
        long = parse_sampling(
            "target_ci=0.03,confidence=0.9,min_units=4,max_units=8,"
            "unit_uops=100,unit_warm=20"
        )
        assert short == long

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="unknown sampling option"):
            parse_sampling("frobnicate=1")

    def test_missing_equals(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_sampling("ci")

    def test_bad_value_type(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_sampling("ci=lots")

    def test_wrong_python_type(self):
        with pytest.raises(TypeError):
            parse_sampling(0.02)

    def test_validation_propagates(self):
        with pytest.raises(ValueError, match="target_ci"):
            parse_sampling("ci=1.5")
        with pytest.raises(ValueError, match="min_units"):
            parse_sampling("min=1")
        with pytest.raises(ValueError, match="warmup_mode"):
            parse_sampling("warmup=psychic")


class TestSamplingConfig:
    def test_max_units_normalized_to_power_of_two_grid(self):
        cfg = SamplingConfig(min_units=4, max_units=13)
        assert cfg.max_units == 16
        cfg = SamplingConfig(min_units=3, max_units=20)
        assert cfg.max_units == 24  # 3 * 2**3
        cfg = SamplingConfig(min_units=4, max_units=4)
        assert cfg.max_units == 4

    def test_resolved_unit_sizes(self):
        cfg = SamplingConfig()
        assert cfg.resolved_unit_uops(12_000) == 250
        assert cfg.resolved_unit_uops(100) == 50  # floor
        assert cfg.resolved_unit_warm(250) == 50
        assert cfg.resolved_unit_warm(100) == 32  # floor
        pinned = SamplingConfig(unit_uops=400, unit_warm=16)
        assert pinned.resolved_unit_uops(12_000) == 400
        assert pinned.resolved_unit_warm(400) == 16

    def test_default_budget_is_a_fifth_of_the_trace(self):
        """max_units * (unit_uops + unit_warm) == length / 5 (long traces).

        This identity is what guarantees the >= 5x detailed-uop cut the
        acceptance gate (benchmarks/bench_sampling.py) asserts.
        """
        cfg = SamplingConfig()
        for length in (12_000, 48_000, 240_000):
            unit = cfg.resolved_unit_uops(length)
            warm = cfg.resolved_unit_warm(unit)
            assert cfg.max_units * (unit + warm) == length // 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(confidence=1.0)
        with pytest.raises(ValueError):
            SamplingConfig(max_units=2, min_units=4)
        with pytest.raises(ValueError):
            SamplingConfig(unit_uops=5)
        with pytest.raises(ValueError):
            SamplingConfig(unit_warm=-1)
        with pytest.raises(ValueError):
            SamplingConfig(bias_floor=-0.1)

    def test_spec_round_trip_defaults(self):
        cfg = SamplingConfig()
        assert cfg.spec() == DEFAULT_SAMPLING_SPEC
        assert parse_sampling(cfg.spec()) == cfg

    @given(
        target_ci=st.sampled_from([0.01, 0.02, 0.05, 0.1]),
        confidence=st.sampled_from([0.9, 0.95, 0.99]),
        min_units=st.sampled_from([2, 4, 8]),
        max_factor=st.sampled_from([1, 2, 4]),
        unit_uops=st.sampled_from([None, 100, 250]),
        unit_warm=st.sampled_from([None, 0, 64]),
        warmup_mode=st.sampled_from(["functional", "cold"]),
        bias_floor=st.sampled_from([0.0, 0.01, 0.05]),
        memoize_warm=st.booleans(),
    )
    def test_spec_round_trip(
        self,
        target_ci,
        confidence,
        min_units,
        max_factor,
        unit_uops,
        unit_warm,
        warmup_mode,
        bias_floor,
        memoize_warm,
    ):
        cfg = SamplingConfig(
            target_ci=target_ci,
            confidence=confidence,
            min_units=min_units,
            max_units=min_units * max_factor,
            unit_uops=unit_uops,
            unit_warm=unit_warm,
            warmup_mode=warmup_mode,
            bias_floor=bias_floor,
            memoize_warm=memoize_warm,
        )
        assert parse_sampling(cfg.spec()) == cfg

    def test_frozen(self):
        cfg = SamplingConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.target_ci = 0.5


class TestRunConfigWiring:
    def test_run_config_accepts_sampling(self):
        cfg = RunConfig(sampling=SamplingConfig())
        assert cfg.sampling == SamplingConfig()
        assert RunConfig().sampling is None

    def test_sampling_and_telemetry_conflict(self):
        with pytest.raises(ValueError, match="telemetry"):
            RunConfig(telemetry=True, sampling=SamplingConfig())
