"""End-to-end sampled runs: runner, engine, backends, store, golden parity.

The two determinism contracts of the tentpole live here:

* exact mode (``sampling=None``) is bit-identical to the pre-sampling
  golden suite committed under ``tests/data/``, and
* sampled mode is itself deterministic — every execution backend (and a
  store replay) produces the same estimate to the last bit.
"""

import json
from pathlib import Path

import pytest

from repro import SchemeKind
from repro.api import RunRequest, run_single, run_suite
from repro.sampling import SampledEstimate, SamplingConfig
from repro.sim import RunConfig, run_benchmark
from repro.sim.engine import RunSpec, execute_specs
from repro.sim.store import ResultStore
from repro.workloads import get_benchmark

GOLDEN = Path(__file__).parent.parent / "data" / "suite_exact_golden.json"

LENGTH = 1_200
SAMPLING = SamplingConfig()


def _sampled_specs(names=("mcf", "gcc"), schemes=(SchemeKind.UNSAFE, SchemeKind.STT)):
    config = RunConfig(sampling=SAMPLING)
    return [
        RunSpec.build(get_benchmark("spec2017", name), scheme, LENGTH, config)
        for name in names
        for scheme in schemes
    ]


class TestSampledRunBenchmark:
    def test_result_carries_estimate(self):
        profile = get_benchmark("spec2017", "mcf")
        result = run_benchmark(
            profile,
            SchemeKind.UNSAFE,
            LENGTH,
            config=RunConfig(sampling=SAMPLING),
        )
        assert result.estimated
        est = result.sampling
        assert isinstance(est, SampledEstimate)
        assert est.samples >= SAMPLING.min_units
        assert est.ipc > 0.0
        assert est.ipc_ci > 0.0
        # cycles is rounded to an integer, so RunResult.ipc differs from
        # the estimator mean by at most half a cycle over the region.
        assert result.ipc == pytest.approx(est.ipc, rel=2e-3)
        assert 0 < est.detailed_uops < est.total_uops
        # Trace builders may round the length up to a kernel boundary.
        assert est.total_uops >= LENGTH
        assert set(est.leakage) == {
            "load_pairs_detected",
            "reveal_hits",
            "delayed_loads",
        }

    def test_sampled_run_is_deterministic(self):
        profile = get_benchmark("spec2017", "gcc")
        config = RunConfig(sampling=SAMPLING)
        a = run_benchmark(profile, SchemeKind.STT, LENGTH, config=config)
        b = run_benchmark(profile, SchemeKind.STT, LENGTH, config=config)
        assert a.sampling == b.sampling
        assert a.cycles == b.cycles
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_cold_warmup_mode_runs(self):
        profile = get_benchmark("spec2017", "mcf")
        cold = run_benchmark(
            profile,
            SchemeKind.UNSAFE,
            LENGTH,
            config=RunConfig(
                sampling=SamplingConfig(warmup_mode="cold")
            ),
        )
        assert cold.estimated
        assert cold.sampling.ipc > 0.0

    def test_exact_run_has_no_estimate(self):
        profile = get_benchmark("spec2017", "mcf")
        result = run_benchmark(profile, SchemeKind.UNSAFE, LENGTH)
        assert not result.estimated
        assert result.sampling is None


class TestExactGoldenParity:
    """Exact mode must stay bit-identical to the committed golden suite."""

    def test_exact_suite_matches_golden(self):
        golden = json.loads(GOLDEN.read_text())
        requests = [
            RunRequest(f"spec2017/{bench}", scheme, golden["length"])
            for bench in ("mcf", "gcc", "xalancbmk")
            for scheme in golden["schemes"]
        ]
        suite = run_suite(requests, store=False)
        payload = json.loads(suite.to_json())
        ours = sorted(
            payload["results"], key=lambda c: (c["bench"], c["scheme"])
        )
        want = sorted(
            golden["results"], key=lambda c: (c["bench"], c["scheme"])
        )
        assert ours == want

    def test_exact_records_omit_sampling_fields(self):
        requests = [RunRequest("spec2017/mcf", "unsafe", LENGTH)]
        suite = run_suite(requests, store=False)
        (record,) = suite.records
        assert not record.estimated
        data = record.as_dict()
        assert "estimated" not in data
        assert "samples" not in data
        assert "ipc_ci" not in data


class TestBackendDeterminism:
    """Sampled estimates are identical on every execution substrate."""

    @pytest.fixture(scope="class")
    def reference(self):
        results, _ = execute_specs(_sampled_specs(), jobs=1, backend="inline")
        return results

    @pytest.mark.parametrize("name", ["threads", "process", "queue"])
    def test_backend_matches_inline(self, name, reference):
        results, _ = execute_specs(_sampled_specs(), jobs=2, backend=name)
        assert len(results) == len(reference)
        for ours, theirs in zip(results, reference):
            assert ours.sampling == theirs.sampling
            assert ours.cycles == theirs.cycles
            assert ours.stats.as_dict() == theirs.stats.as_dict()


class TestSuiteIntegration:
    def test_run_suite_sampling_override(self):
        requests = [
            RunRequest("spec2017/mcf", scheme, LENGTH)
            for scheme in ("unsafe", "stt")
        ]
        suite = run_suite(requests, sampling="on", store=False)
        assert len(suite) == 2
        for record in suite.records:
            assert record.estimated
            assert record.samples >= SAMPLING.min_units
            assert record.ipc_ci > 0.0
            data = record.as_dict()
            assert data["estimated"] is True
        round_tripped = type(suite).from_json(suite.to_json())
        for key in suite:
            assert round_tripped[key].sampling == suite[key].sampling

    def test_run_suite_rejects_bad_spec(self):
        with pytest.raises(ValueError, match="unknown sampling option"):
            run_suite(
                [RunRequest("spec2017/mcf", "unsafe", LENGTH)],
                sampling="bogus=1",
                store=False,
            )

    def test_run_single_record_properties(self):
        record = run_single(
            RunRequest(
                "spec2017/mcf",
                "unsafe",
                LENGTH,
                config=RunConfig(sampling=SAMPLING),
            ),
            store=False,
        )
        assert record.estimated
        assert record.ipc_ci == record.sampling.ipc_ci
        assert record.ipc == pytest.approx(record.sampling.ipc, rel=2e-3)


class TestStoreRoundTrip:
    def test_sampled_result_memoizes_and_restores(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = _sampled_specs(names=("mcf",), schemes=(SchemeKind.UNSAFE,))
        first, records_first = execute_specs(specs, jobs=1, store=store)
        assert not records_first[0].from_store
        second, records_second = execute_specs(specs, jobs=1, store=store)
        assert records_second[0].from_store
        assert second[0].sampling == first[0].sampling
        assert second[0].stats.as_dict() == first[0].stats.as_dict()

    def test_sampled_and_exact_keys_are_distinct(self, tmp_path):
        store = ResultStore(tmp_path)
        profile = get_benchmark("spec2017", "mcf")
        exact = RunSpec.build(
            profile, SchemeKind.UNSAFE, LENGTH, RunConfig()
        )
        sampled = RunSpec.build(
            profile, SchemeKind.UNSAFE, LENGTH, RunConfig(sampling=SAMPLING)
        )
        assert exact.key() != sampled.key()
        execute_specs([exact], jobs=1, store=store)
        # The sampled spec must not be served the exact result.
        results, records = execute_specs([sampled], jobs=1, store=store)
        assert not records[0].from_store
        assert results[0].sampling is not None
