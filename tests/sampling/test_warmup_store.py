"""Functional warm-up, warm-image memoization, and store integration."""

import json

import pytest

from repro import SchemeKind
from repro.sampling import SamplingConfig
from repro.sampling.executor import (
    WARM_IMAGE_KIND,
    _WARM_MEMO,
    get_warm_images,
    run_sampled,
    warm_images_key,
)
from repro.sampling.warmup import (
    FunctionalWarmer,
    build_warm_images,
    clone_slice,
    restore_hierarchy,
    snapshot_hierarchy,
)
from repro.sim import RunConfig, TraceCache
from repro.sim.store import ResultStore, run_key
from repro.workloads import get_benchmark

LENGTH = 2_000


@pytest.fixture
def profile():
    return get_benchmark("spec2017", "mcf")


@pytest.fixture
def traces(profile):
    return TraceCache().get(profile, 1, LENGTH)


@pytest.fixture
def params():
    return RunConfig().resolved_params()


@pytest.fixture(autouse=True)
def _clean_memo():
    _WARM_MEMO.clear()
    yield
    _WARM_MEMO.clear()


class TestCloneSlice:
    def test_rebases_seq_and_copies(self, traces):
        trace = traces[0]
        window = clone_slice(trace, 100, 150)
        assert len(window) == 50
        assert [op.seq for op in window] == list(range(50))
        assert all(copy is not orig for copy, orig in zip(window, trace[100:]))
        # The shared trace must be untouched (seq still absolute).
        assert trace[100].seq == 100
        # Program counters survive — predictors key on pc.
        assert [op.pc for op in window] == [op.pc for op in trace[100:150]]


class TestFunctionalWarmer:
    def test_snapshot_is_deterministic(self, params, traces):
        a = FunctionalWarmer(params, traces).snapshot(500)
        b = FunctionalWarmer(params, traces).snapshot(500)
        assert a == b

    def test_forward_only(self, params, traces):
        warmer = FunctionalWarmer(params, traces)
        warmer.advance(300)
        with pytest.raises(ValueError, match="forward-only"):
            warmer.advance(200)

    def test_incremental_equals_one_shot(self, params, traces):
        stepped = FunctionalWarmer(params, traces)
        stepped.advance(200)
        stepped.advance(500)
        direct = FunctionalWarmer(params, traces)
        assert stepped.snapshot(500) == direct.snapshot(500)

    def test_snapshot_restore_round_trip(self, params, traces):
        warmer = FunctionalWarmer(params, traces)
        image = warmer.snapshot(600)
        restored = restore_hierarchy(params, image)
        again = snapshot_hierarchy(restored, [dict() for _ in traces])
        assert again["llc"] == image["llc"]
        assert again["cores"] == image["cores"]

    def test_restore_rejects_wrong_version(self, params, traces):
        image = FunctionalWarmer(params, traces).snapshot(100)
        image["version"] = 999
        with pytest.raises(ValueError, match="version"):
            restore_hierarchy(params, image)

    def test_restore_rejects_wrong_core_count(self, params, traces):
        image = FunctionalWarmer(params, traces).snapshot(100)
        image["cores"] = image["cores"] + image["cores"]
        with pytest.raises(ValueError, match="cores"):
            restore_hierarchy(params, image)

    def test_build_warm_images_requires_ascending_offsets(
        self, params, traces
    ):
        with pytest.raises(ValueError, match="ascending"):
            build_warm_images(params, traces, [500, 100])

    def test_images_are_json_serializable(self, params, traces):
        images = build_warm_images(params, traces, [100, 400])
        round_tripped = json.loads(json.dumps(images))
        assert set(round_tripped["offsets"]) == {"100", "400"}


class TestWarmImagesKey:
    def test_scheme_free_and_param_sensitive(self, profile, params):
        base = warm_images_key(profile, 1, LENGTH, params, [100, 400])
        # No scheme argument exists at all — the key is shared across
        # schemes by construction; it must react to everything else.
        assert warm_images_key(profile, 1, LENGTH, params, [100, 400]) == base
        assert warm_images_key(profile, 2, LENGTH, params, [100, 400]) != base
        assert warm_images_key(profile, 1, 4_000, params, [100, 400]) != base
        assert warm_images_key(profile, 1, LENGTH, params, [100, 401]) != base
        other = get_benchmark("spec2017", "gcc")
        assert warm_images_key(other, 1, LENGTH, params, [100, 400]) != base

    def test_in_process_memo(self, profile, params, traces):
        offsets = [100, 400]
        first = get_warm_images(profile, 1, LENGTH, params, offsets, traces)
        second = get_warm_images(profile, 1, LENGTH, params, offsets, traces)
        assert second is first  # memo hit, not a rebuild

    def test_store_round_trip(self, profile, params, traces, tmp_path):
        store = ResultStore(tmp_path)
        offsets = [100, 400]
        built = get_warm_images(
            profile, 1, LENGTH, params, offsets, traces, store=store
        )
        _WARM_MEMO.clear()
        loaded = get_warm_images(
            profile, 1, LENGTH, params, offsets, traces, store=store
        )
        assert loaded == built
        key = warm_images_key(profile, 1, LENGTH, params, offsets)
        assert store.get_entry(WARM_IMAGE_KIND, key) == built


class TestStoreBlobEntries:
    def test_round_trip_and_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get_entry("warm_images", "ab" * 32) is None
        payload = {"offsets": {"0": {"llc": []}}}
        store.put_entry("warm_images", "ab" * 32, payload)
        assert store.get_entry("warm_images", "ab" * 32) == payload

    def test_blobs_invisible_to_run_enumeration(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_entry("warm_images", "cd" * 32, {"x": 1})
        assert len(store) == 0
        store.clear()
        assert store.get_entry("warm_images", "cd" * 32) == {"x": 1}

    def test_corrupt_blob_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put_entry("warm_images", key, {"x": 1})
        path = store._entry_path("warm_images", key)
        path.write_text("{ not json")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get_entry("warm_images", key) is None
        assert store.corrupt_entries == 1
        assert path.with_name(path.name + ".corrupt").exists()
        # Quarantine means the next lookup is a clean miss, no warning.
        assert store.get_entry("warm_images", key) is None

    def test_non_object_blob_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "aa" * 32
        path = store._entry_path("warm_images", key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2, 3]")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get_entry("warm_images", key) is None

    def test_bad_kind_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for kind in ("", "a/b", "a.b", "a\\b"):
            with pytest.raises(ValueError):
                store.put_entry(kind, "ab" * 32, {})


class TestRunKeyGating:
    def test_exact_key_unchanged_by_sampling_field(self, profile, params):
        exact = run_key(profile, SchemeKind.UNSAFE, LENGTH, 1, params, 800)
        explicit_none = run_key(
            profile, SchemeKind.UNSAFE, LENGTH, 1, params, 800, sampling=None
        )
        assert exact == explicit_none

    def test_sampled_key_differs(self, profile, params):
        exact = run_key(profile, SchemeKind.UNSAFE, LENGTH, 1, params, 800)
        sampled = run_key(
            profile,
            SchemeKind.UNSAFE,
            LENGTH,
            1,
            params,
            800,
            sampling=SamplingConfig(),
        )
        assert sampled != exact
        tighter = run_key(
            profile,
            SchemeKind.UNSAFE,
            LENGTH,
            1,
            params,
            800,
            sampling=SamplingConfig(target_ci=0.01),
        )
        assert tighter not in (exact, sampled)


class TestCrossSchemeSharing:
    def test_one_blob_serves_every_scheme(self, profile, traces, tmp_path):
        store = ResultStore(tmp_path)
        config = RunConfig(sampling=SamplingConfig())
        for scheme in (SchemeKind.UNSAFE, SchemeKind.STT):
            result = run_sampled(
                profile,
                scheme,
                LENGTH,
                config=config,
                traces=traces,
                store=store,
            )
            assert result.sampling is not None
        blob_dir = tmp_path / ".blobs" / WARM_IMAGE_KIND
        blobs = list(blob_dir.rglob("*.json"))
        assert len(blobs) == 1  # scheme-free key: second scheme reused it
