"""Property-based and spot tests for the sampling estimator core.

The hypothesis properties are the statistical contract of the tentpole:
confidence intervals shrink as units accumulate, the escalation
schedule terminates with nested unit grids, and empirical CI coverage
matches the nominal confidence level (within a tolerance band, on fixed
seeds, so the suite stays deterministic).
"""

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import (
    MeanEstimator,
    SampledEstimate,
    escalation_schedule,
    student_t_sf,
    t_critical,
)

#: Deterministic hypothesis runs: CI must not flake on a rare draw.
settings.register_profile(
    "repro", settings(max_examples=50, derandomize=True, deadline=None)
)
settings.load_profile("repro")


class TestStudentT:
    #: Two-sided 95% critical values from the standard t table.
    TABLE_95 = {1: 12.706, 2: 4.303, 5: 2.571, 10: 2.228, 30: 2.042}

    def test_t_table_spot_checks(self):
        for dof, expected in self.TABLE_95.items():
            assert t_critical(0.95, dof) == pytest.approx(expected, abs=2e-3)

    def test_high_dof_approaches_normal_quantile(self):
        assert t_critical(0.95, 100000) == pytest.approx(1.960, abs=2e-3)

    def test_99_percent_spot_check(self):
        assert t_critical(0.99, 10) == pytest.approx(3.169, abs=2e-3)

    def test_sf_at_zero_is_half(self):
        for dof in (1, 3, 17):
            assert student_t_sf(0.0, dof) == pytest.approx(0.5)

    def test_sf_symmetry(self):
        for t in (0.5, 1.3, 4.0):
            assert student_t_sf(-t, 7) == pytest.approx(
                1.0 - student_t_sf(t, 7), abs=1e-12
            )

    @given(
        dof=st.integers(min_value=1, max_value=200),
        confidence=st.floats(min_value=0.5, max_value=0.999),
    )
    def test_critical_value_inverts_sf(self, dof, confidence):
        t_star = t_critical(confidence, dof)
        alpha = (1.0 - confidence) / 2.0
        assert student_t_sf(t_star, dof) == pytest.approx(alpha, abs=1e-7)

    def test_monotone_decreasing_in_dof(self):
        values = [t_critical(0.95, dof) for dof in range(1, 40)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            t_critical(1.5, 5)
        with pytest.raises(ValueError):
            t_critical(0.95, 0)
        with pytest.raises(ValueError):
            student_t_sf(1.0, 0)


class TestMeanEstimator:
    def test_matches_statistics_module(self):
        data = [3.0, 1.5, 4.25, 0.5, 2.75]
        est = MeanEstimator()
        for value in data:
            est.add(value)
        assert est.mean == pytest.approx(statistics.fmean(data))
        assert est.variance == pytest.approx(statistics.variance(data))

    def test_no_interval_below_two_samples(self):
        est = MeanEstimator()
        assert est.half_width() is None
        est.add(1.0)
        assert est.half_width() is None
        with pytest.raises(ValueError):
            est.covers(1.0)

    def test_zero_mean_relative_width_is_inf(self):
        est = MeanEstimator()
        est.add(-1.0)
        est.add(1.0)
        assert est.mean == 0.0
        assert est.relative_half_width() == math.inf

    def test_identical_samples_zero_width(self):
        est = MeanEstimator()
        for _ in range(4):
            est.add(2.5)
        assert est.half_width() == pytest.approx(0.0, abs=1e-12)
        assert est.covers(2.5)

    @given(
        mean=st.floats(min_value=0.1, max_value=100.0),
        spread=st.floats(min_value=0.01, max_value=10.0),
        pairs=st.integers(min_value=2, max_value=64),
    )
    def test_ci_shrinks_monotonically_with_sample_count(
        self, mean, spread, pairs
    ):
        """Feeding a constant-variance stream, the CI only narrows.

        The stream alternates ``mean ± spread`` so the sample variance
        is the same at every even count; the half-width then decreases
        in both factors (t* falls with dof, the standard error with
        1/sqrt(n)) — the monotone-shrink property escalation relies on.
        """
        est = MeanEstimator()
        widths = []
        for i in range(2 * pairs):
            est.add(mean + spread if i % 2 == 0 else mean - spread)
            if est.n >= 2 and est.n % 2 == 0:
                widths.append(est.half_width())
        assert all(a > b for a, b in zip(widths, widths[1:]))

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=4, max_value=64),
    )
    def test_welford_equals_two_pass(self, seed, n):
        rng = random.Random(seed)
        data = [rng.uniform(-50, 50) for _ in range(n)]
        est = MeanEstimator()
        for value in data:
            est.add(value)
        assert est.mean == pytest.approx(statistics.fmean(data), rel=1e-9)
        assert est.variance == pytest.approx(
            statistics.variance(data), rel=1e-9, abs=1e-9
        )


class TestCoverage:
    #: Fixed-seed empirical coverage: nominal 95% must land in a band
    #: wide enough to absorb binomial noise over TRIALS experiments
    #: (std ~ sqrt(.95*.05/400) ~ 1.1%), tight enough to catch a broken
    #: quantile or variance estimate (which shifts coverage by >> 5%).
    TRIALS = 400
    SAMPLES = 8
    BAND = (0.90, 0.99)

    def test_coverage_matches_nominal_confidence(self):
        true_mean, sigma = 2.0, 0.7
        covered = 0
        for seed in range(self.TRIALS):
            rng = random.Random(1000 + seed)
            est = MeanEstimator(0.95)
            for _ in range(self.SAMPLES):
                est.add(rng.gauss(true_mean, sigma))
            covered += est.covers(true_mean)
        coverage = covered / self.TRIALS
        assert self.BAND[0] <= coverage <= self.BAND[1], coverage

    def test_low_confidence_covers_less(self):
        true_mean, sigma = 2.0, 0.7
        covered = 0
        for seed in range(self.TRIALS):
            rng = random.Random(1000 + seed)
            est = MeanEstimator(0.5)
            for _ in range(self.SAMPLES):
                est.add(rng.gauss(true_mean, sigma))
            covered += est.covers(true_mean)
        coverage = covered / self.TRIALS
        assert 0.40 <= coverage <= 0.60, coverage


class TestEscalationSchedule:
    @given(
        min_units=st.integers(min_value=2, max_value=64),
        factor=st.integers(min_value=1, max_value=6),
    )
    def test_terminates_at_max_with_doubling(self, min_units, factor):
        max_units = min_units * 2 ** (factor - 1)
        counts = list(escalation_schedule(min_units, max_units))
        assert counts[0] == min_units
        assert counts[-1] == max_units
        assert all(a < b for a, b in zip(counts, counts[1:]))
        assert len(counts) == factor

    @given(
        min_units=st.integers(min_value=2, max_value=64),
        max_units=st.integers(min_value=2, max_value=512),
    )
    def test_always_terminates(self, min_units, max_units):
        if max_units < min_units:
            with pytest.raises(ValueError):
                list(escalation_schedule(min_units, max_units))
            return
        counts = list(escalation_schedule(min_units, max_units))
        assert counts[-1] == max_units
        assert len(counts) <= 1 + math.ceil(math.log2(max_units))

    @given(factor=st.integers(min_value=1, max_value=5))
    def test_nested_power_of_two_grids(self, factor):
        """Every round's slot set is a subset of the next round's.

        This is the property that lets escalation reuse all
        already-measured units: with ``stride = max_units // count``,
        round r's slots {k * stride} nest inside round r+1's.
        """
        max_units = 4 * 2 ** (factor - 1)
        previous = None
        for count in escalation_schedule(4, max_units):
            stride = max(max_units // count, 1)
            slots = {k * stride for k in range(count)}
            if previous is not None:
                assert previous <= slots
            previous = slots

    def test_escalation_loop_with_target_terminates(self):
        """The executor's loop shape: stop on target or at max_units."""

        def run(measurements, target):
            est = MeanEstimator()
            fed = 0
            rounds = 0
            for count in escalation_schedule(2, 16):
                rounds += 1
                while fed < count:
                    est.add(measurements[fed])
                    fed += 1
                rel = est.relative_half_width()
                if rel is not None and rel <= target:
                    return rounds, True
            return rounds, False

        tight = [5.0, 5.001, 4.999, 5.0] * 4
        rounds, converged = run(tight, 0.01)
        assert converged and rounds == 1
        noisy = [1.0, 9.0, 2.0, 8.0] * 4
        rounds, converged = run(noisy, 0.01)
        assert not converged and rounds == 4  # 2, 4, 8, 16


class TestSampledEstimate:
    def _make(self):
        return SampledEstimate(
            ipc=1.25,
            ipc_ci=0.05,
            confidence=0.95,
            samples=8,
            unit_uops=300,
            detailed_uops=2400,
            total_uops=12000,
            rounds=2,
            converged=True,
            leakage={"reveal_hits": {"mean": 10.0, "ci": 2.0}},
        )

    def test_round_trip(self):
        estimate = self._make()
        data = estimate.as_dict()
        assert data["estimated"] is True
        assert SampledEstimate.from_dict(data) == estimate

    def test_estimated_and_speedup(self):
        estimate = self._make()
        assert estimate.estimated is True
        assert estimate.speedup_bound == pytest.approx(5.0)
